// Banded backward induction for one deep European option: the intra-option
// decomposition the engine's fork-join task layer executes (PR 10). See the
// header comment in finbench/kernels/binomial.hpp — every lattice value is
// computed by the identical floating-point expression the reference kernel
// uses (plain mul/add under -ffp-contract=off), so tasked, serial-runner,
// and price_one_reference results are bitwise-equal.

#include <algorithm>
#include <cassert>
#include <cmath>

#include "finbench/kernels/binomial.hpp"

namespace finbench::kernels::binomial::banded {

void reduce_segment(const Segment& s, std::span<double> work) {
  assert(work.size() >= work_doubles(s));
  const double pu = s.params->pu_by_df;
  const double pd = s.params->pd_by_df;
  const int levels = s.levels;
  double* w = work.data();

  // First level reads the (immutable) pass input directly — no copy.
  const double* src = s.src + s.lo;
  const std::size_t w1 = s.count + static_cast<std::size_t>(levels) - 1;
  for (std::size_t t = 0; t < w1; ++t) w[t] = pu * src[t + 1] + pd * src[t];

  // Remaining levels reduce in place, ascending t: w[t+1] is still the
  // previous level's value when w[t] is written — same dependence shape as
  // the reference kernel's in-place inner loop.
  for (int l = 2; l <= levels; ++l) {
    const std::size_t wn = s.count + static_cast<std::size_t>(levels - l);
    for (std::size_t t = 0; t < wn; ++t) w[t] = pu * w[t + 1] + pd * w[t];
  }

  for (std::size_t t = 0; t < s.count; ++t) s.dst[s.lo + t] = w[t];
}

void serial_segment_runner(void* ctx, const Segment* segs, int nseg) {
  const std::span<double> work = *static_cast<std::span<double>*>(ctx);
  for (int i = 0; i < nseg; ++i) reduce_segment(segs[i], work);
}

double price_one_banded(const core::OptionSpec& opt, int steps, std::span<double> lattice,
                        SegmentRunner runner, void* ctx) {
  assert(opt.style == core::ExerciseStyle::kEuropean);
  assert(lattice.size() >= 2 * (static_cast<std::size_t>(steps) + 1));
  const detail::CrrDerived p = detail::crr_derived(opt, steps);
  const Params params{p.pu_by_df, p.pd_by_df};

  double* src = lattice.data();
  double* dst = lattice.data() + (steps + 1);

  // Leaves exactly as the reference kernel builds them.
  double s = opt.spot * std::pow(p.down, steps);
  const double ratio = p.up / p.down;
  for (int j = 0; j <= steps; ++j) {
    src[j] = detail::payoff_of(opt, s);
    s *= ratio;
  }

  Segment segs[kMaxSegments];
  int m = steps;  // levels left to reduce; src holds values 0..m
  while (m > 0) {
    const int levels = std::min(kBandLevels, m);
    const std::size_t out = static_cast<std::size_t>(m - levels) + 1;
    std::size_t segsz = kSegmentMin;
    if (out > segsz * static_cast<std::size_t>(kMaxSegments)) {
      segsz = (out + kMaxSegments - 1) / kMaxSegments;
    }
    const int nseg = static_cast<int>((out + segsz - 1) / segsz);
    for (int i = 0; i < nseg; ++i) {
      const std::size_t lo = static_cast<std::size_t>(i) * segsz;
      segs[i] = Segment{src, dst, lo, std::min(segsz, out - lo), levels, &params};
    }
    runner(ctx, segs, nseg);
    std::swap(src, dst);
    m -= levels;
  }
  return src[0];
}

}  // namespace finbench::kernels::binomial::banded
