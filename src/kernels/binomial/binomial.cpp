#include "finbench/kernels/binomial.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "finbench/arch/aligned.hpp"
#include "finbench/core/scratch_pool.hpp"
#include "finbench/obs/metrics.hpp"
#include "finbench/obs/trace.hpp"
#include "finbench/simd/vec.hpp"

namespace finbench::kernels::binomial {

namespace {

// CRR lattice parameters, pre-scaled by the per-step discount factor so the
// inner loop is exactly Lis. 2's `puByDf*Call[j+1] + pdByDf*Call[j]`.
struct CrrParams {
  double pu_by_df;
  double pd_by_df;
  double up;    // u
  double down;  // d
};

CrrParams crr(const core::OptionSpec& o, int steps) {
  const double dt = o.years / steps;
  const double u = std::exp(o.vol * std::sqrt(dt));
  const double d = 1.0 / u;
  // Risk-neutral drift is r - q; discounting stays at r.
  const double growth = std::exp((o.rate - o.dividend) * dt);
  const double pu = (growth - d) / (u - d);
  if (pu < 0.0 || pu > 1.0) {
    throw std::invalid_argument("binomial: risk-neutral probability outside [0,1]; "
                                "increase steps or reduce |r - q|*dt");
  }
  const double df = std::exp(-o.rate * dt);
  return {pu * df, (1.0 - pu) * df, u, d};
}

double payoff(const core::OptionSpec& o, double s) {
  return o.type == core::OptionType::kCall ? std::max(s - o.strike, 0.0)
                                           : std::max(o.strike - s, 0.0);
}

// Per-worker lattice storage: lease from the engine's scratch pool when it
// has a slice big enough, otherwise fall back to a local aligned
// allocation. The fallback keeps standalone kernel calls (tests, benches,
// exhausted pools) correct; the lease keeps engine steady state heap-free.
struct LatticeBuf {
  core::ScratchPool::Lease lease;
  arch::AlignedVector<double> local;
  double* data = nullptr;

  LatticeBuf(core::ScratchPool* pool, std::size_t doubles) {
    if (pool != nullptr) lease = pool->claim(doubles);
    if (lease) {
      data = lease.data();
    } else {
      local.resize(doubles);
      data = local.data();
    }
  }
};

}  // namespace

namespace detail {

CrrDerived crr_derived(const core::OptionSpec& o, int steps) {
  const CrrParams p = crr(o, steps);
  return {p.pu_by_df, p.pd_by_df, p.up, p.down};
}

double payoff_of(const core::OptionSpec& o, double s) { return payoff(o, s); }

}  // namespace detail

// --- Reference (Lis. 2) ----------------------------------------------------

double price_one_reference(const core::OptionSpec& opt, int steps) {
  arch::AlignedVector<double> lattice(static_cast<std::size_t>(steps) + 1);
  return price_one_reference(opt, steps, {lattice.data(), lattice.size()});
}

double price_one_reference(const core::OptionSpec& opt, int steps, std::span<double> lattice) {
  assert(lattice.size() >= static_cast<std::size_t>(steps) + 1);
  const CrrParams p = crr(opt, steps);
  double* call = lattice.data();

  // Leaves: S * u^j * d^(N-j), j = 0..N (j counts up-moves).
  double s = opt.spot * std::pow(p.down, steps);
  const double ratio = p.up / p.down;
  for (int j = 0; j <= steps; ++j) {
    call[j] = payoff(opt, s);
    s *= ratio;
  }

  const bool american = opt.style == core::ExerciseStyle::kAmerican;
  for (int i = steps; i > 0; --i) {
    if (american) {
      // Spot at node (i-1, j) is S * u^j * d^(i-1-j).
      double node_s = opt.spot * std::pow(p.down, i - 1);
      for (int j = 0; j <= i - 1; ++j) {
        const double cont = p.pu_by_df * call[j + 1] + p.pd_by_df * call[j];
        call[j] = std::max(cont, payoff(opt, node_s));
        node_s *= ratio;
      }
    } else {
      for (int j = 0; j <= i - 1; ++j) {
        call[j] = p.pu_by_df * call[j + 1] + p.pd_by_df * call[j];
      }
    }
  }
  return call[0];
}

void price_reference(std::span<const core::OptionSpec> opts, int steps, std::span<double> out,
                     core::ScratchPool* scratch) {
  static obs::Counter& priced = obs::counter("binomial.options_priced");
  priced.add(opts.size());
  assert(out.size() >= opts.size());
  LatticeBuf buf(scratch, static_cast<std::size_t>(steps) + 1);
  const std::span<double> lattice{buf.data, static_cast<std::size_t>(steps) + 1};
  for (std::size_t o = 0; o < opts.size(); ++o) {
    out[o] = price_one_reference(opts[o], steps, lattice);
  }
}

// --- Basic: pragmas only ----------------------------------------------------

void price_basic(std::span<const core::OptionSpec> opts, int steps, std::span<double> out,
                 core::ScratchPool* scratch) {
  static obs::Counter& priced = obs::counter("binomial.options_priced");
  priced.add(opts.size());
  assert(out.size() >= opts.size());
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(opts.size());
#pragma omp parallel
  {
    FINBENCH_SPAN("binomial.thread");
    LatticeBuf buf(scratch, static_cast<std::size_t>(steps) + 1);
    double* const call = buf.data;
#pragma omp for schedule(static)
    for (std::ptrdiff_t o = 0; o < n; ++o) {
      const core::OptionSpec& opt = opts[o];
      const CrrParams p = crr(opt, steps);
      double s = opt.spot * std::pow(p.down, steps);
      const double ratio = p.up / p.down;
      for (int j = 0; j <= steps; ++j) {
        call[j] = payoff(opt, s);
        s *= ratio;
      }
      const double pu = p.pu_by_df, pd = p.pd_by_df;
      double* c = call;
      for (int i = steps; i > 0; --i) {
        // Inner-loop autovectorization — c[j+1] is the unaligned load the
        // paper notes; this is all the "basic" level is allowed to do.
#pragma omp simd
        for (int j = 0; j <= i - 1; ++j) c[j] = pu * c[j + 1] + pd * c[j];
      }
      out[o] = c[0];
    }
  }
}

// --- Intermediate / Advanced: SIMD across options ---------------------------

namespace {

// Shared lane setup: W options side by side, Call[j] is a W-wide vector.
// `group` indexes the block of W consecutive options.
template <int W>
struct LaneBatch {
  using V = simd::Vec<double, W>;
  V pu, pd;  // discounted probabilities per lane
  void init_leaves(std::span<const core::OptionSpec> opts, std::size_t base, int steps,
                   double* call /* (steps+1) x W */) {
    alignas(64) double pu_a[W], pd_a[W];
    for (int l = 0; l < W; ++l) {
      const core::OptionSpec& o = opts[base + l];
      const CrrParams p = crr(o, steps);
      pu_a[l] = p.pu_by_df;
      pd_a[l] = p.pd_by_df;
      double s = o.spot * std::pow(p.down, steps);
      const double ratio = p.up / p.down;
      for (int j = 0; j <= steps; ++j) {
        call[static_cast<std::size_t>(j) * W + l] =
            o.type == core::OptionType::kCall ? std::max(s - o.strike, 0.0)
                                              : std::max(o.strike - s, 0.0);
        s *= ratio;
      }
    }
    pu = V::load(pu_a);
    pd = V::load(pd_a);
  }
};

template <int W>
void reduce_european(double* call, int steps, simd::Vec<double, W> pu, simd::Vec<double, W> pd) {
  using V = simd::Vec<double, W>;
  for (int i = steps; i > 0; --i) {
    for (int j = 0; j <= i - 1; ++j) {
      const V up = V::load(call + static_cast<std::size_t>(j + 1) * W);
      const V dn = V::load(call + static_cast<std::size_t>(j) * W);
      fmadd(pu, up, pd * dn).store(call + static_cast<std::size_t>(j) * W);
    }
  }
}

// American reduction needs the node spot prices: keep per-lane S*d^i and
// the u/d ratio so node prices are rebuilt incrementally per level.
template <int W>
void reduce_american(std::span<const core::OptionSpec> opts, std::size_t base, double* call,
                     int steps, simd::Vec<double, W> pu, simd::Vec<double, W> pd) {
  using V = simd::Vec<double, W>;
  alignas(64) double ratio_a[W], strike_a[W], sign_a[W], base_s_a[W], am_a[W];
  for (int l = 0; l < W; ++l) {
    const core::OptionSpec& o = opts[base + l];
    const CrrParams p = crr(o, steps);
    ratio_a[l] = p.up / p.down;
    strike_a[l] = o.strike;
    sign_a[l] = o.type == core::OptionType::kCall ? 1.0 : -1.0;
    base_s_a[l] = o.spot * std::pow(p.down, steps);
    am_a[l] = o.style == core::ExerciseStyle::kAmerican ? 1.0 : 0.0;
  }
  const V ratio = V::load(ratio_a), strike = V::load(strike_a), sign = V::load(sign_a);
  // European lanes get exercise value 0; continuation values are always
  // >= 0 for vanilla payoffs, so max(cont, 0) leaves them untouched.
  const V am = V::load(am_a);
  V level_base = V::load(base_s_a);  // S * d^i for current level i

  alignas(64) double inv_down[W];
  for (int l = 0; l < W; ++l) {
    inv_down[l] = 1.0 / crr(opts[base + l], steps).down;
  }
  const V invd = V::load(inv_down);

  for (int i = steps; i > 0; --i) {
    level_base *= invd;  // now S * d^(i-1)
    V node_s = level_base;
    for (int j = 0; j <= i - 1; ++j) {
      const V up = V::load(call + static_cast<std::size_t>(j + 1) * W);
      const V dn = V::load(call + static_cast<std::size_t>(j) * W);
      const V cont = fmadd(pu, up, pd * dn);
      const V exercise = am * max(sign * (node_s - strike), V(0.0));
      max(cont, exercise).store(call + static_cast<std::size_t>(j) * W);
      node_s *= ratio;
    }
  }
}

template <int W>
void price_simd(std::span<const core::OptionSpec> opts, int steps, std::span<double> out,
                core::ScratchPool* scratch) {
  using V = simd::Vec<double, W>;
  const std::size_t n = opts.size();
  const std::size_t groups = n / W;

#pragma omp parallel
  {
    LatticeBuf buf(scratch, static_cast<std::size_t>(steps + 1) * W);
    double* const call = buf.data;
#pragma omp for schedule(static)
    for (std::ptrdiff_t g = 0; g < static_cast<std::ptrdiff_t>(groups); ++g) {
      const std::size_t base = static_cast<std::size_t>(g) * W;
      LaneBatch<W> lanes;
      lanes.init_leaves(opts, base, steps, call);
      bool any_american = false;
      for (int l = 0; l < W; ++l) {
        any_american |= opts[base + l].style == core::ExerciseStyle::kAmerican;
      }
      if (any_american) {
        reduce_american<W>(opts, base, call, steps, lanes.pu, lanes.pd);
      } else {
        reduce_european<W>(call, steps, lanes.pu, lanes.pd);
      }
      V::load(call).storeu(out.data() + base);
    }
  }
  // Tail options: scalar reference through the same leased lattice.
  if (groups * W < n) {
    LatticeBuf tail(scratch, static_cast<std::size_t>(steps) + 1);
    const std::span<double> lattice{tail.data, static_cast<std::size_t>(steps) + 1};
    for (std::size_t o = groups * W; o < n; ++o) {
      out[o] = price_one_reference(opts[o], steps, lattice);
    }
  }
}

// --- Register tiling (Lis. 3) -----------------------------------------------

// One tile pass: reduce the W-wide Call array (length m+1) by TS time
// steps. The TS-deep Tile lives in registers; each Call value is loaded
// and stored exactly once per pass.
template <int W, int TS, bool Unroll>
void tile_pass(double* call, int m, simd::Vec<double, W> pu, simd::Vec<double, W> pd) {
  using V = simd::Vec<double, W>;
  V tile[TS];

  // Triangle init (the `...` of Lis. 3): Tile[j] holds the prefix value at
  // position j after (TS-1-j) reduction steps, so the steady-state loop's
  // diagonal recurrence lines up (see DESIGN.md §4).
  for (int j = 0; j < TS; ++j) tile[j] = V::load(call + static_cast<std::size_t>(j) * W);
  for (int s = 1; s < TS; ++s) {
    for (int j = 0; j <= TS - 1 - s; ++j) tile[j] = fmadd(pu, tile[j + 1], pd * tile[j]);
  }

  // Steady state: stream Call[i] through the register tile. For the large
  // step counts of Fig. 5 the Call array exceeds L1; prefetch the next
  // column while the tile reduction runs (the paper's intermediate-level
  // software-prefetch technique).
  for (int i = TS; i <= m; ++i) {
    simd::prefetch_read(call + static_cast<std::size_t>(i + 4) * W);
    V m1 = V::load(call + static_cast<std::size_t>(i) * W);
    if constexpr (Unroll) {
#pragma GCC unroll 65534
      for (int j = TS - 1; j >= 0; --j) {
        const V m2 = fmadd(pu, m1, pd * tile[j]);
        tile[j] = m1;
        m1 = m2;
      }
    } else {
      for (int j = TS - 1; j >= 0; --j) {
        const V m2 = fmadd(pu, m1, pd * tile[j]);
        tile[j] = m1;
        m1 = m2;
      }
    }
    m1.store(call + static_cast<std::size_t>(i - TS) * W);
  }
}

template <int W, int TS, bool Unroll>
void price_tiled(std::span<const core::OptionSpec> opts, int steps, std::span<double> out,
                 core::ScratchPool* scratch) {
  using V = simd::Vec<double, W>;
  const std::size_t n = opts.size();
  const std::size_t groups = n / W;

#pragma omp parallel
  {
    LatticeBuf buf(scratch, static_cast<std::size_t>(steps + 1) * W);
    double* const call = buf.data;
#pragma omp for schedule(static)
    for (std::ptrdiff_t g = 0; g < static_cast<std::ptrdiff_t>(groups); ++g) {
      const std::size_t base = static_cast<std::size_t>(g) * W;
      LaneBatch<W> lanes;
      lanes.init_leaves(opts, base, steps, call);

      int m = steps;
      for (; m >= TS; m -= TS) tile_pass<W, TS, Unroll>(call, m, lanes.pu, lanes.pd);
      // Remainder (< TS steps): plain in-place reduction.
      reduce_european<W>(call, m, lanes.pu, lanes.pd);

      V::load(call).storeu(out.data() + base);
    }
  }
  if (groups * W < n) {
    LatticeBuf tail(scratch, static_cast<std::size_t>(steps) + 1);
    const std::span<double> lattice{tail.data, static_cast<std::size_t>(steps) + 1};
    for (std::size_t o = groups * W; o < n; ++o) {
      out[o] = price_one_reference(opts[o], steps, lattice);
    }
  }
}

constexpr int kTileSize = 16;  // fits the zmm/ymm register file with room to spare

}  // namespace

void price_intermediate(std::span<const core::OptionSpec> opts, int steps, std::span<double> out,
                        Width w, core::ScratchPool* scratch) {
  assert(out.size() >= opts.size());
  switch (w) {
    case Width::kScalar: price_simd<1>(opts, steps, out, scratch); return;
    case Width::kAvx2: price_simd<4>(opts, steps, out, scratch); return;
#if defined(FINBENCH_HAVE_AVX512)
    case Width::kAvx512:
    case Width::kAuto: price_simd<8>(opts, steps, out, scratch); return;
#else
    case Width::kAvx512:
    case Width::kAuto: price_simd<4>(opts, steps, out, scratch); return;
#endif
  }
}

void price_advanced(std::span<const core::OptionSpec> opts, int steps, std::span<double> out,
                    Width w, core::ScratchPool* scratch) {
  assert(out.size() >= opts.size());
  switch (w) {
    case Width::kScalar: price_tiled<1, kTileSize, false>(opts, steps, out, scratch); return;
    case Width::kAvx2: price_tiled<4, kTileSize, false>(opts, steps, out, scratch); return;
#if defined(FINBENCH_HAVE_AVX512)
    case Width::kAvx512:
    case Width::kAuto: price_tiled<8, kTileSize, false>(opts, steps, out, scratch); return;
#else
    case Width::kAvx512:
    case Width::kAuto: price_tiled<4, kTileSize, false>(opts, steps, out, scratch); return;
#endif
  }
}

namespace {

template <int TS>
void price_tiled_dispatch(std::span<const core::OptionSpec> opts, int steps,
                          std::span<double> out, Width w, core::ScratchPool* scratch) {
  switch (w) {
    case Width::kScalar: price_tiled<1, TS, false>(opts, steps, out, scratch); return;
    case Width::kAvx2: price_tiled<4, TS, false>(opts, steps, out, scratch); return;
#if defined(FINBENCH_HAVE_AVX512)
    case Width::kAvx512:
    case Width::kAuto: price_tiled<8, TS, false>(opts, steps, out, scratch); return;
#else
    case Width::kAvx512:
    case Width::kAuto: price_tiled<4, TS, false>(opts, steps, out, scratch); return;
#endif
  }
}

}  // namespace

void price_advanced_tile(std::span<const core::OptionSpec> opts, int steps,
                         std::span<double> out, int tile_size, Width w,
                         core::ScratchPool* scratch) {
  assert(out.size() >= opts.size());
  switch (tile_size) {
    case 4: price_tiled_dispatch<4>(opts, steps, out, w, scratch); return;
    case 8: price_tiled_dispatch<8>(opts, steps, out, w, scratch); return;
    case 16: price_tiled_dispatch<16>(opts, steps, out, w, scratch); return;
    case 32: price_tiled_dispatch<32>(opts, steps, out, w, scratch); return;
    case 64: price_tiled_dispatch<64>(opts, steps, out, w, scratch); return;
    default: throw std::invalid_argument("binomial: tile_size must be 4/8/16/32/64");
  }
}

void price_advanced_unrolled(std::span<const core::OptionSpec> opts, int steps,
                             std::span<double> out, Width w, core::ScratchPool* scratch) {
  assert(out.size() >= opts.size());
  switch (w) {
    case Width::kScalar: price_tiled<1, kTileSize, true>(opts, steps, out, scratch); return;
    case Width::kAvx2: price_tiled<4, kTileSize, true>(opts, steps, out, scratch); return;
#if defined(FINBENCH_HAVE_AVX512)
    case Width::kAvx512:
    case Width::kAuto: price_tiled<8, kTileSize, true>(opts, steps, out, scratch); return;
#else
    case Width::kAvx512:
    case Width::kAuto: price_tiled<4, kTileSize, true>(opts, steps, out, scratch); return;
#endif
  }
}

}  // namespace finbench::kernels::binomial
