// Blocked-layout binomial family (paper Fig. 5 meets the Fig. 4 "Advanced"
// layout): European CRR pricing straight off Layout::kBsBlocked AoSoA
// tiles. Each lane-block stores its fields as contiguous `block`-lane runs,
// so lane setup is aligned unit-stride loads — no OptionSpec gather — and
// both the call and the put lattice reduce together, keeping two
// independent fmadd chains in flight per W-wide group (the same ILP idiom
// as the blocked Black–Scholes ×2 unroll). Padded lanes of the last block
// replicate a real option and are computed redundantly, never read.

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "finbench/arch/aligned.hpp"
#include "finbench/core/scratch_pool.hpp"
#include "finbench/kernels/binomial.hpp"
#include "finbench/obs/metrics.hpp"
#include "finbench/simd/vec.hpp"

namespace finbench::kernels::binomial {

namespace {

// Pool-leased lattice storage with a local fallback (same contract as the
// specs-layout kernels: leases keep engine steady state heap-free,
// standalone calls still work).
struct BlockLatticeBuf {
  core::ScratchPool::Lease lease;
  arch::AlignedVector<double> local;
  double* data = nullptr;

  BlockLatticeBuf(core::ScratchPool* pool, std::size_t doubles) {
    if (pool != nullptr) lease = pool->claim(doubles);
    if (lease) {
      data = lease.data();
    } else {
      local.resize(doubles);
      data = local.data();
    }
  }
};

template <int W>
void price_blocked_width(const core::BsBlockedView& batch, int steps,
                         core::ScratchPool* scratch) {
  using V = simd::Vec<double, W>;
  const auto nblocks = static_cast<std::ptrdiff_t>(batch.num_blocks());
  const std::size_t bw = static_cast<std::size_t>(batch.block);
  const std::size_t lat = static_cast<std::size_t>(steps + 1) * W;

#pragma omp parallel
  {
    BlockLatticeBuf buf(scratch, 2 * lat);
    double* const call = buf.data;
    double* const put = buf.data + lat;
#pragma omp for schedule(static)
    for (std::ptrdiff_t blk = 0; blk < nblocks; ++blk) {
      const std::size_t b = static_cast<std::size_t>(blk);
      const double* spot = batch.field(b, 0);
      const double* strike = batch.field(b, 1);
      const double* years = batch.field(b, 2);
      double* out_call = batch.field(b, 3);
      double* out_put = batch.field(b, 4);
      for (std::size_t sub = 0; sub < bw; sub += W) {
        alignas(64) double pu_a[W], pd_a[W];
        for (int l = 0; l < W; ++l) {
          core::OptionSpec o{};
          o.spot = spot[sub + static_cast<std::size_t>(l)];
          o.strike = strike[sub + static_cast<std::size_t>(l)];
          o.years = years[sub + static_cast<std::size_t>(l)];
          o.rate = batch.rate;
          o.vol = batch.vol;
          o.dividend = batch.dividend;
          const detail::CrrDerived p = detail::crr_derived(o, steps);
          pu_a[l] = p.pu_by_df;
          pd_a[l] = p.pd_by_df;
          double s = o.spot * std::pow(p.down, steps);
          const double ratio = p.up / p.down;
          for (int j = 0; j <= steps; ++j) {
            call[static_cast<std::size_t>(j) * W + static_cast<std::size_t>(l)] =
                std::max(s - o.strike, 0.0);
            put[static_cast<std::size_t>(j) * W + static_cast<std::size_t>(l)] =
                std::max(o.strike - s, 0.0);
            s *= ratio;
          }
        }
        const V pu = V::load(pu_a);
        const V pd = V::load(pd_a);
        // Call and put reduce together: two independent fmadd chains per
        // iteration hide the FMA latency the single-lattice loop exposes.
        for (int i = steps; i > 0; --i) {
          for (int j = 0; j <= i - 1; ++j) {
            const std::size_t at = static_cast<std::size_t>(j) * W;
            const V cu = V::load(call + at + W);
            const V cd = V::load(call + at);
            const V qu = V::load(put + at + W);
            const V qd = V::load(put + at);
            fmadd(pu, cu, pd * cd).store(call + at);
            fmadd(pu, qu, pd * qd).store(put + at);
          }
        }
        V::load(call).storeu(out_call + sub);
        V::load(put).storeu(out_put + sub);
      }
    }
  }
}

}  // namespace

void price_blocked(const core::BsBlockedView& view, int steps, Width w,
                   core::ScratchPool* scratch) {
  static obs::Counter& priced = obs::counter("binomial.options_priced");
  priced.add(view.size());
  int width;
  switch (w) {
    case Width::kScalar: width = 1; break;
    case Width::kAvx2: width = 4; break;
#if defined(FINBENCH_HAVE_AVX512)
    case Width::kAvx512:
    case Width::kAuto: width = 8; break;
#else
    case Width::kAvx512:
    case Width::kAuto: width = 4; break;
#endif
    default: width = 1; break;
  }
  // A block width that is not a multiple of the lane count would regroup
  // lanes mid-block: fall back to scalar lanes (correct for any block).
  if (width > 1 && view.block % width != 0) width = 1;
  switch (width) {
    case 4: price_blocked_width<4>(view, steps, scratch); return;
#if defined(FINBENCH_HAVE_AVX512)
    case 8: price_blocked_width<8>(view, steps, scratch); return;
#endif
    default: price_blocked_width<1>(view, steps, scratch); return;
  }
}

}  // namespace finbench::kernels::binomial
