#include "finbench/kernels/lattice.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "finbench/arch/aligned.hpp"
#include "finbench/core/analytic.hpp"

namespace finbench::kernels::lattice {

namespace {

double payoff(const core::OptionSpec& o, double s) {
  return o.type == core::OptionType::kCall ? std::max(s - o.strike, 0.0)
                                           : std::max(o.strike - s, 0.0);
}

// Peizer–Pratt method-2 inversion: maps a normal quantile z to a binomial
// probability for n trials (n odd).
double peizer_pratt(double z, int n) {
  const double denom = n + 1.0 / 3.0 + 0.1 / (n + 1.0);
  const double arg = (z / denom) * (z / denom) * (n + 1.0 / 6.0);
  const double root = std::sqrt(std::max(0.0, 1.0 - std::exp(-arg)));
  return 0.5 + (z >= 0 ? 0.5 : -0.5) * root;
}

}  // namespace

double price_leisen_reimer(const core::OptionSpec& o, int steps) {
  if (o.vol <= 0 || o.years <= 0) {
    throw std::invalid_argument("leisen-reimer: vol and years must be positive");
  }
  const int n = steps | 1;  // next odd
  const double dt = o.years / n;
  const double sig_rt = o.vol * std::sqrt(o.years);
  const double d1 = (std::log(o.spot / o.strike) +
                     (o.rate - o.dividend + 0.5 * o.vol * o.vol) * o.years) /
                    sig_rt;
  const double d2 = d1 - sig_rt;

  const double p = peizer_pratt(d2, n);        // risk-neutral up-probability
  const double pp = peizer_pratt(d1, n);       // stock-measure probability
  const double growth = std::exp((o.rate - o.dividend) * dt);
  const double u = growth * pp / p;
  const double d = (growth - p * u) / (1.0 - p);
  const double df = std::exp(-o.rate * dt);
  const double pu_df = p * df;
  const double pd_df = (1.0 - p) * df;

  arch::AlignedVector<double> value(n + 1);
  double s = o.spot * std::pow(d, n);
  const double ratio = u / d;
  for (int j = 0; j <= n; ++j) {
    value[j] = payoff(o, s);
    s *= ratio;
  }

  const bool american = o.style == core::ExerciseStyle::kAmerican;
  for (int i = n; i > 0; --i) {
    double node_s = o.spot * std::pow(d, i - 1);
    for (int j = 0; j <= i - 1; ++j) {
      double v = pu_df * value[j + 1] + pd_df * value[j];
      if (american) v = std::max(v, payoff(o, node_s));
      value[j] = v;
      node_s *= ratio;
    }
  }
  return value[0];
}

double price_trinomial(const core::OptionSpec& o, int steps) {
  if (o.vol <= 0 || o.years <= 0) {
    throw std::invalid_argument("trinomial: vol and years must be positive");
  }
  const int n = steps;
  const double dt = o.years / n;
  const double lambda = std::sqrt(3.0);
  const double dx = lambda * o.vol * std::sqrt(dt);
  const double nu = o.rate - o.dividend - 0.5 * o.vol * o.vol;
  // Kamrad–Ritchken probabilities for log-price moves {+dx, 0, -dx}.
  const double a = nu * dt / dx;
  const double b = o.vol * o.vol * dt / (dx * dx);
  const double pu = 0.5 * (b + a * a + a);
  const double pm = 1.0 - b - a * a;
  const double pd = 0.5 * (b + a * a - a);
  if (pu < 0 || pm < 0 || pd < 0) {
    throw std::invalid_argument("trinomial: negative branch probability; increase steps");
  }
  const double df = std::exp(-o.rate * dt);
  const double pu_df = pu * df, pm_df = pm * df, pd_df = pd * df;

  // Level i has 2i+1 nodes; index j in [0, 2i] maps to log-move (j - i)*dx.
  arch::AlignedVector<double> value(2 * n + 1);
  const double edx = std::exp(dx);
  {
    double s = o.spot * std::exp(-n * dx);
    for (int j = 0; j <= 2 * n; ++j) {
      value[j] = payoff(o, s);
      s *= edx;
    }
  }
  const bool american = o.style == core::ExerciseStyle::kAmerican;
  for (int i = n; i > 0; --i) {
    double node_s = o.spot * std::exp(-(i - 1) * dx);
    for (int j = 0; j <= 2 * (i - 1); ++j) {
      // Children of node j at level i-1 are j, j+1, j+2 at level i.
      double v = pd_df * value[j] + pm_df * value[j + 1] + pu_df * value[j + 2];
      if (american) v = std::max(v, payoff(o, node_s));
      value[j] = v;
      node_s *= edx;
    }
  }
  return value[0];
}

double price_bbs(const core::OptionSpec& o, int steps) {
  if (o.vol <= 0 || o.years <= 0) {
    throw std::invalid_argument("bbs: vol and years must be positive");
  }
  const int n = std::max(steps, 2);
  const double dt = o.years / n;
  const double u = std::exp(o.vol * std::sqrt(dt));
  const double d = 1.0 / u;
  const double growth = std::exp((o.rate - o.dividend) * dt);
  const double p = (growth - d) / (u - d);
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("bbs: risk-neutral probability outside [0,1]");
  }
  const double df = std::exp(-o.rate * dt);
  const double pu_df = p * df;
  const double pd_df = (1.0 - p) * df;
  const bool call = o.type == core::OptionType::kCall;
  const bool american = o.style == core::ExerciseStyle::kAmerican;
  const double ratio = u / d;

  // Level n-1: value each node with the one-period Black–Scholes price
  // (the smoothing that removes the strike-kink sawtooth).
  arch::AlignedVector<double> value(n);
  double s = o.spot * std::pow(d, n - 1);
  for (int j = 0; j <= n - 1; ++j) {
    const core::BsPrice bs = core::black_scholes(s, o.strike, dt, o.rate, o.vol, o.dividend);
    double v = call ? bs.call : bs.put;
    if (american) v = std::max(v, payoff(o, s));
    value[j] = v;
    s *= ratio;
  }
  for (int i = n - 1; i > 0; --i) {
    double node_s = o.spot * std::pow(d, i - 1);
    for (int j = 0; j <= i - 1; ++j) {
      double v = pu_df * value[j + 1] + pd_df * value[j];
      if (american) v = std::max(v, payoff(o, node_s));
      value[j] = v;
      node_s *= ratio;
    }
  }
  return value[0];
}

double price_bbsr(const core::OptionSpec& o, int steps) {
  const int n = std::max(steps, 4);
  // Two-point Richardson extrapolation of the O(1/N) smoothed error.
  return 2.0 * price_bbs(o, n) - price_bbs(o, n / 2);
}

double price_bermudan(const core::OptionSpec& o, int steps, int num_exercise_dates) {
  if (o.vol <= 0 || o.years <= 0) {
    throw std::invalid_argument("bermudan: vol and years must be positive");
  }
  if (num_exercise_dates < 1 || num_exercise_dates > steps) {
    throw std::invalid_argument("bermudan: need 1 <= exercise dates <= steps");
  }
  const int n = steps;
  const double dt = o.years / n;
  const double u = std::exp(o.vol * std::sqrt(dt));
  const double d = 1.0 / u;
  const double growth = std::exp((o.rate - o.dividend) * dt);
  const double p = (growth - d) / (u - d);
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("bermudan: risk-neutral probability outside [0,1]");
  }
  const double df_step = std::exp(-o.rate * dt);
  const double pu_df = p * df_step, pd_df = (1.0 - p) * df_step;
  const double ratio = u / d;

  // Exercise permitted at lattice levels round(k * n / dates), k = 1..dates
  // (expiry is always an exercise date via the terminal payoff).
  std::vector<bool> can_exercise(n + 1, false);
  for (int k = 1; k <= num_exercise_dates; ++k) {
    can_exercise[static_cast<int>(std::lround(static_cast<double>(k) * n /
                                              num_exercise_dates))] = true;
  }

  arch::AlignedVector<double> value(n + 1);
  double s = o.spot * std::pow(d, n);
  for (int j = 0; j <= n; ++j) {
    value[j] = payoff(o, s);
    s *= ratio;
  }
  for (int i = n; i > 0; --i) {
    const bool exercisable = can_exercise[i - 1];
    double node_s = o.spot * std::pow(d, i - 1);
    for (int j = 0; j <= i - 1; ++j) {
      double v = pu_df * value[j + 1] + pd_df * value[j];
      if (exercisable) v = std::max(v, payoff(o, node_s));
      value[j] = v;
      node_s *= ratio;
    }
  }
  return value[0];
}

LatticeGreeks greeks_crr(const core::OptionSpec& o, int steps) {
  if (o.vol <= 0 || o.years <= 0) {
    throw std::invalid_argument("lattice greeks: vol and years must be positive");
  }
  const int n = std::max(steps, 2);
  const double dt = o.years / n;
  const double u = std::exp(o.vol * std::sqrt(dt));
  const double d = 1.0 / u;
  const double growth = std::exp((o.rate - o.dividend) * dt);
  const double p = (growth - d) / (u - d);
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("lattice greeks: risk-neutral probability outside [0,1]");
  }
  const double df = std::exp(-o.rate * dt);
  const double pu_df = p * df, pd_df = (1.0 - p) * df;
  const double ratio = u / d;
  const bool american = o.style == core::ExerciseStyle::kAmerican;

  arch::AlignedVector<double> value(n + 1);
  double s = o.spot * std::pow(d, n);
  for (int j = 0; j <= n; ++j) {
    value[j] = payoff(o, s);
    s *= ratio;
  }
  double v2[3] = {0, 0, 0}, v1[2] = {0, 0}, v0 = 0;
  for (int i = n; i > 0; --i) {
    double node_s = o.spot * std::pow(d, i - 1);
    for (int j = 0; j <= i - 1; ++j) {
      double v = pu_df * value[j + 1] + pd_df * value[j];
      if (american) v = std::max(v, payoff(o, node_s));
      value[j] = v;
      node_s *= ratio;
    }
    if (i - 1 == 2) {
      v2[0] = value[0];
      v2[1] = value[1];
      v2[2] = value[2];
    } else if (i - 1 == 1) {
      v1[0] = value[0];
      v1[1] = value[1];
    }
  }
  v0 = value[0];

  LatticeGreeks g;
  g.price = v0;
  const double su = o.spot * u, sd = o.spot * d;
  g.delta = (v1[1] - v1[0]) / (su - sd);
  const double suu = o.spot * u * u, sdd = o.spot * d * d;
  const double d_up = (v2[2] - v2[1]) / (suu - o.spot);
  const double d_dn = (v2[1] - v2[0]) / (o.spot - sdd);
  g.gamma = (d_up - d_dn) / (0.5 * (suu - sdd));
  // Node (2,1) has spot S again, 2 dt later: forward difference in time.
  g.theta = (v2[1] - v0) / (2.0 * dt);
  return g;
}

double price_geske_johnson(const core::OptionSpec& o, int steps) {
  // Bermudan prices with 1, 2, 3 equally spaced exercise rights. Steps is
  // rounded to a multiple of 6 so all three date sets sit on lattice nodes.
  const int n = std::max((steps / 6) * 6, 6);
  const double p1 = price_bermudan(o, n, 1);
  const double p2 = price_bermudan(o, n, 2);
  const double p3 = price_bermudan(o, n, 3);
  // Three-point Richardson in 1/d (Geske & Johnson 1984):
  // P ~ p3 + 7/2 (p3 - p2) - 1/2 (p2 - p1).
  return p3 + 3.5 * (p3 - p2) - 0.5 * (p2 - p1);
}

void price_leisen_reimer_batch(std::span<const core::OptionSpec> opts, int steps,
                               std::span<double> out) {
  assert(out.size() >= opts.size());
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(opts.size());
#pragma omp parallel for schedule(dynamic, 1)
  for (std::ptrdiff_t i = 0; i < n; ++i) out[i] = price_leisen_reimer(opts[i], steps);
}

void price_trinomial_batch(std::span<const core::OptionSpec> opts, int steps,
                           std::span<double> out) {
  assert(out.size() >= opts.size());
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(opts.size());
#pragma omp parallel for schedule(dynamic, 1)
  for (std::ptrdiff_t i = 0; i < n; ++i) out[i] = price_trinomial(opts[i], steps);
}

}  // namespace finbench::kernels::lattice
