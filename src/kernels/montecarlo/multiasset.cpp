#include "finbench/kernels/multiasset.hpp"

#include <cmath>
#include <stdexcept>

#include "finbench/arch/aligned.hpp"
#include "finbench/core/linalg.hpp"
#include "finbench/rng/normal.hpp"

namespace finbench::kernels::multiasset {

mc::McResult price_basket_mc(const BasketSpec& spec, const McParams& params) {
  const std::size_t n = spec.num_assets();
  if (n == 0 || spec.vols.size() != n || spec.weights.size() != n ||
      spec.correlation.size() != n * n) {
    throw std::invalid_argument("basket: inconsistent dimensions");
  }
  if (spec.years <= 0) throw std::invalid_argument("basket: years must be positive");
  for (double v : spec.vols) {
    if (v < 0) throw std::invalid_argument("basket: negative vol");
  }
  if (!core::is_correlation_matrix(spec.correlation, n)) {
    throw std::invalid_argument("basket: not a correlation matrix");
  }
  const auto chol = core::cholesky(spec.correlation, n);
  if (!chol) throw std::invalid_argument("basket: correlation matrix not positive definite");

  const double df = std::exp(-spec.rate * spec.years);
  const bool call = spec.type == core::OptionType::kCall;

  // Per-asset terminal-draw constants.
  arch::AlignedVector<double> mu(n), sig_rt(n);
  for (std::size_t a = 0; a < n; ++a) {
    mu[a] = (spec.rate - 0.5 * spec.vols[a] * spec.vols[a]) * spec.years;
    sig_rt[a] = spec.vols[a] * std::sqrt(spec.years);
  }

  rng::NormalStream stream(params.seed);
  constexpr std::size_t kChunk = 1024;
  arch::AlignedVector<double> z(kChunk * n), zc(n);

  double sum = 0.0, sum2 = 0.0;
  std::size_t done = 0;
  while (done < params.num_paths) {
    const std::size_t c = std::min(kChunk, params.num_paths - done);
    stream.fill({z.data(), c * n});
    for (std::size_t p = 0; p < c; ++p) {
      core::lower_tri_matvec(*chol, n, {z.data() + p * n, n}, zc);
      double basket = 0.0;
      for (std::size_t a = 0; a < n; ++a) {
        basket += spec.weights[a] * spec.spots[a] * std::exp(mu[a] + sig_rt[a] * zc[a]);
      }
      const double pay = std::max(call ? basket - spec.strike : spec.strike - basket, 0.0);
      sum += pay;
      sum2 += pay * pay;
    }
    done += c;
  }
  const double np = static_cast<double>(params.num_paths);
  mc::McResult out;
  const double mean = sum / np;
  out.price = df * mean;
  out.std_error = df * std::sqrt(std::max(sum2 / np - mean * mean, 0.0) / np);
  return out;
}

double margrabe_exchange(double s1, double s2, double vol1, double vol2, double rho,
                         double years) {
  if (years <= 0) return std::max(s1 - s2, 0.0);
  const double sig = std::sqrt(std::max(vol1 * vol1 + vol2 * vol2 - 2 * rho * vol1 * vol2, 0.0));
  if (sig == 0.0) return std::max(s1 - s2, 0.0);  // perfectly hedged
  const double sig_rt = sig * std::sqrt(years);
  const double d1 = std::log(s1 / s2) / sig_rt + 0.5 * sig_rt;
  const double d2 = d1 - sig_rt;
  auto cnd = [](double x) { return 0.5 * std::erfc(-x * 0.70710678118654752440); };
  return s1 * cnd(d1) - s2 * cnd(d2);
}

mc::McResult price_exchange_mc(double s1, double s2, double vol1, double vol2, double rho,
                               double years, double rate, const McParams& params) {
  BasketSpec spec;
  spec.spots = {s1, s2};
  spec.vols = {vol1, vol2};
  spec.weights = {1.0, -1.0};
  spec.correlation = {1.0, rho, rho, 1.0};
  spec.strike = 0.0;
  spec.years = years;
  spec.rate = rate;
  spec.type = core::OptionType::kCall;
  return price_basket_mc(spec, params);
}

}  // namespace finbench::kernels::multiasset
