// Douglas ADI finite-difference solver for the Heston PDE (European).
//
//   V_tau = 1/2 v S^2 V_SS + rho xi v S V_Sv + 1/2 xi^2 v V_vv
//         + (r - q) S V_S + kappa (theta - v) V_v - r V
//
// Splitting: A0 = the mixed derivative (explicit only), A1 = all S-direction
// terms - r/2 V, A2 = all v-direction terms - r/2 V. One Douglas step:
//
//   Y0 = U + dt (A0 + A1 + A2) U            (explicit predictor)
//   (I - 1/2 dt A1) Y1 = Y0 - 1/2 dt A1 U   (implicit S correction)
//   (I - 1/2 dt A2) Y2 = Y1 - 1/2 dt A2 U   (implicit v correction)
//
// Grids are uniform; the v = 0 boundary uses the degenerate PDE with a
// one-sided first derivative, v = vmax and S = Smax use Dirichlet
// asymptotics, S = 0 is absorbed.

#include <cmath>
#include <stdexcept>
#include <utility>

#include "finbench/arch/aligned.hpp"
#include "finbench/kernels/heston.hpp"

namespace finbench::kernels::heston {

namespace {

// Tridiagonal solve (Thomas) for (I - w T) x = rhs where T rows are given
// by (lo, di, up) — scratch arrays provided by the caller.
void solve_identity_minus(const double* lo, const double* di, const double* up, double w,
                          double* rhs, int n, double* cp, double* dp) {
  // Row i of (I - w T): (-w lo[i], 1 - w di[i], -w up[i]).
  double denom = 1.0 - w * di[0];
  cp[0] = (-w * up[0]) / denom;
  dp[0] = rhs[0] / denom;
  for (int i = 1; i < n; ++i) {
    const double a = -w * lo[i];
    denom = (1.0 - w * di[i]) - a * cp[i - 1];
    cp[i] = (-w * up[i]) / denom;
    dp[i] = (rhs[i] - a * dp[i - 1]) / denom;
  }
  rhs[n - 1] = dp[n - 1];
  for (int i = n - 2; i >= 0; --i) rhs[i] = dp[i] - cp[i] * rhs[i + 1];
}

}  // namespace

namespace {

struct SolvedGrid {
  arch::AlignedVector<double> u;
  double ds = 0, dv = 0;
  int m1 = 0, m2 = 0;
};

SolvedGrid solve_grid(const core::OptionSpec& opt, const HestonParams& model,
                      const FdParams& fd) {
  const bool american = opt.style == core::ExerciseStyle::kAmerican;
  if (opt.years <= 0) throw std::invalid_argument("heston fd: years must be positive");
  if (fd.num_s < 5 || fd.num_v < 4 || fd.num_steps < 1) {
    throw std::invalid_argument("heston fd: grid too small");
  }
  const int m1 = fd.num_s;   // S-nodes, j = 0..m1-1
  const int m2 = fd.num_v;   // v-nodes, k = 0..m2-1
  const double s_max = fd.s_max_mult * std::max(opt.spot, opt.strike);
  const double v_max = std::max(fd.v_max, 4.0 * std::max(model.theta, model.v0));
  const double ds = s_max / (m1 - 1);
  const double dv = v_max / (m2 - 1);
  const double dt = opt.years / fd.num_steps;
  const bool call = opt.type == core::OptionType::kCall;
  const double r = opt.rate, q = opt.dividend;

  auto idx = [m1](int j, int k) { return static_cast<std::size_t>(k) * m1 + j; };

  // Terminal payoff.
  arch::AlignedVector<double> u(static_cast<std::size_t>(m1) * m2);
  for (int k = 0; k < m2; ++k) {
    for (int j = 0; j < m1; ++j) {
      const double s = j * ds;
      u[idx(j, k)] = std::max(call ? s - opt.strike : opt.strike - s, 0.0);
    }
  }

  // Directional operator coefficients (constant in time).
  // A1 along S at (j, k): 1/2 v s^2 V_SS + (r-q) s V_S - r/2 V.
  arch::AlignedVector<double> a1_lo(static_cast<std::size_t>(m1) * m2, 0.0);
  arch::AlignedVector<double> a1_di(a1_lo.size(), 0.0);
  arch::AlignedVector<double> a1_up(a1_lo.size(), 0.0);
  // A2 along v at (j, k): 1/2 xi^2 v V_vv + kappa (theta - v) V_v - r/2 V.
  arch::AlignedVector<double> a2_lo(a1_lo.size(), 0.0);
  arch::AlignedVector<double> a2_di(a1_lo.size(), 0.0);
  arch::AlignedVector<double> a2_up(a1_lo.size(), 0.0);

  for (int k = 0; k < m2; ++k) {
    const double v = k * dv;
    for (int j = 1; j < m1 - 1; ++j) {
      const double s = j * ds;
      const double diff = 0.5 * v * s * s / (ds * ds);
      const double conv = 0.5 * (r - q) * s / ds;
      a1_lo[idx(j, k)] = diff - conv;
      a1_di[idx(j, k)] = -2.0 * diff - 0.5 * r;
      a1_up[idx(j, k)] = diff + conv;
    }
  }
  for (int j = 0; j < m1; ++j) {
    for (int k = 1; k < m2 - 1; ++k) {
      const double v = k * dv;
      const double diff = 0.5 * model.xi * model.xi * v / (dv * dv);
      const double conv = 0.5 * model.kappa * (model.theta - v) / dv;
      a2_lo[idx(j, k)] = diff - conv;
      a2_di[idx(j, k)] = -2.0 * diff - 0.5 * r;
      a2_up[idx(j, k)] = diff + conv;
    }
    // v = 0 boundary: no diffusion; kappa theta V_v with a one-sided
    // (upwind) difference, half the discounting.
    const double drift0 = model.kappa * model.theta / dv;
    a2_di[idx(j, 0)] = -drift0 - 0.5 * r;
    a2_up[idx(j, 0)] = drift0;
  }

  // Scratch for the tridiagonal sweeps and intermediate fields.
  arch::AlignedVector<double> y0(u.size()), y1(u.size());
  arch::AlignedVector<double> row(std::max(m1, m2)), cp(std::max(m1, m2)),
      dp(std::max(m1, m2));
  arch::AlignedVector<double> lo_t(std::max(m1, m2)), di_t(std::max(m1, m2)),
      up_t(std::max(m1, m2));

  const double cross_c = model.rho * model.xi / (4.0 * ds * dv);

  for (int step = 1; step <= fd.num_steps; ++step) {
    const double tau = step * dt;

    // ---- Explicit predictor: Y0 = U + dt (A0 + A1 + A2) U.
    for (int k = 0; k < m2; ++k) {
      for (int j = 0; j < m1; ++j) {
        const std::size_t c = idx(j, k);
        double acc = 0.0;
        // A1 row (interior j only; boundary rows are Dirichlet).
        if (j > 0 && j < m1 - 1) {
          acc += a1_lo[c] * u[c - 1] + a1_di[c] * u[c] + a1_up[c] * u[c + 1];
        }
        // A2 row.
        if (k > 0 && k < m2 - 1) {
          acc += a2_lo[c] * u[c - m1] + a2_di[c] * u[c] + a2_up[c] * u[c + m1];
        } else if (k == 0) {
          acc += a2_di[c] * u[c] + a2_up[c] * u[c + m1];
        }
        // A0 mixed derivative (interior in both directions).
        if (j > 0 && j < m1 - 1 && k > 0 && k < m2 - 1) {
          const double v = k * dv;
          const double s = j * ds;
          acc += cross_c * v * s *
                 (u[c + 1 + m1] - u[c - 1 + m1] - u[c + 1 - m1] + u[c - 1 - m1]);
        }
        y0[c] = u[c] + dt * acc;
      }
    }

    // ---- Implicit S-direction: (I - dt/2 A1) Y1 = Y0 - dt/2 A1 U.
    for (int k = 0; k < m2; ++k) {
      for (int j = 1; j < m1 - 1; ++j) {
        const std::size_t c = idx(j, k);
        const double a1u = a1_lo[c] * u[c - 1] + a1_di[c] * u[c] + a1_up[c] * u[c + 1];
        row[j] = y0[c] - 0.5 * dt * a1u;
        lo_t[j] = a1_lo[c];
        di_t[j] = a1_di[c];
        up_t[j] = a1_up[c];
      }
      // Dirichlet boundaries in S folded into the rhs.
      const double v_at_smax =
          call ? s_max * std::exp(-q * tau) - opt.strike * std::exp(-r * tau) : 0.0;
      const double v_at_s0 = call ? 0.0 : opt.strike * std::exp(-r * tau);
      row[1] += 0.5 * dt * lo_t[1] * v_at_s0;
      row[m1 - 2] += 0.5 * dt * up_t[m1 - 2] * v_at_smax;
      lo_t[1] = 0.0;
      up_t[m1 - 2] = 0.0;
      solve_identity_minus(lo_t.data() + 1, di_t.data() + 1, up_t.data() + 1, 0.5 * dt,
                           row.data() + 1, m1 - 2, cp.data(), dp.data());
      for (int j = 1; j < m1 - 1; ++j) y1[idx(j, k)] = row[j];
      y1[idx(0, k)] = v_at_s0;
      y1[idx(m1 - 1, k)] = v_at_smax;
    }

    // ---- Implicit v-direction: (I - dt/2 A2) U' = Y1 - dt/2 A2 U.
    for (int j = 0; j < m1; ++j) {
      // v = vmax boundary: Dirichlet asymptotic V ~ forward intrinsic.
      const double s = j * ds;
      const double v_at_vmax = call ? s * std::exp(-q * tau)
                                    : std::max(opt.strike * std::exp(-r * tau) -
                                                   s * std::exp(-q * tau),
                                               0.0);
      for (int k = 0; k < m2 - 1; ++k) {
        const std::size_t c = idx(j, k);
        double a2u;
        if (k == 0) {
          a2u = a2_di[c] * u[c] + a2_up[c] * u[c + m1];
          lo_t[k] = 0.0;
        } else {
          a2u = a2_lo[c] * u[c - m1] + a2_di[c] * u[c] + a2_up[c] * u[c + m1];
          lo_t[k] = a2_lo[c];
        }
        row[k] = y1[c] - 0.5 * dt * a2u;
        di_t[k] = a2_di[c];
        up_t[k] = a2_up[c];
      }
      row[m2 - 2] += 0.5 * dt * up_t[m2 - 2] * v_at_vmax;
      up_t[m2 - 2] = 0.0;
      solve_identity_minus(lo_t.data(), di_t.data(), up_t.data(), 0.5 * dt, row.data(),
                           m2 - 1, cp.data(), dp.data());
      for (int k = 0; k < m2 - 1; ++k) u[idx(j, k)] = row[k];
      u[idx(j, m2 - 1)] = v_at_vmax;
    }
    // Re-impose the S boundaries on the final field.
    for (int k = 0; k < m2; ++k) {
      u[idx(0, k)] = call ? 0.0 : opt.strike * std::exp(-r * tau);
      u[idx(m1 - 1, k)] =
          call ? s_max * std::exp(-q * tau) - opt.strike * std::exp(-r * tau) : 0.0;
    }
    if (american) {
      // Explicit projection onto the early-exercise obstacle.
      for (int k = 0; k < m2; ++k) {
        for (int j = 0; j < m1; ++j) {
          const double s = j * ds;
          const double intrinsic =
              std::max(call ? s - opt.strike : opt.strike - s, 0.0);
          u[idx(j, k)] = std::max(u[idx(j, k)], intrinsic);
        }
      }
    }
  }

  SolvedGrid out;
  out.u = std::move(u);
  out.ds = ds;
  out.dv = dv;
  out.m1 = m1;
  out.m2 = m2;
  return out;
}

// Bilinear interpolation of any per-node quantity at (spot, v0).
template <class F>
double interp_at(const SolvedGrid& g, double spot, double v0, F&& node_value) {
  const double js =
      std::min(std::max(spot / g.ds, 0.0), static_cast<double>(g.m1 - 2));
  const double kv = std::min(std::max(v0 / g.dv, 0.0), static_cast<double>(g.m2 - 2));
  const int j0 = static_cast<int>(js), k0 = static_cast<int>(kv);
  const double fj = js - j0, fk = kv - k0;
  return (1 - fj) * (1 - fk) * node_value(j0, k0) + fj * (1 - fk) * node_value(j0 + 1, k0) +
         (1 - fj) * fk * node_value(j0, k0 + 1) + fj * fk * node_value(j0 + 1, k0 + 1);
}

}  // namespace

double price_fd(const core::OptionSpec& opt, const HestonParams& model, const FdParams& fd) {
  const SolvedGrid g = solve_grid(opt, model, fd);
  auto at = [&](int j, int k) { return g.u[static_cast<std::size_t>(k) * g.m1 + j]; };
  return interp_at(g, opt.spot, model.v0, at);
}

FdGreeks price_fd_greeks(const core::OptionSpec& opt, const HestonParams& model,
                         const FdParams& fd) {
  const SolvedGrid g = solve_grid(opt, model, fd);
  auto at = [&](int j, int k) { return g.u[static_cast<std::size_t>(k) * g.m1 + j]; };
  auto clampj = [&](int j) { return std::min(std::max(j, 1), g.m1 - 2); };
  FdGreeks out;
  out.price = interp_at(g, opt.spot, model.v0, at);
  // Central differences in S, interpolated in v.
  out.delta = interp_at(g, opt.spot, model.v0, [&](int j, int k) {
    const int jc = clampj(j);
    return (at(jc + 1, k) - at(jc - 1, k)) / (2.0 * g.ds);
  });
  out.gamma = interp_at(g, opt.spot, model.v0, [&](int j, int k) {
    const int jc = clampj(j);
    return (at(jc + 1, k) - 2.0 * at(jc, k) + at(jc - 1, k)) / (g.ds * g.ds);
  });
  return out;
}

}  // namespace finbench::kernels::heston
