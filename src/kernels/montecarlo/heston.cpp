#include "finbench/kernels/heston.hpp"

#include <cmath>
#include <complex>
#include <stdexcept>

#include "finbench/arch/aligned.hpp"
#include "finbench/core/analytic.hpp"
#include "finbench/core/quadrature.hpp"
#include "finbench/rng/normal.hpp"

namespace finbench::kernels::heston {

HestonPrice price_european(const core::OptionSpec& opt, const HestonParams& model,
                           const SimParams& sim) {
  if (opt.years <= 0) throw std::invalid_argument("heston: years must be positive");
  if (model.v0 < 0 || model.theta < 0 || model.xi < 0) {
    throw std::invalid_argument("heston: variance parameters must be non-negative");
  }
  if (model.rho < -1 || model.rho > 1) {
    throw std::invalid_argument("heston: rho must be in [-1, 1]");
  }
  const std::size_t npath = sim.num_paths;
  const int nstep = sim.num_steps;
  const double dt = opt.years / nstep;
  const double sqrt_dt = std::sqrt(dt);
  const double rho = model.rho;
  const double rho_bar = std::sqrt(1.0 - rho * rho);
  const double df = std::exp(-opt.rate * opt.years);

  arch::AlignedVector<double> zv(npath), zi(npath);
  arch::AlignedVector<double> log_s(npath, std::log(opt.spot));
  arch::AlignedVector<double> v(npath, model.v0);

  // Independent substreams for the two factors.
  rng::NormalStream stream_v(sim.seed, 0);
  rng::NormalStream stream_i(sim.seed, 1);

  for (int t = 0; t < nstep; ++t) {
    stream_v.fill(zv);
    stream_i.fill(zi);
#pragma omp simd
    for (std::size_t p = 0; p < npath; ++p) {
      const double vp = std::max(v[p], 0.0);  // full truncation
      const double sqrt_v = std::sqrt(vp);
      const double dw_v = sqrt_dt * zv[p];
      const double dw_s = rho * dw_v + rho_bar * sqrt_dt * zi[p];
      log_s[p] += (opt.rate - opt.dividend - 0.5 * vp) * dt + sqrt_v * dw_s;
      v[p] += model.kappa * (model.theta - vp) * dt + model.xi * sqrt_v * dw_v;
    }
  }

  double c0 = 0, c1 = 0, p0 = 0, p1 = 0;
  for (std::size_t p = 0; p < npath; ++p) {
    const double st = std::exp(log_s[p]);
    const double cpay = std::max(st - opt.strike, 0.0);
    const double ppay = std::max(opt.strike - st, 0.0);
    c0 += cpay;
    c1 += cpay * cpay;
    p0 += ppay;
    p1 += ppay * ppay;
  }
  const double n = static_cast<double>(npath);
  auto finish = [&](double s0, double s1) {
    mc::McResult r;
    const double mean = s0 / n;
    r.price = df * mean;
    r.std_error = df * std::sqrt(std::max(s1 / n - mean * mean, 0.0) / n);
    return r;
  };
  return {finish(c0, c1), finish(p0, p1)};
}

// --- American exercise via LSMC on (S, v) paths ----------------------------------

mc::McResult price_american_lsmc(const core::OptionSpec& opt, const HestonParams& model,
                                 const SimParams& sim) {
  if (opt.years <= 0) throw std::invalid_argument("heston lsmc: years must be positive");
  const std::size_t npath = sim.num_paths;
  const int nstep = sim.num_steps;
  const double dt = opt.years / nstep;
  const double sqrt_dt = std::sqrt(dt);
  const double rho = model.rho;
  const double rho_bar = std::sqrt(1.0 - rho * rho);
  const double df = std::exp(-opt.rate * dt);
  const bool call = opt.type == core::OptionType::kCall;
  const double inv_k = 1.0 / opt.strike;
  auto payoff = [&](double s) {
    return std::max(call ? s - opt.strike : opt.strike - s, 0.0);
  };

  // Forward simulation, storing S and v at every exercise date
  // (time-major blocks).
  arch::AlignedVector<double> spots(static_cast<std::size_t>(nstep) * npath);
  arch::AlignedVector<double> vars(static_cast<std::size_t>(nstep) * npath);
  {
    arch::AlignedVector<double> zv(npath), zi(npath);
    arch::AlignedVector<double> log_s(npath, std::log(opt.spot));
    arch::AlignedVector<double> v(npath, model.v0);
    rng::NormalStream stream_v(sim.seed, 0), stream_i(sim.seed, 1);
    for (int t = 0; t < nstep; ++t) {
      stream_v.fill(zv);
      stream_i.fill(zi);
      double* srow = spots.data() + static_cast<std::size_t>(t) * npath;
      double* vrow = vars.data() + static_cast<std::size_t>(t) * npath;
#pragma omp simd
      for (std::size_t p = 0; p < npath; ++p) {
        const double vp = std::max(v[p], 0.0);
        const double sqrt_v = std::sqrt(vp);
        const double dw_v = sqrt_dt * zv[p];
        const double dw_s = rho * dw_v + rho_bar * sqrt_dt * zi[p];
        log_s[p] += (opt.rate - opt.dividend - 0.5 * vp) * dt + sqrt_v * dw_s;
        v[p] += model.kappa * (model.theta - vp) * dt + model.xi * sqrt_v * dw_v;
        srow[p] = std::exp(log_s[p]);
        vrow[p] = std::max(v[p], 0.0);
      }
    }
  }

  // Backward induction with a 6-term basis {1, x, x^2, w, w^2, x w},
  // x = S/K, w = v: the variance state drives the continuation value.
  constexpr int kB = 6;
  arch::AlignedVector<double> value(npath);
  {
    const double* terminal = spots.data() + static_cast<std::size_t>(nstep - 1) * npath;
    for (std::size_t p = 0; p < npath; ++p) value[p] = payoff(terminal[p]);
  }
  for (int t = nstep - 1; t >= 1; --t) {
    const double* srow = spots.data() + static_cast<std::size_t>(t - 1) * npath;
    const double* vrow = vars.data() + static_cast<std::size_t>(t - 1) * npath;
    for (std::size_t p = 0; p < npath; ++p) value[p] *= df;

    double gram[kB][kB] = {};
    double rhs[kB] = {};
    std::size_t n_itm = 0;
    for (std::size_t p = 0; p < npath; ++p) {
      const double ex = payoff(srow[p]);
      if (ex <= 0.0) continue;
      ++n_itm;
      const double x = srow[p] * inv_k, w = vrow[p];
      const double basis[kB] = {1.0, x, x * x, w, w * w, x * w};
      for (int i = 0; i < kB; ++i) {
        for (int j = 0; j <= i; ++j) gram[i][j] += basis[i] * basis[j];
        rhs[i] += basis[i] * value[p];
      }
    }
    if (n_itm < 4 * kB) continue;
    for (int i = 0; i < kB; ++i) {
      for (int j = i + 1; j < kB; ++j) gram[i][j] = gram[j][i];
    }
    // Cholesky with a ridge (variance terms can be nearly collinear).
    const double ridge = 1e-9 * gram[0][0];
    for (int i = 0; i < kB; ++i) gram[i][i] += ridge;
    bool ok = true;
    for (int i = 0; i < kB && ok; ++i) {
      for (int j = 0; j <= i; ++j) {
        double sum = gram[i][j];
        for (int k = 0; k < j; ++k) sum -= gram[i][k] * gram[j][k];
        if (i == j) {
          if (sum <= 0) {
            ok = false;
            break;
          }
          gram[i][i] = std::sqrt(sum);
        } else {
          gram[i][j] = sum / gram[j][j];
        }
      }
    }
    if (!ok) continue;
    for (int i = 0; i < kB; ++i) {
      for (int k = 0; k < i; ++k) rhs[i] -= gram[i][k] * rhs[k];
      rhs[i] /= gram[i][i];
    }
    for (int i = kB - 1; i >= 0; --i) {
      for (int k = i + 1; k < kB; ++k) rhs[i] -= gram[k][i] * rhs[k];
      rhs[i] /= gram[i][i];
    }

    for (std::size_t p = 0; p < npath; ++p) {
      const double ex = payoff(srow[p]);
      if (ex <= 0.0) continue;
      const double x = srow[p] * inv_k, w = vrow[p];
      const double cont = rhs[0] + rhs[1] * x + rhs[2] * x * x + rhs[3] * w +
                          rhs[4] * w * w + rhs[5] * x * w;
      if (ex > cont) value[p] = ex;
    }
  }

  double sum = 0, sum2 = 0;
  for (std::size_t p = 0; p < npath; ++p) {
    const double v = df * value[p];
    sum += v;
    sum2 += v * v;
  }
  const double n = static_cast<double>(npath);
  mc::McResult out;
  out.price = std::max(sum / n, payoff(opt.spot));
  out.std_error = std::sqrt(std::max(sum2 / n - (sum / n) * (sum / n), 0.0) / n);
  return out;
}

// --- Semi-analytic (characteristic function) ------------------------------------

namespace {

using cplx = std::complex<double>;

// P_j probabilities, j = 1 (delta measure) / 2 (risk-neutral), in the
// "little Heston trap" formulation (Albrecher, Mayer, Schoutens, Tistaert
// 2007): numerically stable for long maturities.
double heston_pj(int j, const core::OptionSpec& o, const HestonParams& m) {
  const double tau = o.years;
  const double x = std::log(o.spot);
  const double lnk = std::log(o.strike);
  const double u_j = j == 1 ? 0.5 : -0.5;
  const double b_j = j == 1 ? m.kappa - m.rho * m.xi : m.kappa;
  const double a = m.kappa * m.theta;
  const cplx i(0.0, 1.0);

  auto integrand = [&](double phi) {
    const cplx ip = i * phi;
    const cplx d = std::sqrt((m.rho * m.xi * ip - b_j) * (m.rho * m.xi * ip - b_j) -
                             m.xi * m.xi * (2.0 * u_j * ip - phi * phi));
    const cplx gnum = b_j - m.rho * m.xi * ip - d;
    const cplx gden = b_j - m.rho * m.xi * ip + d;
    const cplx c = gnum / gden;  // 1/g of Heston's original paper
    const cplx edt = std::exp(-d * tau);
    const cplx big_c = (o.rate - o.dividend) * ip * tau +
                       (a / (m.xi * m.xi)) *
                           (gnum * tau - 2.0 * std::log((1.0 - c * edt) / (1.0 - c)));
    const cplx big_d = (gnum / (m.xi * m.xi)) * (1.0 - edt) / (1.0 - c * edt);
    const cplx f = std::exp(big_c + big_d * m.v0 + ip * x);
    return std::real(std::exp(-ip * lnk) * f / ip);
  };

  // The integrand decays like exp(-const * phi); 200 covers double range
  // for ordinary parameters. Composite 32-point Gauss-Legendre, denser
  // panels near zero where the oscillation is strongest.
  static const core::GaussLegendre rule(32);
  const double integral = rule.integrate_panels(integrand, 1e-10, 10.0, 8) +
                          rule.integrate_panels(integrand, 10.0, 200.0, 12);
  return 0.5 + integral / 3.14159265358979323846;
}

}  // namespace

AnalyticPrice price_analytic(const core::OptionSpec& opt, const HestonParams& model) {
  if (opt.years <= 0) throw std::invalid_argument("heston: years must be positive");
  if (model.xi <= 0) {
    // Deterministic-variance limit: integrated variance is available in
    // closed form; price with Black-Scholes at the average vol.
    const double kt = model.kappa * opt.years;
    const double avg_var =
        model.kappa < 1e-12
            ? model.v0
            : model.theta + (model.v0 - model.theta) * (1.0 - std::exp(-kt)) / kt;
    const core::BsPrice bs = core::black_scholes(opt.spot, opt.strike, opt.years, opt.rate,
                                                 std::sqrt(avg_var), opt.dividend);
    return {bs.call, bs.put};
  }
  const double p1 = heston_pj(1, opt, model);
  const double p2 = heston_pj(2, opt, model);
  const double df = std::exp(-opt.rate * opt.years);
  const double qf = std::exp(-opt.dividend * opt.years);
  AnalyticPrice out;
  out.call = opt.spot * qf * p1 - opt.strike * df * p2;
  out.put = out.call - opt.spot * qf + opt.strike * df;  // parity
  return out;
}

}  // namespace finbench::kernels::heston
