#include "finbench/kernels/asian.hpp"

#include <cmath>
#include <stdexcept>

#include "finbench/arch/aligned.hpp"
#include "finbench/kernels/brownian.hpp"
#include "finbench/rng/halton.hpp"
#include "finbench/rng/normal.hpp"
#include "finbench/vecmath/array_math.hpp"

namespace finbench::kernels::asian {

namespace {

int depth_of(int dates) {
  int depth = 0;
  while ((1 << depth) < dates) ++depth;
  if ((1 << depth) != dates) {
    throw std::invalid_argument("asian: num_averaging_dates must be a power of two");
  }
  return depth;
}

double cnd(double x) { return 0.5 * std::erfc(-x * 0.70710678118654752440); }

}  // namespace

double geometric_closed_form(const core::OptionSpec& opt, int dates) {
  if (opt.vol <= 0 || opt.years <= 0) {
    throw std::invalid_argument("asian: vol and years must be positive");
  }
  const int n = dates;
  const double dt = opt.years / n;
  const double nu = opt.rate - opt.dividend - 0.5 * opt.vol * opt.vol;
  // ln G ~ N(mu_g, sig_g^2), averaging over t_i = i dt, i = 1..n:
  //   mu_g  = ln S + nu * dt * (n+1)/2
  //   var_g = vol^2 * dt * (n+1)(2n+1) / (6n)
  const double mu_g = std::log(opt.spot) + nu * dt * (n + 1) / 2.0;
  const double var_g =
      opt.vol * opt.vol * dt * (n + 1.0) * (2.0 * n + 1.0) / (6.0 * n);
  const double sig_g = std::sqrt(var_g);
  const double df = std::exp(-opt.rate * opt.years);
  const double d1 = (mu_g - std::log(opt.strike) + var_g) / sig_g;
  const double d2 = d1 - sig_g;
  const double fwd_g = std::exp(mu_g + 0.5 * var_g);
  if (opt.type == core::OptionType::kCall) {
    return df * (fwd_g * cnd(d1) - opt.strike * cnd(d2));
  }
  return df * (opt.strike * cnd(-d2) - fwd_g * cnd(-d1));
}

mc::McResult price_arithmetic(const core::OptionSpec& opt, const AsianParams& params) {
  const int depth = depth_of(params.num_averaging_dates);
  const auto sched = brownian::BridgeSchedule::uniform(depth, opt.years);
  const std::size_t dims = sched.normals_per_path();
  const std::size_t np = sched.num_points();
  const int n = params.num_averaging_dates;
  const double dt = opt.years / n;
  const double nu = opt.rate - opt.dividend - 0.5 * opt.vol * opt.vol;
  const double df = std::exp(-opt.rate * opt.years);
  const bool call = opt.type == core::OptionType::kCall;
  const double sign = call ? 1.0 : -1.0;

  // Normal driver: pseudo-random stream or Halton through the inverse CDF.
  rng::NormalStream stream(params.seed);
  rng::Halton halton(static_cast<int>(dims), params.seed);
  arch::AlignedVector<double> z(dims), u(dims), w(np), w2(np);

  double sa = 0, saa = 0, sg = 0, sgg = 0, sag = 0;
  for (std::size_t pth = 0; pth < params.num_paths; ++pth) {
    if (params.quasi_random) {
      halton.next(u);
      vecmath::inverse_cnd(u, z);
    } else {
      stream.fill(z);
    }
    brownian::construct_reference(sched, z, 1, w);
    double avg = 0.0, log_sum = 0.0;
    for (int c = 1; c <= n; ++c) {
      const double log_s = std::log(opt.spot) + nu * dt * c + opt.vol * w[c];
      avg += std::exp(log_s);
      log_sum += log_s;
    }
    avg /= n;
    const double geo = std::exp(log_sum / n);
    const double pa = std::max(sign * (avg - opt.strike), 0.0);
    const double pg = std::max(sign * (geo - opt.strike), 0.0);
    sa += pa;
    saa += pa * pa;
    sg += pg;
    sgg += pg * pg;
    sag += pa * pg;
  }
  (void)w2;
  const double npaths = static_cast<double>(params.num_paths);
  const double mean_a = sa / npaths, mean_g = sg / npaths;
  double var_a = std::max(saa / npaths - mean_a * mean_a, 0.0);
  double est = mean_a;
  if (params.control_variate) {
    const double var_g = std::max(sgg / npaths - mean_g * mean_g, 0.0);
    const double cov = sag / npaths - mean_a * mean_g;
    if (var_g > 1e-300) {
      const double beta = cov / var_g;
      const double exact_g = geometric_closed_form(opt, n) / df;  // undiscounted
      est = mean_a - beta * (mean_g - exact_g);
      var_a = std::max(var_a - cov * cov / var_g, 0.0);
    }
  }
  mc::McResult out;
  out.price = df * est;
  out.std_error = df * std::sqrt(var_a / npaths);
  if (params.quasi_random) {
    // QMC points are deterministic: the variance-based SE is only a
    // heuristic. Report it but do not let it shrink below the rounding
    // floor (randomized QMC would give a rigorous interval).
    out.std_error = std::max(out.std_error, 1e-12);
  }
  return out;
}

}  // namespace finbench::kernels::asian
