#include "finbench/kernels/merton.hpp"

#include <cmath>
#include <stdexcept>

#include "finbench/core/analytic.hpp"
#include "finbench/rng/normal.hpp"
#include "finbench/rng/philox.hpp"

namespace finbench::kernels::merton {

namespace {

void validate(const core::OptionSpec& opt, const JumpParams& jumps) {
  if (opt.years <= 0 || opt.vol < 0) {
    throw std::invalid_argument("merton: years must be positive, vol non-negative");
  }
  if (jumps.intensity < 0 || jumps.jump_vol < 0) {
    throw std::invalid_argument("merton: intensity and jump_vol must be non-negative");
  }
  if (opt.style != core::ExerciseStyle::kEuropean) {
    throw std::invalid_argument("merton: European exercise only");
  }
}

}  // namespace

double price_series(const core::OptionSpec& opt, const JumpParams& jumps, int max_terms) {
  validate(opt, jumps);
  const double kbar = std::exp(jumps.jump_mean + 0.5 * jumps.jump_vol * jumps.jump_vol) - 1.0;
  const double lambda_p = jumps.intensity * (1.0 + kbar);  // risk-adj. intensity
  const double lt = lambda_p * opt.years;
  const bool call = opt.type == core::OptionType::kCall;

  double price = 0.0;
  double weight = std::exp(-lt);  // Poisson P(N = 0)
  for (int n = 0; n < max_terms; ++n) {
    if (n > 0) weight *= lt / n;
    // Conditional on n jumps: lognormal with adjusted vol and drift.
    const double var_n =
        opt.vol * opt.vol + n * jumps.jump_vol * jumps.jump_vol / opt.years;
    const double r_n = opt.rate - jumps.intensity * kbar +
                       n * (jumps.jump_mean + 0.5 * jumps.jump_vol * jumps.jump_vol) /
                           opt.years;
    const core::BsPrice bs = core::black_scholes(opt.spot, opt.strike, opt.years, r_n,
                                                 std::sqrt(var_n), opt.dividend);
    price += weight * (call ? bs.call : bs.put);
    if (weight < 1e-18 && n > lt) break;  // past the Poisson mode, tail dead
  }
  return price;
}

mc::McResult price_mc(const core::OptionSpec& opt, const JumpParams& jumps,
                      const SimParams& sim) {
  validate(opt, jumps);
  const double kbar = std::exp(jumps.jump_mean + 0.5 * jumps.jump_vol * jumps.jump_vol) - 1.0;
  const double mu =
      (opt.rate - opt.dividend - jumps.intensity * kbar - 0.5 * opt.vol * opt.vol) * opt.years;
  const double sig_rt = opt.vol * std::sqrt(opt.years);
  const double df = std::exp(-opt.rate * opt.years);
  const double lt = jumps.intensity * opt.years;
  const double p0 = std::exp(-lt);
  const bool call = opt.type == core::OptionType::kCall;

  rng::Philox4x32 gen(sim.seed, /*stream=*/0x4A);
  rng::NormalStream normals(sim.seed, /*stream=*/0x4B);

  double sum = 0, sum2 = 0;
  std::vector<double> z(2);
  for (std::size_t pth = 0; pth < sim.num_paths; ++pth) {
    // Jump count: Knuth's product-of-uniforms Poisson sampler.
    int n_jumps = 0;
    double prod = gen.next_u01();
    while (prod > p0) {
      ++n_jumps;
      prod *= gen.next_u01();
    }
    normals.fill({z.data(), 1});
    double log_s = mu + sig_rt * z[0];
    for (int j = 0; j < n_jumps; ++j) {
      normals.fill({z.data() + 1, 1});
      log_s += jumps.jump_mean + jumps.jump_vol * z[1];
    }
    const double st = opt.spot * std::exp(log_s);
    const double pay = std::max(call ? st - opt.strike : opt.strike - st, 0.0);
    sum += pay;
    sum2 += pay * pay;
  }
  const double n = static_cast<double>(sim.num_paths);
  mc::McResult out;
  const double mean = sum / n;
  out.price = df * mean;
  out.std_error = df * std::sqrt(std::max(sum2 / n - mean * mean, 0.0) / n);
  return out;
}

}  // namespace finbench::kernels::merton
