#include "finbench/kernels/lookback.hpp"

#include <cmath>
#include <stdexcept>

#include "finbench/arch/aligned.hpp"
#include "finbench/rng/normal.hpp"
#include "finbench/rng/philox.hpp"

namespace finbench::kernels::lookback {

namespace {

double cnd(double x) { return 0.5 * std::erfc(-x * 0.70710678118654752440); }

void validate(double years, double vol) {
  if (years <= 0 || vol <= 0) {
    throw std::invalid_argument("lookback: years and vol must be positive");
  }
}

}  // namespace

double floating_call_closed_form(double spot, double years, double rate, double dividend,
                                 double vol) {
  validate(years, vol);
  const double b = rate - dividend;  // cost of carry
  if (std::fabs(b) < 1e-10) {
    throw std::invalid_argument("lookback closed form: needs rate != dividend (b != 0)");
  }
  // Goldman–Sosin–Gatto with running minimum m = spot at inception
  // (ln(S/m) = 0, so the (S/m) powers collapse to 1):
  //   c = S e^{-qT} N(a1) - S e^{-rT} N(a2)
  //       + S e^{-rT} (sigma^2 / 2b) [ N(-a1 + (2b/sigma) sqrt(T))
  //                                    - e^{bT} N(-a1) ]
  const double sig_rt = vol * std::sqrt(years);
  const double a1 = (b + 0.5 * vol * vol) * years / sig_rt;
  const double a2 = a1 - sig_rt;
  const double df = std::exp(-rate * years);
  const double qf = std::exp(-dividend * years);
  const double ratio = vol * vol / (2.0 * b);
  return spot * qf * cnd(a1) - spot * df * cnd(a2) +
         spot * df * ratio *
             (cnd(-a1 + 2.0 * b * std::sqrt(years) / vol) - std::exp(b * years) * cnd(-a1));
}

mc::McResult price_floating_call_mc(double spot, double years, double rate, double dividend,
                                    double vol, const McParams& params) {
  validate(years, vol);
  const int nstep = params.num_steps;
  const double dt = years / nstep;
  const double drift = (rate - dividend - 0.5 * vol * vol) * dt;
  const double sig_dt = vol * std::sqrt(dt);
  const double two_s2dt = 2.0 * vol * vol * dt;
  const double df = std::exp(-rate * years);

  rng::NormalStream normals(params.seed, 0);
  rng::Philox4x32 uniforms(params.seed, 1);
  arch::AlignedVector<double> z(nstep);

  double sum = 0, sum2 = 0;
  for (std::size_t p = 0; p < params.num_paths; ++p) {
    normals.fill(z);
    double x = std::log(spot);
    double min_x = x;
    for (int t = 0; t < nstep; ++t) {
      const double x_next = x + drift + sig_dt * z[t];
      if (params.bridge_minimum) {
        // Exact conditional minimum of the bridge between x and x_next.
        const double u = std::max(uniforms.next_u01(), 1e-300);
        const double d = x_next - x;
        const double m =
            0.5 * (x + x_next - std::sqrt(d * d - two_s2dt * std::log(u)));
        if (m < min_x) min_x = m;
      } else if (x_next < min_x) {
        min_x = x_next;  // discrete monitoring: endpoints only
      }
      x = x_next;
    }
    const double pay = std::exp(x) - std::exp(min_x);  // S_T - min S
    sum += pay;
    sum2 += pay * pay;
  }
  const double n = static_cast<double>(params.num_paths);
  mc::McResult out;
  const double mean = sum / n;
  out.price = df * mean;
  out.std_error = df * std::sqrt(std::max(sum2 / n - mean * mean, 0.0) / n);
  return out;
}

}  // namespace finbench::kernels::lookback
