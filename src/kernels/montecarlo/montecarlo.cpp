#include "finbench/kernels/montecarlo.hpp"

#include <cassert>
#include <cmath>

#include "finbench/arch/aligned.hpp"
#include "finbench/core/scratch_pool.hpp"
#include "finbench/obs/metrics.hpp"
#include "finbench/obs/trace.hpp"
#include "finbench/rng/normal.hpp"
#include "finbench/simd/vec.hpp"
#include "finbench/vecmath/vecmath.hpp"

namespace finbench::kernels::mc {

namespace detail {

// Domain telemetry: total simulated paths across every MC entry point
// (options x paths per call). One relaxed atomic add per batch.
inline void count_paths(std::size_t paths) {
  static obs::Counter& c = obs::counter("mc.paths");
  c.add(paths);
}

}  // namespace detail

namespace {

struct PathParams {
  double v_rt_t;  // sigma * sqrt(T)
  double mu_t;    // (r - sigma^2/2) * T
  double df;      // exp(-r T)
  double sign;    // +1 call, -1 put
};

PathParams path_params(const core::OptionSpec& o) {
  return {o.vol * std::sqrt(o.years),
          (o.rate - o.dividend - 0.5 * o.vol * o.vol) * o.years, std::exp(-o.rate * o.years),
          o.type == core::OptionType::kCall ? 1.0 : -1.0};
}

McResult finalize(const PathParams& p, double v0, double v1, std::size_t npath) {
  McResult r;
  const double n = static_cast<double>(npath);
  const double mean = v0 / n;
  // Sample variance of the payoff; standard error of the mean.
  const double var = std::max(v1 / n - mean * mean, 0.0);
  r.price = p.df * mean;
  r.std_error = p.df * std::sqrt(var / n);
  return r;
}

}  // namespace

// --- Reference (Lis. 5, scalar) ---------------------------------------------

void price_reference_stream(std::span<const core::OptionSpec> opts, std::span<const double> z,
                            std::size_t npath, std::span<McResult> out) {
  assert(z.size() >= npath && out.size() >= opts.size());
  detail::count_paths(opts.size() * npath);
  for (std::size_t o = 0; o < opts.size(); ++o) {
    const PathParams p = path_params(opts[o]);
    double v0 = 0.0, v1 = 0.0;
    for (std::size_t i = 0; i < npath; ++i) {
      const double st = opts[o].spot * std::exp(p.v_rt_t * z[i] + p.mu_t);
      const double res = std::max(0.0, p.sign * (st - opts[o].strike));
      v0 += res;
      v1 += res * res;
    }
    out[o] = finalize(p, v0, v1, npath);
  }
}

// --- Basic: pragmas ----------------------------------------------------------

void price_basic_stream(std::span<const core::OptionSpec> opts, std::span<const double> z,
                        std::size_t npath, std::span<McResult> out) {
  assert(z.size() >= npath && out.size() >= opts.size());
  const std::ptrdiff_t nopt = static_cast<std::ptrdiff_t>(opts.size());
  detail::count_paths(opts.size() * npath);
#pragma omp parallel for schedule(dynamic, 1)
  for (std::ptrdiff_t o = 0; o < nopt; ++o) {
    FINBENCH_SPAN("mc.option");
    const PathParams p = path_params(opts[o]);
    const double spot = opts[o].spot, strike = opts[o].strike;
    double v0 = 0.0, v1 = 0.0;
    // Autovectorization + unroll: the compiler maps exp to its vector math
    // library (libmvec here, SVML in the paper) and splits the reductions.
#pragma omp simd reduction(+ : v0, v1)
    for (std::size_t i = 0; i < npath; ++i) {
      const double st = spot * std::exp(p.v_rt_t * z[i] + p.mu_t);
      const double res = std::max(0.0, p.sign * (st - strike));
      v0 += res;
      v1 += res * res;
    }
    out[o] = finalize(p, v0, v1, npath);
  }
}

// --- Optimized: explicit SIMD over paths --------------------------------------

namespace {

template <int W>
McMoments integrate_moments(const core::OptionSpec& opt, const double* z, std::size_t npath) {
  using V = simd::Vec<double, W>;
  const PathParams p = path_params(opt);
  const V spot(opt.spot), strike(opt.strike), vrt(p.v_rt_t), mu(p.mu_t), sign(p.sign);
  // Two independent accumulator pairs break the add latency chain.
  V v0a(0.0), v1a(0.0), v0b(0.0), v1b(0.0);
  std::size_t i = 0;
  for (; i + 2 * W <= npath; i += 2 * W) {
    const V za = V::loadu(z + i);
    const V zb = V::loadu(z + i + W);
    const V sta = spot * vecmath::exp(fmadd(vrt, za, mu));
    const V stb = spot * vecmath::exp(fmadd(vrt, zb, mu));
    const V ra = max(V(0.0), sign * (sta - strike));
    const V rb = max(V(0.0), sign * (stb - strike));
    v0a += ra;
    v1a = fmadd(ra, ra, v1a);
    v0b += rb;
    v1b = fmadd(rb, rb, v1b);
  }
  double v0 = hsum(v0a + v0b), v1 = hsum(v1a + v1b);
  for (; i < npath; ++i) {
    const double st = opt.spot * std::exp(p.v_rt_t * z[i] + p.mu_t);
    const double res = std::max(0.0, p.sign * (st - opt.strike));
    v0 += res;
    v1 += res * res;
  }
  return {v0, v1};
}

template <int W>
McResult integrate_paths(const core::OptionSpec& opt, const double* z, std::size_t npath) {
  const McMoments m = integrate_moments<W>(opt, z, npath);
  return finalize(path_params(opt), m.v0, m.v1, npath);
}

template <int W>
void optimized_stream_width(std::span<const core::OptionSpec> opts, std::span<const double> z,
                            std::size_t npath, std::span<McResult> out) {
  const std::ptrdiff_t nopt = static_cast<std::ptrdiff_t>(opts.size());
#pragma omp parallel for schedule(dynamic, 1)
  for (std::ptrdiff_t o = 0; o < nopt; ++o) {
    FINBENCH_SPAN("mc.option");
    out[o] = integrate_paths<W>(opts[o], z.data(), npath);
  }
}

// Per-worker normal-chunk storage: lease from the engine's scratch pool
// when it has room, local aligned allocation otherwise (standalone calls,
// exhausted pools). kRngChunk lives in the header so engines can size
// their pools.
struct ZBuf {
  core::ScratchPool::Lease lease;
  arch::AlignedVector<double> local;
  double* data = nullptr;

  explicit ZBuf(core::ScratchPool* pool) {
    if (pool != nullptr) lease = pool->claim(kRngChunk);
    if (lease) {
      data = lease.data();
    } else {
      local.resize(kRngChunk);
      data = local.data();
    }
  }
};

template <int W>
void optimized_computed_width(std::span<const core::OptionSpec> opts, std::size_t npath,
                              std::uint64_t seed, std::span<McResult> out,
                              std::uint64_t stream_base, core::ScratchPool* scratch) {
  using V = simd::Vec<double, W>;
  const std::ptrdiff_t nopt = static_cast<std::ptrdiff_t>(opts.size());
#pragma omp parallel
  {
    ZBuf zb(scratch);
    double* const zbuf = zb.data;
#pragma omp for schedule(dynamic, 1)
    for (std::ptrdiff_t o = 0; o < nopt; ++o) {
      FINBENCH_SPAN("mc.option");
      const core::OptionSpec& opt = opts[o];
      const PathParams p = path_params(opt);
      const V spot(opt.spot), strike(opt.strike), vrt(p.v_rt_t), mu(p.mu_t), sign(p.sign);
      rng::NormalStream stream(seed, stream_base + static_cast<std::uint64_t>(o));
      V v0v(0.0), v1v(0.0);
      double v0 = 0.0, v1 = 0.0;
      std::size_t done = 0;
      while (done < npath) {
        const std::size_t chunk = std::min(kRngChunk, npath - done);
        stream.fill({zbuf, chunk});
        std::size_t i = 0;
        for (; i + W <= chunk; i += W) {
          const V zv = V::load(zbuf + i);
          const V st = spot * vecmath::exp(fmadd(vrt, zv, mu));
          const V res = max(V(0.0), sign * (st - strike));
          v0v += res;
          v1v = fmadd(res, res, v1v);
        }
        for (; i < chunk; ++i) {
          const double st = opt.spot * std::exp(p.v_rt_t * zbuf[i] + p.mu_t);
          const double res = std::max(0.0, p.sign * (st - opt.strike));
          v0 += res;
          v1 += res * res;
        }
        done += chunk;
      }
      out[o] = finalize(p, v0 + hsum(v0v), v1 + hsum(v1v), npath);
    }
  }
}

}  // namespace

void price_optimized_stream(std::span<const core::OptionSpec> opts, std::span<const double> z,
                            std::size_t npath, std::span<McResult> out, Width w) {
  assert(z.size() >= npath && out.size() >= opts.size());
  detail::count_paths(opts.size() * npath);
  switch (w) {
    case Width::kScalar: optimized_stream_width<1>(opts, z, npath, out); return;
    case Width::kAvx2: optimized_stream_width<4>(opts, z, npath, out); return;
#if defined(FINBENCH_HAVE_AVX512)
    case Width::kAvx512:
    case Width::kAuto: optimized_stream_width<8>(opts, z, npath, out); return;
#else
    case Width::kAvx512:
    case Width::kAuto: optimized_stream_width<4>(opts, z, npath, out); return;
#endif
  }
}

McMoments integrate_stream_partial(const core::OptionSpec& opt, std::span<const double> z,
                                   Width w) {
  switch (w) {
    case Width::kScalar: return integrate_moments<1>(opt, z.data(), z.size());
    case Width::kAvx2: return integrate_moments<4>(opt, z.data(), z.size());
#if defined(FINBENCH_HAVE_AVX512)
    case Width::kAvx512:
    case Width::kAuto: return integrate_moments<8>(opt, z.data(), z.size());
#else
    case Width::kAvx512:
    case Width::kAuto: return integrate_moments<4>(opt, z.data(), z.size());
#endif
  }
  return {};
}

McResult finalize_moments(const core::OptionSpec& opt, const McMoments& m, std::size_t npath) {
  return finalize(path_params(opt), m.v0, m.v1, npath);
}

void price_reference_computed(std::span<const core::OptionSpec> opts, std::size_t npath,
                              std::uint64_t seed, std::span<McResult> out,
                              std::uint64_t stream_base, core::ScratchPool* scratch) {
  assert(out.size() >= opts.size());
  detail::count_paths(opts.size() * npath);
  ZBuf zb(scratch);
  double* const zbuf = zb.data;
  for (std::size_t o = 0; o < opts.size(); ++o) {
    const PathParams p = path_params(opts[o]);
    rng::NormalStream stream(seed, stream_base + o);
    double v0 = 0.0, v1 = 0.0;
    std::size_t done = 0;
    while (done < npath) {
      const std::size_t chunk = std::min(kRngChunk, npath - done);
      stream.fill({zbuf, chunk});
      for (std::size_t i = 0; i < chunk; ++i) {
        const double st = opts[o].spot * std::exp(p.v_rt_t * zbuf[i] + p.mu_t);
        const double res = std::max(0.0, p.sign * (st - opts[o].strike));
        v0 += res;
        v1 += res * res;
      }
      done += chunk;
    }
    out[o] = finalize(p, v0, v1, npath);
  }
}

void price_optimized_computed(std::span<const core::OptionSpec> opts, std::size_t npath,
                              std::uint64_t seed, std::span<McResult> out, Width w,
                              std::uint64_t stream_base, core::ScratchPool* scratch) {
  assert(out.size() >= opts.size());
  detail::count_paths(opts.size() * npath);
  switch (w) {
    case Width::kScalar:
      optimized_computed_width<1>(opts, npath, seed, out, stream_base, scratch);
      return;
    case Width::kAvx2:
      optimized_computed_width<4>(opts, npath, seed, out, stream_base, scratch);
      return;
#if defined(FINBENCH_HAVE_AVX512)
    case Width::kAvx512:
    case Width::kAuto:
      optimized_computed_width<8>(opts, npath, seed, out, stream_base, scratch);
      return;
#else
    case Width::kAvx512:
    case Width::kAuto:
      optimized_computed_width<4>(opts, npath, seed, out, stream_base, scratch);
      return;
#endif
  }
}

// --- Variance reduction ---------------------------------------------------------

void price_variance_reduced(std::span<const core::OptionSpec> opts, std::size_t npath,
                            std::uint64_t seed, std::span<McResult> out, bool antithetic,
                            bool control_variate, std::uint64_t stream_base,
                            core::ScratchPool* scratch) {
  assert(out.size() >= opts.size());
  detail::count_paths(opts.size() * npath);
  const std::ptrdiff_t nopt = static_cast<std::ptrdiff_t>(opts.size());
#pragma omp parallel
  {
    ZBuf zb(scratch);
    double* const zbuf = zb.data;
#pragma omp for schedule(dynamic, 1)
    for (std::ptrdiff_t o = 0; o < nopt; ++o) {
      const core::OptionSpec& opt = opts[o];
      const PathParams p = path_params(opt);
      rng::NormalStream stream(seed, stream_base + static_cast<std::uint64_t>(o));

      // One observation per draw: the (pair-averaged, when antithetic)
      // payoff and control. Pair averaging bakes the negative within-pair
      // covariance into the sample variance, so the reported SE reflects
      // the true variance reduction.
      double sp = 0, spp = 0, sc = 0, scc = 0, spc = 0;
      const std::size_t draws = antithetic ? (npath + 1) / 2 : npath;
      std::size_t done = 0;
      while (done < draws) {
        const std::size_t chunk = std::min(kRngChunk, draws - done);
        stream.fill({zbuf, chunk});
        for (std::size_t i = 0; i < chunk; ++i) {
          const double st_plus = opt.spot * std::exp(p.v_rt_t * zbuf[i] + p.mu_t);
          double pay = std::max(0.0, p.sign * (st_plus - opt.strike));
          double ctrl = st_plus;
          if (antithetic) {
            const double st_minus = opt.spot * std::exp(-p.v_rt_t * zbuf[i] + p.mu_t);
            pay = 0.5 * (pay + std::max(0.0, p.sign * (st_minus - opt.strike)));
            ctrl = 0.5 * (ctrl + st_minus);
          }
          sp += pay;
          spp += pay * pay;
          sc += ctrl;
          scc += ctrl * ctrl;
          spc += pay * ctrl;
        }
        done += chunk;
      }
      const double n = static_cast<double>(draws);
      const double mean_p = sp / n, mean_c = sc / n;
      double var_p = std::max(spp / n - mean_p * mean_p, 0.0);
      double est = mean_p;
      if (control_variate) {
        const double var_c = std::max(scc / n - mean_c * mean_c, 0.0);
        const double cov = spc / n - mean_p * mean_c;
        if (var_c > 1e-300) {
          const double beta = cov / var_c;
          // E[control] = S e^{(r-q)T} exactly (also the mean of the pair
          // average): subtract the correlated component.
          const double e_st = opt.spot * std::exp((opt.rate - opt.dividend) * opt.years);
          est = mean_p - beta * (mean_c - e_st);
          var_p = std::max(var_p - cov * cov / var_c, 0.0);
        }
      }
      McResult r;
      r.price = p.df * est;
      r.std_error = p.df * std::sqrt(var_p / n);
      out[o] = r;
    }
  }
}

// --- Pathwise greeks -------------------------------------------------------------

void greeks_pathwise(std::span<const core::OptionSpec> opts, std::size_t npath,
                     std::uint64_t seed, std::span<McGreeks> out) {
  assert(out.size() >= opts.size());
  const std::ptrdiff_t nopt = static_cast<std::ptrdiff_t>(opts.size());
#pragma omp parallel
  {
    arch::AlignedVector<double> zbuf(kRngChunk);
#pragma omp for schedule(dynamic, 1)
    for (std::ptrdiff_t o = 0; o < nopt; ++o) {
      const core::OptionSpec& opt = opts[o];
      const PathParams p = path_params(opt);
      const bool call = opt.type == core::OptionType::kCall;
      const double sig_rt = p.v_rt_t;
      const double drift_vega = (opt.rate - opt.dividend + 0.5 * opt.vol * opt.vol) *
                                opt.years;  // d S_T / d sigma uses this
      rng::NormalStream stream(seed, static_cast<std::uint64_t>(o));

      double sp = 0, sd = 0, sdd = 0, sv = 0, svv = 0, sg = 0;
      std::size_t done = 0;
      while (done < npath) {
        const std::size_t chunk = std::min(kRngChunk, npath - done);
        stream.fill({zbuf.data(), chunk});
        for (std::size_t i = 0; i < chunk; ++i) {
          const double z = zbuf[i];
          const double st = opt.spot * std::exp(p.v_rt_t * z + p.mu_t);
          const bool itm = call ? st > opt.strike : st < opt.strike;
          const double sign = call ? 1.0 : -1.0;
          const double pay = std::max(0.0, sign * (st - opt.strike));
          sp += pay;
          if (itm) {
            // Pathwise delta: d payoff / d S0 = sign * S_T / S0 on ITM paths.
            const double d = sign * st / opt.spot;
            sd += d;
            sdd += d * d;
            // Pathwise vega: d S_T / d sigma = S_T (ln(S_T/S0) - drift)/sigma.
            const double dst_dsig =
                st * (std::log(st / opt.spot) - drift_vega) / opt.vol;
            const double v = sign * dst_dsig;
            sv += v;
            svv += v * v;
          }
          // Likelihood-ratio gamma (payoff-kink-safe, unbiased).
          const double w = ((z * z - 1.0) / (opt.spot * opt.spot * sig_rt * sig_rt)) -
                           z / (opt.spot * opt.spot * sig_rt);
          sg += pay * w;
        }
        done += chunk;
      }
      const double n = static_cast<double>(npath);
      McGreeks g;
      g.price = p.df * sp / n;
      g.delta = p.df * sd / n;
      g.vega = p.df * sv / n;
      g.gamma = p.df * sg / n;
      const double md = sd / n, mv = sv / n;
      g.delta_se = p.df * std::sqrt(std::max(sdd / n - md * md, 0.0) / n);
      g.vega_se = p.df * std::sqrt(std::max(svv / n - mv * mv, 0.0) / n);
      out[o] = g;
    }
  }
}

}  // namespace finbench::kernels::mc
