#include "finbench/kernels/barrier.hpp"

#include <cmath>
#include <stdexcept>

#include "finbench/arch/aligned.hpp"
#include "finbench/rng/normal.hpp"
#include "finbench/vecmath/array_math.hpp"

namespace finbench::kernels::barrier {

namespace {

double cnd(double x) { return 0.5 * std::erfc(-x * 0.70710678118654752440); }

}  // namespace

double down_and_out_call(double spot, double strike, double barrier, double years, double rate,
                         double vol) {
  // Closed form implemented for zero dividend yield; the MC engine
  // supports q through OptionSpec::dividend.
  if (barrier > spot) return 0.0;  // already knocked out
  if (barrier > strike) {
    throw std::invalid_argument("down_and_out_call: closed form implemented for H <= K");
  }
  if (vol <= 0 || years <= 0) {
    throw std::invalid_argument("down_and_out_call: vol and years must be positive");
  }
  const double sig_rt = vol * std::sqrt(years);
  const double df = std::exp(-rate * years);
  const double lambda = (rate + 0.5 * vol * vol) / (vol * vol);
  const double d1 = (std::log(spot / strike) + (rate + 0.5 * vol * vol) * years) / sig_rt;
  const double d2 = d1 - sig_rt;
  const double y = std::log(barrier * barrier / (spot * strike)) / sig_rt + lambda * sig_rt;
  const double hs = barrier / spot;
  return spot * cnd(d1) - strike * df * cnd(d2) -
         spot * std::pow(hs, 2 * lambda) * cnd(y) +
         strike * df * std::pow(hs, 2 * lambda - 2) * cnd(y - sig_rt);
}

McPrice price_mc(const BarrierSpec& spec, const McParams& params) {
  const core::OptionSpec& o = spec.option;
  if (o.vol <= 0 || o.years <= 0) {
    throw std::invalid_argument("barrier mc: vol and years must be positive");
  }
  if (o.style != core::ExerciseStyle::kEuropean) {
    throw std::invalid_argument("barrier mc: European exercise only");
  }
  const bool down = spec.type == BarrierType::kDownAndOut;
  const double log_h = std::log(spec.barrier);
  // Already knocked out at inception?
  if ((down && o.spot <= spec.barrier) || (!down && o.spot >= spec.barrier)) return {};

  const std::size_t npath = params.num_paths;
  const int nstep = params.num_steps;
  const double dt = o.years / nstep;
  const double drift = (o.rate - o.dividend - 0.5 * o.vol * o.vol) * dt;
  const double sig_dt = o.vol * std::sqrt(dt);
  const double two_over_s2dt = 2.0 / (o.vol * o.vol * dt);
  const double df = std::exp(-o.rate * o.years);
  const bool call = o.type == core::OptionType::kCall;

  arch::AlignedVector<double> z(npath);
  arch::AlignedVector<double> log_s(npath, std::log(o.spot));
  arch::AlignedVector<double> survival(npath, 1.0);  // P(not knocked | path)
  rng::NormalStream stream(params.seed);

  for (int t = 0; t < nstep; ++t) {
    stream.fill(z);
#pragma omp simd
    for (std::size_t p = 0; p < npath; ++p) {
      const double prev = log_s[p];
      const double next = prev + drift + sig_dt * z[p];
      log_s[p] = next;
      // Distance to the barrier in log space, signed toward survival.
      const double a = down ? prev - log_h : log_h - prev;
      const double b = down ? next - log_h : log_h - next;
      double alive;
      if (a <= 0.0 || b <= 0.0) {
        alive = 0.0;  // endpoint breached: knocked for sure
      } else if (params.bridge_correction) {
        // Brownian-bridge crossing probability between the endpoints.
        alive = 1.0 - std::exp(-two_over_s2dt * a * b);
      } else {
        alive = 1.0;  // discrete monitoring: endpoints only
      }
      survival[p] *= alive;
    }
  }

  double sum = 0.0, sum2 = 0.0;
  for (std::size_t p = 0; p < npath; ++p) {
    const double st = std::exp(log_s[p]);
    const double pay = std::max(call ? st - o.strike : o.strike - st, 0.0) * survival[p];
    sum += pay;
    sum2 += pay * pay;
  }
  const double n = static_cast<double>(npath);
  McPrice out;
  const double mean = sum / n;
  out.price = df * mean;
  out.std_error = df * std::sqrt(std::max(sum2 / n - mean * mean, 0.0) / n);
  return out;
}

}  // namespace finbench::kernels::barrier
