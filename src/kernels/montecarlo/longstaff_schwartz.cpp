#include "finbench/kernels/lsmc.hpp"

#include <array>
#include <cmath>
#include <stdexcept>

#include "finbench/arch/aligned.hpp"
#include "finbench/rng/normal.hpp"
#include "finbench/vecmath/array_math.hpp"

namespace finbench::kernels::lsmc {

namespace {

constexpr int kMaxBasis = 6;  // 1, x, ..., x^5

// Solve the (k x k) normal equations G beta = rhs in place via Cholesky,
// with a tiny ridge for near-singular designs (few ITM paths).
void solve_normal_equations(std::array<std::array<double, kMaxBasis>, kMaxBasis>& g,
                            std::array<double, kMaxBasis>& rhs, int k) {
  const double ridge = 1e-10 * (g[0][0] > 0 ? g[0][0] : 1.0);
  for (int i = 0; i < k; ++i) g[i][i] += ridge;
  // Cholesky: g = L L^T.
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j <= i; ++j) {
      double sum = g[i][j];
      for (int p = 0; p < j; ++p) sum -= g[i][p] * g[j][p];
      if (i == j) {
        g[i][i] = std::sqrt(std::max(sum, 1e-300));
      } else {
        g[i][j] = sum / g[j][j];
      }
    }
  }
  // Forward/backward substitution into rhs (becomes beta).
  for (int i = 0; i < k; ++i) {
    for (int p = 0; p < i; ++p) rhs[i] -= g[i][p] * rhs[p];
    rhs[i] /= g[i][i];
  }
  for (int i = k - 1; i >= 0; --i) {
    for (int p = i + 1; p < k; ++p) rhs[i] -= g[p][i] * rhs[p];
    rhs[i] /= g[i][i];
  }
}

}  // namespace

LsmcResult price_american(const core::OptionSpec& opt, const LsmcParams& params) {
  if (params.basis_degree < 1 || params.basis_degree + 1 > kMaxBasis) {
    throw std::invalid_argument("lsmc: basis_degree must be in [1, 5]");
  }
  if (opt.vol <= 0 || opt.years <= 0) {
    throw std::invalid_argument("lsmc: vol and years must be positive");
  }
  const std::size_t npath = params.num_paths;
  const int nstep = params.num_steps;
  const int nbasis = params.basis_degree + 1;
  const double dt = opt.years / nstep;
  const double drift = (opt.rate - opt.dividend - 0.5 * opt.vol * opt.vol) * dt;
  const double sig_dt = opt.vol * std::sqrt(dt);
  const double df = std::exp(-opt.rate * dt);
  const bool call = opt.type == core::OptionType::kCall;
  const double inv_k = 1.0 / opt.strike;

  auto payoff = [&](double s) {
    return std::max(call ? s - opt.strike : opt.strike - s, 0.0);
  };

  // Forward simulation: spots[t-1] holds S at exercise date t (1..nstep),
  // time-major so each date's regression reads one contiguous block.
  arch::AlignedVector<double> spots(static_cast<std::size_t>(nstep) * npath);
  {
    arch::AlignedVector<double> z(npath);
    arch::AlignedVector<double> log_s(npath, std::log(opt.spot));
    rng::NormalStream stream(params.seed);
    for (int t = 0; t < nstep; ++t) {
      stream.fill(z);
      double* row = spots.data() + static_cast<std::size_t>(t) * npath;
#pragma omp simd
      for (std::size_t p = 0; p < npath; ++p) {
        log_s[p] += drift + sig_dt * z[p];
        row[p] = log_s[p];
      }
      vecmath::exp({row, npath}, {row, npath});
    }
  }

  // Backward induction. value[p] = option value at the *current* date.
  arch::AlignedVector<double> value(npath);
  {
    const double* terminal = spots.data() + static_cast<std::size_t>(nstep - 1) * npath;
    for (std::size_t p = 0; p < npath; ++p) value[p] = payoff(terminal[p]);
  }

  for (int t = nstep - 1; t >= 1; --t) {
    const double* s_row = spots.data() + static_cast<std::size_t>(t - 1) * npath;
    // Discount the downstream value to date t.
    for (std::size_t p = 0; p < npath; ++p) value[p] *= df;

    // Regress continuation on {1, x, x^2, ...}, x = S/K, ITM paths only.
    std::array<std::array<double, kMaxBasis>, kMaxBasis> gram{};
    std::array<double, kMaxBasis> rhs{};
    std::size_t n_itm = 0;
    for (std::size_t p = 0; p < npath; ++p) {
      const double ex = payoff(s_row[p]);
      if (ex <= 0.0) continue;
      ++n_itm;
      double basis[kMaxBasis];
      basis[0] = 1.0;
      const double x = s_row[p] * inv_k;
      for (int b = 1; b < nbasis; ++b) basis[b] = basis[b - 1] * x;
      for (int i = 0; i < nbasis; ++i) {
        for (int j = 0; j <= i; ++j) gram[i][j] += basis[i] * basis[j];
        rhs[i] += basis[i] * value[p];
      }
    }
    if (n_itm < static_cast<std::size_t>(2 * nbasis)) continue;  // nothing to exercise
    for (int i = 0; i < nbasis; ++i) {
      for (int j = i + 1; j < nbasis; ++j) gram[i][j] = gram[j][i];
    }
    solve_normal_equations(gram, rhs, nbasis);

    // Exercise where immediate payoff beats predicted continuation.
    for (std::size_t p = 0; p < npath; ++p) {
      const double ex = payoff(s_row[p]);
      if (ex <= 0.0) continue;
      const double x = s_row[p] * inv_k;
      double cont = rhs[nbasis - 1];
      for (int b = nbasis - 2; b >= 0; --b) cont = cont * x + rhs[b];
      if (ex > cont) value[p] = ex;
    }
  }

  // Discount date-1 values to today and aggregate.
  double sum = 0.0, sum2 = 0.0;
  for (std::size_t p = 0; p < npath; ++p) {
    const double v = df * value[p];
    sum += v;
    sum2 += v * v;
  }
  const double n = static_cast<double>(npath);
  LsmcResult out;
  out.price = sum / n;
  // An American option is worth at least its immediate payoff.
  out.price = std::max(out.price, payoff(opt.spot));
  out.std_error = std::sqrt(std::max(sum2 / n - (sum / n) * (sum / n), 0.0) / n);
  return out;
}

}  // namespace finbench::kernels::lsmc
