#include "finbench/kernels/brownian.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "finbench/arch/parallel.hpp"
#include "finbench/simd/vec.hpp"

namespace finbench::kernels::brownian {

// --- Schedule ---------------------------------------------------------------

BridgeSchedule BridgeSchedule::uniform(int depth, double total_time) {
  std::vector<double> times(std::size_t(1ULL << depth) + 1);
  const double dt = total_time / static_cast<double>(times.size() - 1);
  for (std::size_t i = 0; i < times.size(); ++i) times[i] = dt * static_cast<double>(i);
  return from_times(times);
}

BridgeSchedule BridgeSchedule::from_times(std::span<const double> times) {
  BridgeSchedule s;
  const std::size_t n = times.size();
  if (n < 2 || ((n - 1) & (n - 2)) != 0) {
    throw std::invalid_argument("BridgeSchedule: need 2^depth + 1 time points");
  }
  int depth = 0;
  while ((std::size_t{1} << depth) + 1 < n) ++depth;
  s.depth_ = depth;
  s.times_.assign(times.begin(), times.end());
  s.terminal_sig_ = std::sqrt(times[n - 1] - times[0]);

  const std::size_t total = (std::size_t{1} << depth) - 1;
  s.w_l_.resize(total);
  s.w_r_.resize(total);
  s.sig_.resize(total);
  for (int d = 0; d < depth; ++d) {
    const std::size_t stride = (n - 1) >> d;
    for (std::size_t c = 0; c < (std::size_t{1} << d); ++c) {
      const double tl = times[c * stride];
      const double tm = times[c * stride + stride / 2];
      const double tr = times[(c + 1) * stride];
      const std::size_t k = offset(d) + c;
      s.w_l_[k] = (tr - tm) / (tr - tl);
      s.w_r_[k] = (tm - tl) / (tr - tl);
      s.sig_[k] = std::sqrt((tm - tl) * (tr - tm) / (tr - tl));
    }
  }
  return s;
}

arch::AlignedVector<double> lane_block_normals(std::span<const double> z, std::size_t nsim,
                                               std::size_t per_path, int width) {
  assert(z.size() >= nsim * per_path);
  arch::AlignedVector<double> out(nsim * per_path);
  const std::size_t w = static_cast<std::size_t>(width);
  const std::size_t groups = nsim / w;
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t l = 0; l < w; ++l) {
      const std::size_t s = g * w + l;
      for (std::size_t i = 0; i < per_path; ++i) {
        out[g * per_path * w + i * w + l] = z[s * per_path + i];
      }
    }
  }
  // Tail paths keep per-path layout.
  for (std::size_t s = groups * w; s < nsim; ++s) {
    for (std::size_t i = 0; i < per_path; ++i) {
      out[s * per_path + i] = z[s * per_path + i];
    }
  }
  return out;
}

// --- Scalar construction (Lis. 4) -------------------------------------------

namespace {

// Build one path into `scratch` (num_points doubles); z points at this
// path's normals_per_path() normals.
void build_one(const BridgeSchedule& sched, const double* z, double* scratch, double* scratch2) {
  const int depth = sched.depth();
  std::size_t zi = 0;
  double* src = scratch;
  double* dst = scratch2;
  src[0] = 0.0;
  src[1] = z[zi++] * sched.terminal_sig();
  for (int d = 0; d < depth; ++d) {
    const double* wl = sched.w_l(d);
    const double* wr = sched.w_r(d);
    const double* sg = sched.sig(d);
    dst[0] = src[0];
    for (std::size_t c = 0; c < (std::size_t{1} << d); ++c) {
      dst[2 * c + 1] = src[c] * wl[c] + src[c + 1] * wr[c] + sg[c] * z[zi++];
      dst[2 * c + 2] = src[c + 1];
    }
    std::swap(src, dst);
  }
  if (src != scratch) {
    for (std::size_t c = 0; c < sched.num_points(); ++c) scratch[c] = src[c];
  }
}

}  // namespace

void construct_reference(const BridgeSchedule& sched, std::span<const double> z,
                         std::size_t nsim, std::span<double> out) {
  const std::size_t np = sched.num_points();
  const std::size_t zn = sched.normals_per_path();
  assert(z.size() >= nsim * zn && out.size() >= nsim * np);
  arch::AlignedVector<double> a(np), b(np);
  for (std::size_t s = 0; s < nsim; ++s) {
    build_one(sched, z.data() + s * zn, a.data(), b.data());
    for (std::size_t c = 0; c < np; ++c) out[c * nsim + s] = a[c];
  }
}

void construct_basic(const BridgeSchedule& sched, std::span<const double> z, std::size_t nsim,
                     std::span<double> out) {
  const std::size_t np = sched.num_points();
  const std::size_t zn = sched.normals_per_path();
  assert(z.size() >= nsim * zn && out.size() >= nsim * np);
#pragma omp parallel
  {
    arch::AlignedVector<double> a(np), b(np);
#pragma omp for schedule(static)
    for (std::ptrdiff_t s = 0; s < static_cast<std::ptrdiff_t>(nsim); ++s) {
      build_one(sched, z.data() + static_cast<std::size_t>(s) * zn, a.data(), b.data());
      for (std::size_t c = 0; c < np; ++c) out[c * nsim + static_cast<std::size_t>(s)] = a[c];
    }
  }
}

// --- SIMD across paths -------------------------------------------------------

namespace {

// Build W paths at once. z is lane-blocked for this group; out columns are
// contiguous (point-major layout), so stores are full-width.
template <int W>
void build_group(const BridgeSchedule& sched, const double* z, double* out, std::size_t nsim,
                 std::size_t group_base, double* vsrc, double* vdst) {
  using V = simd::Vec<double, W>;
  const int depth = sched.depth();
  std::size_t zi = 0;

  double* src = vsrc;
  double* dst = vdst;
  V(0.0).store(src);
  (V::load(z + (zi++) * W) * V(sched.terminal_sig())).store(src + W);

  for (int d = 0; d < depth; ++d) {
    const double* wl = sched.w_l(d);
    const double* wr = sched.w_r(d);
    const double* sg = sched.sig(d);
    V::load(src).store(dst);
    for (std::size_t c = 0; c < (std::size_t{1} << d); ++c) {
      const V left = V::load(src + c * W);
      const V right = V::load(src + (c + 1) * W);
      const V zv = V::load(z + (zi++) * W);
      const V mid = fmadd(left, V(wl[c]), fmadd(right, V(wr[c]), V(sg[c]) * zv));
      mid.store(dst + (2 * c + 1) * W);
      right.store(dst + (2 * c + 2) * W);
    }
    std::swap(src, dst);
  }
  for (std::size_t c = 0; c < sched.num_points(); ++c) {
    V::load(src + c * W).storeu(out + c * nsim + group_base);
  }
}

template <int W>
void construct_simd(const BridgeSchedule& sched, std::span<const double> z, std::size_t nsim,
                    std::span<double> out) {
  const std::size_t np = sched.num_points();
  const std::size_t zn = sched.normals_per_path();
  const std::size_t groups = nsim / W;
#pragma omp parallel
  {
    arch::AlignedVector<double> a(np * W), b(np * W);
#pragma omp for schedule(static)
    for (std::ptrdiff_t g = 0; g < static_cast<std::ptrdiff_t>(groups); ++g) {
      build_group<W>(sched, z.data() + static_cast<std::size_t>(g) * zn * W, out.data(), nsim,
                     static_cast<std::size_t>(g) * W, a.data(), b.data());
    }
  }
  // Tail paths: scalar (their z kept per-path layout).
  arch::AlignedVector<double> a(np), b(np);
  for (std::size_t s = groups * W; s < nsim; ++s) {
    build_one(sched, z.data() + s * zn, a.data(), b.data());
    for (std::size_t c = 0; c < np; ++c) out[c * nsim + s] = a[c];
  }
}

// Interleaved generation: per group of W paths, generate the zn*W normals
// into a cache-resident buffer and consume immediately. Each group gets an
// independent Philox stream so the construction is parallel and
// reproducible regardless of thread count.
template <int W, class Consume>
void run_interleaved(const BridgeSchedule& sched, std::uint64_t seed, std::size_t nsim,
                     Consume&& consume) {
  const std::size_t np = sched.num_points();
  const std::size_t zn = sched.normals_per_path();
  const std::size_t groups = (nsim + W - 1) / W;
#pragma omp parallel
  {
    arch::AlignedVector<double> zbuf(zn * W);
    arch::AlignedVector<double> a(np * W), b(np * W);
#pragma omp for schedule(static)
    for (std::ptrdiff_t g = 0; g < static_cast<std::ptrdiff_t>(groups); ++g) {
      rng::NormalStream stream(seed, static_cast<std::uint64_t>(g));
      stream.fill(zbuf);
      const std::size_t base = static_cast<std::size_t>(g) * W;
      const std::size_t lanes = std::min<std::size_t>(W, nsim - base);
      if (lanes == W) {
        // Full group: vector construction straight from the cache buffer.
        double* src = a.data();
        double* dst = b.data();
        using V = simd::Vec<double, W>;
        std::size_t zi = 0;
        V(0.0).store(src);
        (V::load(zbuf.data()) * V(sched.terminal_sig())).store(src + W);
        ++zi;
        for (int d = 0; d < sched.depth(); ++d) {
          const double* wl = sched.w_l(d);
          const double* wr = sched.w_r(d);
          const double* sg = sched.sig(d);
          V::load(src).store(dst);
          for (std::size_t c = 0; c < (std::size_t{1} << d); ++c) {
            const V left = V::load(src + c * W);
            const V right = V::load(src + (c + 1) * W);
            const V zv = V::load(zbuf.data() + (zi++) * W);
            fmadd(left, V(wl[c]), fmadd(right, V(wr[c]), V(sg[c]) * zv))
                .store(dst + (2 * c + 1) * W);
            right.store(dst + (2 * c + 2) * W);
          }
          std::swap(src, dst);
        }
        consume(src, base, W);
      } else {
        // Ragged final group: scalar per lane, reading lane-strided normals.
        for (std::size_t l = 0; l < lanes; ++l) {
          arch::AlignedVector<double> zs(zn);
          for (std::size_t i = 0; i < zn; ++i) zs[i] = zbuf[i * W + l];
          arch::AlignedVector<double> pa(np), pb(np);
          build_one(sched, zs.data(), pa.data(), pb.data());
          consume(pa.data(), base + l, 1);
        }
      }
    }
  }
}

}  // namespace

void construct_intermediate(const BridgeSchedule& sched, std::span<const double> z,
                            std::size_t nsim, std::span<double> out, Width w) {
  assert(out.size() >= nsim * sched.num_points());
  switch (w) {
    case Width::kScalar: construct_simd<1>(sched, z, nsim, out); return;
    case Width::kAvx2: construct_simd<4>(sched, z, nsim, out); return;
#if defined(FINBENCH_HAVE_AVX512)
    case Width::kAvx512:
    case Width::kAuto: construct_simd<8>(sched, z, nsim, out); return;
#else
    case Width::kAvx512:
    case Width::kAuto: construct_simd<4>(sched, z, nsim, out); return;
#endif
  }
}

namespace {

template <int W>
void advanced_interleaved_width(const BridgeSchedule& sched, std::uint64_t seed,
                                std::size_t nsim, std::span<double> out) {
  const std::size_t np = sched.num_points();
  run_interleaved<W>(sched, seed, nsim,
                     [&](const double* path, std::size_t base, std::size_t lanes) {
                       // path is [point][lane] for `lanes` paths.
                       for (std::size_t c = 0; c < np; ++c) {
                         for (std::size_t l = 0; l < lanes; ++l) {
                           out[c * nsim + base + l] = path[c * lanes + l];
                         }
                       }
                     });
}

template <int W>
void advanced_fused_width(const BridgeSchedule& sched, std::uint64_t seed, std::size_t nsim,
                          std::span<double> avg_out) {
  const std::size_t np = sched.num_points();
  const double inv = 1.0 / static_cast<double>(np - 1);
  run_interleaved<W>(sched, seed, nsim,
                     [&](const double* path, std::size_t base, std::size_t lanes) {
                       for (std::size_t l = 0; l < lanes; ++l) {
                         double acc = 0.0;
                         for (std::size_t c = 1; c < np; ++c) acc += path[c * lanes + l];
                         avg_out[base + l] = acc * inv;
                       }
                     });
}

}  // namespace

void construct_advanced_interleaved(const BridgeSchedule& sched, std::uint64_t seed,
                                    std::size_t nsim, std::span<double> out, Width w) {
  assert(out.size() >= nsim * sched.num_points());
  switch (w) {
    case Width::kScalar: advanced_interleaved_width<1>(sched, seed, nsim, out); return;
    case Width::kAvx2: advanced_interleaved_width<4>(sched, seed, nsim, out); return;
#if defined(FINBENCH_HAVE_AVX512)
    case Width::kAvx512:
    case Width::kAuto: advanced_interleaved_width<8>(sched, seed, nsim, out); return;
#else
    case Width::kAvx512:
    case Width::kAuto: advanced_interleaved_width<4>(sched, seed, nsim, out); return;
#endif
  }
}

void construct_advanced_fused(const BridgeSchedule& sched, std::uint64_t seed, std::size_t nsim,
                              std::span<double> path_average_out, Width w) {
  assert(path_average_out.size() >= nsim);
  switch (w) {
    case Width::kScalar: advanced_fused_width<1>(sched, seed, nsim, path_average_out); return;
    case Width::kAvx2: advanced_fused_width<4>(sched, seed, nsim, path_average_out); return;
#if defined(FINBENCH_HAVE_AVX512)
    case Width::kAvx512:
    case Width::kAuto: advanced_fused_width<8>(sched, seed, nsim, path_average_out); return;
#else
    case Width::kAvx512:
    case Width::kAuto: advanced_fused_width<4>(sched, seed, nsim, path_average_out); return;
#endif
  }
}

}  // namespace finbench::kernels::brownian
