#include "finbench/kernels/cranknicolson.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>

#include "finbench/arch/aligned.hpp"
#include "finbench/obs/metrics.hpp"
#include "finbench/obs/trace.hpp"
#include "finbench/simd/vec.hpp"
#include "finbench/vecmath/array_math.hpp"
#include "finbench/vecmath/vecmath.hpp"

namespace finbench::kernels::cn {

namespace {

constexpr long kMaxItersPerStep = 100000;

// Heat-equation transform of the Black–Scholes problem (see header). With
// a continuous dividend yield the drift coefficient k1 = 2(r-q)/sigma^2
// and the discount coefficient k2 = 2r/sigma^2 separate; for q = 0 both
// equal k and the familiar (k+1)^2/4 exponent appears.
struct Transform {
  double q;           // k1 = 2 (r - div) / sigma^2 (drives the payoff shape)
  double a, b;        // (k1-1)/2, (k1+1)/2
  double scale_coef;  // (k1-1)^2/4 + k2: the tau-exponent of the obstacle
  double tau_max;     // sigma^2 T / 2
  double x0;          // ln(S/K)
  double xmin, dx, dtau, alpha;
  int m, n, mid;
  double strike;
  bool call;

  double x_at(int j) const { return xmin + dx * j; }

  // Obstacle / payoff in transformed coordinates.
  double payoff(double x, double tau) const {
    const double scale = std::exp(scale_coef * tau);
    const double e1 = std::exp(a * x);
    const double e2 = std::exp(b * x);
    return scale * std::max(call ? e2 - e1 : e1 - e2, 0.0);
  }

  double to_price(double u_center) const {
    return strike * u_center * std::exp(-a * x0 - scale_coef * tau_max);
  }
};

Transform make_transform(const core::OptionSpec& o, const GridSpec& g) {
  if (o.vol <= 0 || o.years <= 0) {
    throw std::invalid_argument("crank-nicolson: vol and years must be positive");
  }
  Transform t;
  t.q = 2.0 * (o.rate - o.dividend) / (o.vol * o.vol);
  const double k2 = 2.0 * o.rate / (o.vol * o.vol);
  // The log-transform's obstacle carries factors e^{(k±1)x/2}: when
  // |2r/sigma^2| is large (near-zero volatility vs the rate) those span
  // hundreds of orders of magnitude across the grid and double precision
  // cannot represent the solution. Reject and point at the alternatives.
  if (std::fabs(t.q) > 60.0 || std::fabs(k2) > 60.0) {
    throw std::invalid_argument(
        "crank-nicolson: |2 r / sigma^2| too large (near-zero volatility); "
        "the transformed obstacle overflows double precision — use the "
        "lattice pricers or the closed form in this regime");
  }
  t.a = 0.5 * (t.q - 1);
  t.b = 0.5 * (t.q + 1);
  t.scale_coef = 0.25 * (t.q - 1) * (t.q - 1) + k2;
  t.tau_max = 0.5 * o.vol * o.vol * o.years;
  t.x0 = std::log(o.spot / o.strike);
  t.m = g.num_prices;
  t.n = g.num_steps;
  t.mid = (t.m - 1) / 2;
  const double half =
      g.halfwidth > 0 ? g.halfwidth : 5.0 * o.vol * std::sqrt(o.years) + std::fabs(t.x0) + 0.5;
  t.dx = 2.0 * half / (t.m - 1);
  t.xmin = t.x0 - t.mid * t.dx;  // grid centered so x0 is a grid point
  t.dtau = t.tau_max / t.n;
  t.alpha = t.dtau / (t.dx * t.dx);
  t.strike = o.strike;
  t.call = o.type == core::OptionType::kCall;
  return t;
}

// Convergence threshold: GridSpec::epsilon is relative to the squared
// payoff scale so options of different magnitude converge equally.
double epsilon_abs(const Transform& t, const GridSpec& g) {
  double scale = 0.0;
  for (int j = 0; j < t.m; ++j) scale = std::max(scale, std::fabs(t.payoff(t.x_at(j), 0.0)));
  return g.epsilon * std::max(1.0, scale * scale);
}

// Obstacle G for time level tau. The paper's u_payoff loop is exp-dominated
// but autovectorizes ("generating SVML intrinsics", Sec. IV-E1) — roughly
// 10% of solve time — so every variant here uses the same vectorized fill:
// per step, two whole-array exp passes over the precomputed a*x and b*x
// arguments (the same work the paper's loop performs each step).
struct ObstacleFiller {
  arch::AlignedVector<double> ax, bx, e1, e2;

  explicit ObstacleFiller(const Transform& t)
      : ax(t.m), bx(t.m), e1(t.m), e2(t.m) {
    for (int j = 0; j < t.m; ++j) {
      ax[j] = t.a * t.x_at(j);
      bx[j] = t.b * t.x_at(j);
    }
  }

  void fill(const Transform& t, double tau, double* g) {
    const double scale = std::exp(t.scale_coef * tau);
    vecmath::exp(ax, e1);
    vecmath::exp(bx, e2);
    const double sign = t.call ? -1.0 : 1.0;
#pragma omp simd
    for (int j = 0; j < t.m; ++j) {
      g[j] = scale * std::max(sign * (e1[j] - e2[j]), 0.0);
    }
  }
};

// Explicit half-step: B_j = (1-alpha) U_j + alpha/2 (U_{j+1} + U_{j-1}).
void explicit_half(const Transform& t, const double* u, double* b) {
  const double a1 = 1.0 - t.alpha;
  const double a2 = 0.5 * t.alpha;
#pragma omp simd
  for (int j = 1; j < t.m - 1; ++j) b[j] = a1 * u[j] + a2 * (u[j + 1] + u[j - 1]);
}

// --- Scalar PSOR (Lis. 7) ----------------------------------------------------

// Runs `block` iterations; returns the squared-update error of the LAST
// iteration (callers decide convergence). Updates u in place.
double psor_iterations(double* u, const double* b, const double* g, int m, double alpha,
                       double omega, int block) {
  const double coeff = 1.0 / (1.0 + alpha);
  const double a2 = 0.5 * alpha;
  double err = 0.0;
  for (int it = 0; it < block; ++it) {
    err = 0.0;
    for (int j = 1; j < m - 1; ++j) {
      const double y = coeff * (b[j] + a2 * (u[j - 1] + u[j + 1]));
      const double un = std::max(g[j], u[j] + omega * (y - u[j]));
      const double d = un - u[j];
      err += d * d;
      u[j] = un;
    }
  }
  return err;
}

// One full solve given a PSOR driver `solve_step(u, b, g, omega) -> loops`.
template <class StepSolver>
SolveResult run_time_loop(const Transform& t, const GridSpec& grid, StepSolver&& solve_step) {
  arch::AlignedVector<double> u(t.m), b(t.m), g(t.m);
  for (int j = 0; j < t.m; ++j) u[j] = t.payoff(t.x_at(j), 0.0);
  ObstacleFiller filler(t);

  SolveResult result;
  double omega = grid.omega0;
  long prev_loops = std::numeric_limits<long>::max();
  for (int n = 1; n <= t.n; ++n) {
    const double tau = n * t.dtau;
    {
      FINBENCH_SPAN("cn.explicit_half");
      explicit_half(t, u.data(), b.data());
    }
    {
      FINBENCH_SPAN("cn.obstacle_boundary");
      filler.fill(t, tau, g.data());
      u[0] = g[0];
      u[t.m - 1] = g[t.m - 1];
    }
    FINBENCH_SPAN("cn.solve");
    const long loops = solve_step(u.data(), b.data(), g.data(), omega);
    result.total_iterations += loops;
    // Relaxation adaptation in the spirit of Lis. 6: when the iteration
    // count grows, push omega toward the over-relaxed regime.
    if (loops > prev_loops) omega = std::min(omega + grid.domega, 1.95);
    prev_loops = loops;
  }
  result.price = t.to_price(u[t.mid]);
  return result;
}

}  // namespace

SolveResult price_reference(const core::OptionSpec& opt, const GridSpec& grid) {
  const Transform t = make_transform(opt, grid);
  const double eps = epsilon_abs(t, grid);
  return run_time_loop(t, grid, [&](double* u, const double* b, const double* g, double omega) {
    long loops = 0;
    double err;
    do {
      err = psor_iterations(u, b, g, t.m, t.alpha, omega, 1);
      ++loops;
    } while (err > eps && loops < kMaxItersPerStep);
    return loops;
  });
}

SolveResult price_reference_blocked(const core::OptionSpec& opt, const GridSpec& grid,
                                    int block) {
  const Transform t = make_transform(opt, grid);
  const double eps = epsilon_abs(t, grid);
  return run_time_loop(t, grid, [&](double* u, const double* b, const double* g, double omega) {
    long loops = 0;
    double err;
    do {
      err = psor_iterations(u, b, g, t.m, t.alpha, omega, block);
      loops += block;
    } while (err > eps && loops < kMaxItersPerStep);
    return loops;
  });
}

// --- Pipelined GSOR sweeps (see header) --------------------------------------

void run_wave_sweep(const WaveSweep& s) {
  const double coeff = 1.0 / (1.0 + s.alpha);
  const double a2 = 0.5 * s.alpha;
  double err = 0.0;
  for (int j = 1; j < s.m - 1; ++j) {
    if (s.prev != nullptr) {
      // Sweep k-1 must be past point j+1: u[j+1] then holds its value and
      // it will never read u[j] again, so this sweep may overwrite it.
      // The predecessor was dispatched first (FIFO contract), so the spin
      // always makes progress; yield keeps an oversubscribed host live.
      int spins = 0;
      while (s.prev->load(std::memory_order_acquire) < j + 1) {
        if (++spins >= 1024) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
    const double y = coeff * (s.b[j] + a2 * (s.u[j - 1] + s.u[j + 1]));
    const double un = std::max(s.g[j], s.u[j] + s.omega * (y - s.u[j]));
    const double d = un - s.u[j];
    err += d * d;
    s.u[j] = un;
    s.progress->store(j, std::memory_order_release);
  }
  // Past-the-end marker: the successor's wait for m-2+1 passes.
  s.progress->store(s.m, std::memory_order_release);
  *s.err_out = err;
}

void serial_wave_runner(void*, WaveSweep* sweeps, int nsweeps) {
  for (int i = 0; i < nsweeps; ++i) run_wave_sweep(sweeps[i]);
}

SolveResult price_wavefront_tasked(const core::OptionSpec& opt, const GridSpec& grid,
                                   int block, WaveRunner runner, void* ctx) {
  if (block < 1 || block > kMaxWaveBlock) {
    throw std::invalid_argument("crank-nicolson tasked: block outside [1, kMaxWaveBlock]");
  }
  const Transform t = make_transform(opt, grid);
  const double eps = epsilon_abs(t, grid);
  return run_time_loop(t, grid, [&](double* u, const double* b, const double* g, double omega) {
    long loops = 0;
    double err;
    std::atomic<long> progress[kMaxWaveBlock];
    double errs[kMaxWaveBlock];
    WaveSweep sweeps[kMaxWaveBlock];
    do {
      for (int k = 0; k < block; ++k) {
        progress[k].store(0, std::memory_order_relaxed);
        errs[k] = 0.0;
        sweeps[k] = WaveSweep{u,        b,
                              g,        t.m,
                              t.alpha,  omega,
                              &errs[k], &progress[k],
                              k > 0 ? &progress[k - 1] : nullptr};
      }
      runner(ctx, sweeps, block);
      err = errs[block - 1];
      loops += block;
    } while (err > eps && loops < kMaxItersPerStep);
    return loops;
  });
}

// --- Wavefront SIMD ----------------------------------------------------------

namespace {

// Scalar update of one point for iteration-diagonal phases; accumulates the
// squared update into err[c] for convergence iteration c of the block.
inline void update_point(double* u, const double* b, const double* g, int j, double coeff,
                         double a2, double omega, double& err_c) {
  const double y = coeff * (b[j] + a2 * (u[j - 1] + u[j + 1]));
  const double un = std::max(g[j], u[j] + omega * (y - u[j]));
  const double d = un - u[j];
  err_c += d * d;
  u[j] = un;
}

// One block of W PSOR iterations along the t = 2k + j wavefront, with
// stride-2 gathers (the "Manual SIMD" variant). Lane l carries iteration
// c = W-1-l of the block, so lane positions j = base + 2l ascend.
// Returns the squared-update error of the newest iteration (c = W-1).
template <int W>
double wavefront_block_gather(double* u, const double* b, const double* g, int m, double alpha,
                              double omega) {
  using V = simd::Vec<double, W>;
  const double coeff_s = 1.0 / (1.0 + alpha);
  const double a2_s = 0.5 * alpha;
  const V coeff(coeff_s), a2(a2_s), om(omega);

  double err[W] = {};  // err[c] for iteration c of this block
  const int last_j = m - 2;
  const int total_steps = last_j + 2 * (W - 1);  // s = 1 .. total_steps

  alignas(64) std::int32_t idx[W];
  for (int l = 0; l < W; ++l) idx[l] = 2 * l;

  // A step s updates, for iteration c, the point j = s - 2c (active when
  // 1 <= j <= m-2). Steady state = all W iterations active.
  const int steady_lo = 1 + 2 * (W - 1);
  const int steady_hi = last_j;

  V verr(0.0);
  for (int s = 1; s <= total_steps; ++s) {
    if (s >= steady_lo && s <= steady_hi) {
      const int base = s - 2 * (W - 1);  // lane l: j = base + 2l
      const V um = V::gather(u + base - 1, idx);
      const V up = V::gather(u + base + 1, idx);
      const V uc = V::gather(u + base, idx);
      const V bv = V::gather(b + base, idx);
      const V gv = V::gather(g + base, idx);
      const V y = coeff * fmadd(a2, um + up, bv);
      const V un = max(gv, fmadd(om, y - uc, uc));
      const V d = un - uc;
      verr = fmadd(d, d, verr);
      alignas(64) double tmp[W];
      un.store(tmp);
      for (int l = 0; l < W; ++l) u[base + 2 * l] = tmp[l];
    } else {
      for (int c = 0; c < W; ++c) {
        const int j = s - 2 * c;
        if (j >= 1 && j <= last_j) update_point(u, b, g, j, coeff_s, a2_s, omega, err[c]);
      }
    }
  }
  // Lane l carried iteration c = W-1-l.
  for (int l = 0; l < W; ++l) err[W - 1 - l] += verr.lane(l);
  return err[W - 1];
}

// Parity-split state for the advanced variant: even/odd j live in separate
// contiguous arrays, so wavefront lane accesses are unit-stride.
struct SplitArrays {
  arch::AlignedVector<double> ue, uo, be, bo, ge, go;
  int m = 0;

  void resize(int m_) {
    m = m_;
    const int ne = (m + 1) / 2, no = m / 2;
    ue.resize(ne);
    uo.resize(no);
    be.resize(ne);
    bo.resize(no);
    ge.resize(ne);
    go.resize(no);
  }
  double& u_at(int j) { return (j & 1) ? uo[j >> 1] : ue[j >> 1]; }
  double& b_at(int j) { return (j & 1) ? bo[j >> 1] : be[j >> 1]; }
  double& g_at(int j) { return (j & 1) ? go[j >> 1] : ge[j >> 1]; }
  double u_val(int j) const { return (j & 1) ? uo[j >> 1] : ue[j >> 1]; }
};

// The same wavefront block on parity-split arrays: all vector accesses are
// contiguous (loadu/storeu), no gathers — the "data structure transform".
template <int W>
double wavefront_block_split(SplitArrays& sa, double alpha, double omega) {
  using V = simd::Vec<double, W>;
  const int m = sa.m;
  const double coeff_s = 1.0 / (1.0 + alpha);
  const double a2_s = 0.5 * alpha;
  const V coeff(coeff_s), a2(a2_s), om(omega);

  double err[W] = {};
  const int last_j = m - 2;
  const int total_steps = last_j + 2 * (W - 1);
  const int steady_lo = 1 + 2 * (W - 1);
  const int steady_hi = last_j;

  V verr(0.0);
  for (int s = 1; s <= total_steps; ++s) {
    if (s >= steady_lo && s <= steady_hi) {
      const int base = s - 2 * (W - 1);  // lane l: j = base + 2l, parity(base)
      double* uc_arr;
      const double* b_arr;
      const double* g_arr;
      const double* um_arr;  // j-1 (opposite parity)
      const double* up_arr;  // j+1 (opposite parity)
      int half, mhalf, phalf;
      if (base & 1) {
        half = base >> 1;         // Uo index of j
        mhalf = (base - 1) >> 1;  // Ue index of j-1
        phalf = (base + 1) >> 1;  // Ue index of j+1
        uc_arr = sa.uo.data();
        b_arr = sa.bo.data();
        g_arr = sa.go.data();
        um_arr = sa.ue.data();
        up_arr = sa.ue.data();
      } else {
        half = base >> 1;
        mhalf = (base - 1) >> 1;
        phalf = (base + 1) >> 1;
        uc_arr = sa.ue.data();
        b_arr = sa.be.data();
        g_arr = sa.ge.data();
        um_arr = sa.uo.data();
        up_arr = sa.uo.data();
      }
      const V um = V::loadu(um_arr + mhalf);
      const V up = V::loadu(up_arr + phalf);
      const V uc = V::loadu(uc_arr + half);
      const V bv = V::loadu(b_arr + half);
      const V gv = V::loadu(g_arr + half);
      const V y = coeff * fmadd(a2, um + up, bv);
      const V un = max(gv, fmadd(om, y - uc, uc));
      const V d = un - uc;
      verr = fmadd(d, d, verr);
      un.storeu(uc_arr + half);
    } else {
      for (int c = 0; c < W; ++c) {
        const int j = s - 2 * c;
        if (j < 1 || j > last_j) continue;
        const double y =
            coeff_s * (sa.b_at(j) + a2_s * (sa.u_val(j - 1) + sa.u_val(j + 1)));
        const double un = std::max(sa.g_at(j), sa.u_at(j) + omega * (y - sa.u_at(j)));
        const double dd = un - sa.u_at(j);
        err[c] += dd * dd;
        sa.u_at(j) = un;
      }
    }
  }
  for (int l = 0; l < W; ++l) err[W - 1 - l] += verr.lane(l);
  return err[W - 1];
}

// Per-option state for one block of W wavefront iterations on split
// arrays; lets two independent solves interleave their steps in one loop
// (the ILP-pairing extension, price_wavefront_split_pair).
template <int W>
struct SplitBlockState {
  using V = simd::Vec<double, W>;

  SplitArrays* sa = nullptr;
  double coeff_s = 0, a2_s = 0, om_s = 0;
  V coeff, a2, om, verr;
  double err[W] = {};

  void begin(SplitArrays& arrays, double alpha, double omega) {
    sa = &arrays;
    coeff_s = 1.0 / (1.0 + alpha);
    a2_s = 0.5 * alpha;
    om_s = omega;
    coeff = V(coeff_s);
    a2 = V(a2_s);
    om = V(omega);
    verr = V(0.0);
    for (auto& e : err) e = 0.0;
  }

  // Steady-state vector step at wavefront position s.
  inline void vector_step(int s) {
    const int base = s - 2 * (W - 1);
    double* uc_arr;
    const double* b_arr;
    const double* g_arr;
    const double* um_arr;
    const double* up_arr;
    const int half = base >> 1;
    const int mhalf = (base - 1) >> 1;
    const int phalf = (base + 1) >> 1;
    if (base & 1) {
      uc_arr = sa->uo.data();
      b_arr = sa->bo.data();
      g_arr = sa->go.data();
      um_arr = sa->ue.data();
      up_arr = sa->ue.data();
    } else {
      uc_arr = sa->ue.data();
      b_arr = sa->be.data();
      g_arr = sa->ge.data();
      um_arr = sa->uo.data();
      up_arr = sa->uo.data();
    }
    const V um = V::loadu(um_arr + mhalf);
    const V up = V::loadu(up_arr + phalf);
    const V uc = V::loadu(uc_arr + half);
    const V bv = V::loadu(b_arr + half);
    const V gv = V::loadu(g_arr + half);
    const V y = coeff * fmadd(a2, um + up, bv);
    const V un = max(gv, fmadd(om, y - uc, uc));
    const V d = un - uc;
    verr = fmadd(d, d, verr);
    un.storeu(uc_arr + half);
  }

  // Prologue/epilogue scalar step.
  inline void scalar_step(int s, int last_j) {
    for (int c = 0; c < W; ++c) {
      const int j = s - 2 * c;
      if (j < 1 || j > last_j) continue;
      const double y = coeff_s * (sa->b_at(j) + a2_s * (sa->u_val(j - 1) + sa->u_val(j + 1)));
      const double un = std::max(sa->g_at(j), sa->u_at(j) + om_s * (y - sa->u_at(j)));
      const double dd = un - sa->u_at(j);
      err[c] += dd * dd;
      sa->u_at(j) = un;
    }
  }

  double finish() {
    for (int l = 0; l < W; ++l) err[W - 1 - l] += verr.lane(l);
    return err[W - 1];
  }
};

// One block of W iterations for each of two independent options,
// interleaved step by step so the two serial dependence chains overlap.
template <int W>
std::pair<double, double> wavefront_block_split_x2(SplitArrays& a, double alpha_a, double om_a,
                                                   SplitArrays& b, double alpha_b,
                                                   double om_b) {
  const int m = a.m;  // both grids share m
  const int last_j = m - 2;
  const int total_steps = last_j + 2 * (W - 1);
  const int steady_lo = 1 + 2 * (W - 1);
  const int steady_hi = last_j;

  SplitBlockState<W> sa, sb;
  sa.begin(a, alpha_a, om_a);
  sb.begin(b, alpha_b, om_b);

  for (int s = 1; s <= total_steps; ++s) {
    if (s >= steady_lo && s <= steady_hi) {
      sa.vector_step(s);
      sb.vector_step(s);
    } else {
      sa.scalar_step(s, last_j);
      sb.scalar_step(s, last_j);
    }
  }
  return {sa.finish(), sb.finish()};
}

template <int W>
SolveResult price_wavefront_width(const core::OptionSpec& opt, const GridSpec& grid) {
  const Transform t = make_transform(opt, grid);
  if (t.m - 2 < 2 * W + 1) {
    throw std::invalid_argument("crank-nicolson wavefront: grid too small for SIMD width");
  }
  const double eps = epsilon_abs(t, grid);
  return run_time_loop(t, grid, [&](double* u, const double* b, const double* g, double omega) {
    long loops = 0;
    double err;
    do {
      err = wavefront_block_gather<W>(u, b, g, t.m, t.alpha, omega);
      loops += W;
    } while (err > eps && loops < kMaxItersPerStep);
    return loops;
  });
}

// Per-time-step preparation on split arrays: explicit half-step, obstacle
// fill (vectorized, then de-interleaved), Dirichlet boundaries.
void prepare_split_step(SplitArrays& sa, const Transform& t, ObstacleFiller& filler,
                        arch::AlignedVector<double>& gbuf, int n) {
  const double tau = n * t.dtau;
  const double a1 = 1.0 - t.alpha;
  const double a2 = 0.5 * t.alpha;
  const int ne = (t.m + 1) / 2, no = t.m / 2;
#pragma omp simd
  for (int i = 1; i < ne - (t.m % 2 ? 1 : 0); ++i) {
    sa.be[i] = a1 * sa.ue[i] + a2 * (sa.uo[i - 1] + sa.uo[i]);
  }
#pragma omp simd
  for (int i = 0; i < no - (t.m % 2 ? 0 : 1); ++i) {
    const int j = 2 * i + 1;
    if (j >= 1 && j <= t.m - 2) sa.bo[i] = a1 * sa.uo[i] + a2 * (sa.ue[i] + sa.ue[i + 1]);
  }
  filler.fill(t, tau, gbuf.data());
  for (int j = 0; j < t.m; ++j) sa.g_at(j) = gbuf[j];
  sa.u_at(0) = sa.g_at(0);
  sa.u_at(t.m - 1) = sa.g_at(t.m - 1);
}

template <int W>
std::pair<SolveResult, SolveResult> price_pair_width(const core::OptionSpec& opt_a,
                                                     const core::OptionSpec& opt_b,
                                                     const GridSpec& grid) {
  const Transform ta = make_transform(opt_a, grid);
  const Transform tb = make_transform(opt_b, grid);
  if (ta.m - 2 < 2 * W + 1) {
    throw std::invalid_argument("crank-nicolson wavefront: grid too small for SIMD width");
  }
  const double eps_a = epsilon_abs(ta, grid);
  const double eps_b = epsilon_abs(tb, grid);

  SplitArrays A, B;
  A.resize(ta.m);
  B.resize(tb.m);
  for (int j = 0; j < ta.m; ++j) A.u_at(j) = ta.payoff(ta.x_at(j), 0.0);
  for (int j = 0; j < tb.m; ++j) B.u_at(j) = tb.payoff(tb.x_at(j), 0.0);
  ObstacleFiller filler_a(ta), filler_b(tb);
  arch::AlignedVector<double> gbuf_a(ta.m), gbuf_b(tb.m);

  SolveResult ra, rb;
  double omega_a = grid.omega0, omega_b = grid.omega0;
  long prev_a = std::numeric_limits<long>::max(), prev_b = prev_a;

  for (int n = 1; n <= ta.n; ++n) {
    prepare_split_step(A, ta, filler_a, gbuf_a, n);
    prepare_split_step(B, tb, filler_b, gbuf_b, n);

    long loops_a = 0, loops_b = 0;
    bool done_a = false, done_b = false;
    while (!done_a || !done_b) {
      if (!done_a && !done_b) {
        const auto [ea, eb] = wavefront_block_split_x2<W>(A, ta.alpha, omega_a, B, tb.alpha,
                                                          omega_b);
        loops_a += W;
        loops_b += W;
        done_a = ea <= eps_a || loops_a >= kMaxItersPerStep;
        done_b = eb <= eps_b || loops_b >= kMaxItersPerStep;
      } else if (!done_a) {
        const double ea = wavefront_block_split<W>(A, ta.alpha, omega_a);
        loops_a += W;
        done_a = ea <= eps_a || loops_a >= kMaxItersPerStep;
      } else {
        const double eb = wavefront_block_split<W>(B, tb.alpha, omega_b);
        loops_b += W;
        done_b = eb <= eps_b || loops_b >= kMaxItersPerStep;
      }
    }
    ra.total_iterations += loops_a;
    rb.total_iterations += loops_b;
    if (loops_a > prev_a) omega_a = std::min(omega_a + grid.domega, 1.95);
    if (loops_b > prev_b) omega_b = std::min(omega_b + grid.domega, 1.95);
    prev_a = loops_a;
    prev_b = loops_b;
  }
  ra.price = ta.to_price(A.u_val(ta.mid));
  rb.price = tb.to_price(B.u_val(tb.mid));
  return {ra, rb};
}

template <int W>
SolveResult price_wavefront_split_width(const core::OptionSpec& opt, const GridSpec& grid) {
  const Transform t = make_transform(opt, grid);
  if (t.m - 2 < 2 * W + 1) {
    throw std::invalid_argument("crank-nicolson wavefront: grid too small for SIMD width");
  }
  const double eps = epsilon_abs(t, grid);

  SplitArrays sa;
  sa.resize(t.m);
  for (int j = 0; j < t.m; ++j) sa.u_at(j) = t.payoff(t.x_at(j), 0.0);
  ObstacleFiller filler(t);
  arch::AlignedVector<double> gbuf(t.m);

  SolveResult result;
  double omega = grid.omega0;
  long prev_loops = std::numeric_limits<long>::max();

  for (int n = 1; n <= t.n; ++n) {
    {
      FINBENCH_SPAN("cn.prepare_step");
      prepare_split_step(sa, t, filler, gbuf, n);
    }
    FINBENCH_SPAN("cn.wavefront_solve");
    long loops = 0;
    double err;
    do {
      err = wavefront_block_split<W>(sa, t.alpha, omega);
      loops += W;
    } while (err > eps && loops < kMaxItersPerStep);
    result.total_iterations += loops;
    if (loops > prev_loops) omega = std::min(omega + grid.domega, 1.95);
    prev_loops = loops;
  }
  result.price = t.to_price(sa.u_val(t.mid));
  return result;
}

}  // namespace

SolveResult price_wavefront(const core::OptionSpec& opt, const GridSpec& grid, Width w) {
  switch (w) {
    case Width::kScalar: return price_reference_blocked(opt, grid, 1);
    case Width::kAvx2: return price_wavefront_width<4>(opt, grid);
#if defined(FINBENCH_HAVE_AVX512)
    case Width::kAvx512:
    case Width::kAuto: return price_wavefront_width<8>(opt, grid);
#else
    case Width::kAvx512:
    case Width::kAuto: return price_wavefront_width<4>(opt, grid);
#endif
  }
  return {};
}

SolveResult price_wavefront_split(const core::OptionSpec& opt, const GridSpec& grid, Width w) {
  switch (w) {
    case Width::kScalar: return price_reference_blocked(opt, grid, 1);
    case Width::kAvx2: return price_wavefront_split_width<4>(opt, grid);
#if defined(FINBENCH_HAVE_AVX512)
    case Width::kAvx512:
    case Width::kAuto: return price_wavefront_split_width<8>(opt, grid);
#else
    case Width::kAvx512:
    case Width::kAuto: return price_wavefront_split_width<4>(opt, grid);
#endif
  }
  return {};
}

std::pair<SolveResult, SolveResult> price_wavefront_split_pair(const core::OptionSpec& a,
                                                               const core::OptionSpec& b,
                                                               const GridSpec& grid, Width w) {
  switch (w) {
    case Width::kScalar:
      return {price_reference_blocked(a, grid, 1), price_reference_blocked(b, grid, 1)};
    case Width::kAvx2: return price_pair_width<4>(a, b, grid);
#if defined(FINBENCH_HAVE_AVX512)
    case Width::kAvx512:
    case Width::kAuto: return price_pair_width<8>(a, b, grid);
#else
    case Width::kAvx512:
    case Width::kAuto: return price_pair_width<4>(a, b, grid);
#endif
  }
  return {};
}

// --- European baseline: Thomas tridiagonal solve -----------------------------

double price_european_thomas(const core::OptionSpec& opt, const GridSpec& grid) {
  const Transform t = make_transform(opt, grid);
  arch::AlignedVector<double> u(t.m), b(t.m), cp(t.m), dp(t.m);
  for (int j = 0; j < t.m; ++j) u[j] = t.payoff(t.x_at(j), 0.0);

  const double diag = 1.0 + t.alpha;
  const double off = -0.5 * t.alpha;
  for (int n = 1; n <= t.n; ++n) {
    const double tau = n * t.dtau;
    explicit_half(t, u.data(), b.data());
    const double lo = t.payoff(t.xmin, tau);
    const double hi = t.payoff(t.x_at(t.m - 1), tau);
    // Fold Dirichlet boundaries into the RHS.
    b[1] -= off * lo;
    b[t.m - 2] -= off * hi;
    // Thomas forward sweep on the interior [1, m-2].
    cp[1] = off / diag;
    dp[1] = b[1] / diag;
    for (int j = 2; j <= t.m - 2; ++j) {
      const double w = diag - off * cp[j - 1];
      cp[j] = off / w;
      dp[j] = (b[j] - off * dp[j - 1]) / w;
    }
    u[t.m - 2] = dp[t.m - 2];
    for (int j = t.m - 3; j >= 1; --j) u[j] = dp[j] - cp[j] * u[j + 1];
    u[0] = lo;
    u[t.m - 1] = hi;
  }
  return t.to_price(u[t.mid]);
}

// --- Exercise boundary ----------------------------------------------------------

std::vector<double> exercise_boundary(const core::OptionSpec& opt, const GridSpec& grid) {
  if (opt.type != core::OptionType::kPut || opt.style != core::ExerciseStyle::kAmerican) {
    throw std::invalid_argument("exercise_boundary: American put only");
  }
  const Transform t = make_transform(opt, grid);
  const double eps = epsilon_abs(t, grid);

  arch::AlignedVector<double> u(t.m), b(t.m), g(t.m);
  for (int j = 0; j < t.m; ++j) u[j] = t.payoff(t.x_at(j), 0.0);
  ObstacleFiller filler(t);

  std::vector<double> boundary(t.n);
  double omega = grid.omega0;
  long prev_loops = std::numeric_limits<long>::max();
  for (int n = 1; n <= t.n; ++n) {
    explicit_half(t, u.data(), b.data());
    filler.fill(t, n * t.dtau, g.data());
    u[0] = g[0];
    u[t.m - 1] = g[t.m - 1];
    long loops = 0;
    double err;
    do {
      err = psor_iterations(u.data(), b.data(), g.data(), t.m, t.alpha, omega, 1);
      ++loops;
    } while (err > eps && loops < kMaxItersPerStep);
    if (loops > prev_loops) omega = std::min(omega + grid.domega, 1.95);
    prev_loops = loops;

    // Largest grid point still pinned to the obstacle (u == g): the last
    // index of the exercise region, scanning up from low prices.
    const double tol = 1e-7 * std::max(1.0, std::fabs(g[0]));
    int contact = 0;
    for (int j = 1; j < t.m - 1; ++j) {
      if (u[j] - g[j] <= tol && g[j] > 0.0) contact = j;
      else if (contact > 0) break;
    }
    boundary[n - 1] = opt.strike * std::exp(t.x_at(contact));
  }
  return boundary;
}

// --- Brennan–Schwartz direct American solve -----------------------------------

SolveResult price_american_brennan_schwartz(const core::OptionSpec& opt, const GridSpec& grid) {
  if (opt.type != core::OptionType::kPut) {
    throw std::invalid_argument(
        "brennan-schwartz: implemented for puts (exercise region must be a "
        "single low-price interval)");
  }
  const Transform t = make_transform(opt, grid);
  arch::AlignedVector<double> u(t.m), b(t.m), g(t.m), dd(t.m), bb(t.m);
  for (int j = 0; j < t.m; ++j) u[j] = t.payoff(t.x_at(j), 0.0);
  ObstacleFiller filler(t);

  const double diag = 1.0 + t.alpha;
  const double off = -0.5 * t.alpha;

  SolveResult result;
  for (int n = 1; n <= t.n; ++n) {
    explicit_half(t, u.data(), b.data());
    filler.fill(t, t.dtau * n, g.data());
    u[0] = g[0];
    u[t.m - 1] = g[t.m - 1];
    b[1] -= off * u[0];
    b[t.m - 2] -= off * u[t.m - 1];

    // Backward (right-to-left) elimination: reduce to a lower-bidiagonal
    // system so the forward substitution can project onto the obstacle as
    // it sweeps out of the exercise region.
    dd[t.m - 2] = diag;
    bb[t.m - 2] = b[t.m - 2];
    for (int j = t.m - 3; j >= 1; --j) {
      const double w = off / dd[j + 1];
      dd[j] = diag - w * off;
      bb[j] = b[j] - w * bb[j + 1];
    }
    // Forward substitution with projection (the Brennan–Schwartz step).
    u[1] = std::max((bb[1]) / dd[1], g[1]);
    for (int j = 2; j <= t.m - 2; ++j) {
      u[j] = std::max((bb[j] - off * u[j - 1]) / dd[j], g[j]);
    }
    result.total_iterations += 1;  // one direct solve per step
  }
  result.price = t.to_price(u[t.mid]);
  return result;
}

// --- Generalized theta scheme ---------------------------------------------------

double mesh_ratio(const core::OptionSpec& opt, const GridSpec& grid) {
  return make_transform(opt, grid).alpha;
}

double price_european_theta(const core::OptionSpec& opt, const GridSpec& grid, double theta,
                            bool rannacher) {
  if (theta < 0.0 || theta > 1.0) {
    throw std::invalid_argument("theta scheme: theta must be in [0, 1]");
  }
  const Transform t = make_transform(opt, grid);
  arch::AlignedVector<double> u(t.m), b(t.m), cp(t.m), dp(t.m);
  for (int j = 0; j < t.m; ++j) u[j] = t.payoff(t.x_at(j), 0.0);

  // u^{n+1}_j - theta*alpha*(u^{n+1}_{j+1} - 2u^{n+1}_j + u^{n+1}_{j-1})
  //   = u^n_j + (1-theta)*alpha*(u^n_{j+1} - 2u^n_j + u^n_{j-1})
  for (int n = 1; n <= t.n; ++n) {
    // Rannacher start-up: two fully implicit steps damp the components
    // the kinked payoff excites (CN only damps them marginally).
    const double th = (rannacher && n <= 2) ? 1.0 : theta;
    const double ae = (1.0 - th) * t.alpha;
    const double diag = 1.0 + 2.0 * th * t.alpha;
    const double off = -th * t.alpha;
    const double tau = n * t.dtau;
#pragma omp simd
    for (int j = 1; j < t.m - 1; ++j) {
      b[j] = u[j] + ae * (u[j + 1] - 2.0 * u[j] + u[j - 1]);
    }
    const double lo = t.payoff(t.xmin, tau);
    const double hi = t.payoff(t.x_at(t.m - 1), tau);
    if (th == 0.0) {
      // Pure explicit: no solve.
      for (int j = 1; j < t.m - 1; ++j) u[j] = b[j];
    } else {
      b[1] -= off * lo;
      b[t.m - 2] -= off * hi;
      cp[1] = off / diag;
      dp[1] = b[1] / diag;
      for (int j = 2; j <= t.m - 2; ++j) {
        const double w = diag - off * cp[j - 1];
        cp[j] = off / w;
        dp[j] = (b[j] - off * dp[j - 1]) / w;
      }
      u[t.m - 2] = dp[t.m - 2];
      for (int j = t.m - 3; j >= 1; --j) u[j] = dp[j] - cp[j] * u[j + 1];
    }
    u[0] = lo;
    u[t.m - 1] = hi;
  }
  return t.to_price(u[t.mid]);
}

// --- Batch driver -------------------------------------------------------------

void price_batch(std::span<const core::OptionSpec> opts, const GridSpec& grid, Variant v,
                 std::span<double> out, Width w) {
  assert(out.size() >= opts.size());
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(opts.size());
  static obs::Counter& priced = obs::counter("cn.options_priced");
  priced.add(static_cast<std::uint64_t>(n));
  if (v == Variant::kWavefrontSplitPaired) {
    const std::ptrdiff_t pairs = n / 2;
#pragma omp parallel for schedule(dynamic, 1)
    for (std::ptrdiff_t i = 0; i < pairs; ++i) {
      FINBENCH_SPAN("cn.option_pair");
      const auto [ra, rb] =
          price_wavefront_split_pair(opts[2 * i], opts[2 * i + 1], grid, w);
      out[2 * i] = ra.price;
      out[2 * i + 1] = rb.price;
    }
    if (n % 2) out[n - 1] = price_wavefront_split(opts[n - 1], grid, w).price;
    return;
  }
#pragma omp parallel for schedule(dynamic, 1)
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    FINBENCH_SPAN("cn.option");
    switch (v) {
      case Variant::kReference: out[i] = price_reference(opts[i], grid).price; break;
      case Variant::kWavefront: out[i] = price_wavefront(opts[i], grid, w).price; break;
      case Variant::kWavefrontSplit:
      case Variant::kWavefrontSplitPaired:
        out[i] = price_wavefront_split(opts[i], grid, w).price;
        break;
    }
  }
}

}  // namespace finbench::kernels::cn
