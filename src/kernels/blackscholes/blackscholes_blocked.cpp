// Register-tiled Black–Scholes over the blocked AoSoA layout (paper
// Sec. IV-A3, Fig. 4 "Advanced"). Each lane-block stores its five fields
// as contiguous `block`-lane runs, so a register tile is nothing but
// aligned unit-stride loads — no gathers, unlike SIMD over AOS — and the
// whole working set of a tile (5 x block doubles) sits on a handful of
// cache lines. Tiles are processed in pairs (×2 unroll) so two
// independent exp/log/erf dependency chains are in flight per worker,
// hiding the polynomial latency, and outputs leave through streaming
// stores: the batch is written once and never read back, so there is no
// point pulling its lines into cache.
//
// The single-precision variants run the same tiles with twice the lanes:
// inputs convert f64->f32 in register (cvtpd_ps), the transcendentals run
// in SP, and results widen back on the streaming store — the storage
// stays double, so the SP speedup is measured against identical bytes in
// memory and the engine can negotiate/write back exactly as for DP.
//
// Lane-blocks are padded by replicating the final option (core::fill), so
// full-width tiles are always safe; padded lanes are computed redundantly
// and ignored by every reader.

#include <cmath>
#include <cstddef>

#include <immintrin.h>

#include "finbench/core/analytic.hpp"
#include "finbench/kernels/blackscholes.hpp"
#include "finbench/obs/metrics.hpp"
#include "finbench/vecmath/vecmath.hpp"
#include "finbench/vecmath/vecmathf.hpp"

namespace finbench::kernels::bs {

namespace {

// --- Double precision ------------------------------------------------------

// The per-tile constants, broadcast once per kernel invocation.
template <int W>
struct DpConsts {
  using V = simd::Vec<double, W>;
  V r, q, sig, sig22, half, one, inv_sqrt2;
  DpConsts(double rate, double vol, double dividend)
      : r(rate),
        q(dividend),
        sig(vol),
        sig22(vol * vol / 2),
        half(0.5),
        one(1.0),
        inv_sqrt2(0.70710678118654752440) {}
};

// One register tile over five field runs at base, base + fs, ..., base +
// 4 fs (fs = the lane-block width). Stream=true writes outputs with
// non-temporal stores (the in-memory blocked batch is written once and
// never read back); the fused AOS path sets Stream=false because its tile
// buffer lives on the stack and is read back immediately.
template <int W, bool HasDividend, bool Stream>
inline void dp_tile(const DpConsts<W>& k, double* base, std::size_t fs) {
  using V = simd::Vec<double, W>;
  const V S = V::load(base);
  const V K = V::load(base + fs);
  const V T = V::load(base + 2 * fs);
  const V qlog = vecmath::log(S / K);
  const V denom = k.one / (k.sig * sqrt(T));
  V drift = k.r;
  V sq = S;
  if constexpr (HasDividend) {
    drift = k.r - k.q;
    sq = S * vecmath::exp(-k.q * T);
  }
  const V d1 = (qlog + (drift + k.sig22) * T) * denom;
  const V d2 = (qlog + (drift - k.sig22) * T) * denom;
  const V xexp = K * vecmath::exp(-k.r * T);
  const V nd1 = fmadd(vecmath::erf(d1 * k.inv_sqrt2), k.half, k.half);
  const V nd2 = fmadd(vecmath::erf(d2 * k.inv_sqrt2), k.half, k.half);
  const V c = fmsub(sq, nd1, xexp * nd2);
  const V put = c - sq + xexp;  // put via call/put parity
  if constexpr (Stream) {
    c.stream(base + 3 * fs);
    put.stream(base + 4 * fs);
  } else {
    c.store(base + 3 * fs);
    put.store(base + 4 * fs);
  }
}

template <int W, bool HasDividend>
void price_blocked_width(const core::BsBlockedView& batch) {
  const DpConsts<W> k(batch.rate, batch.vol, batch.dividend);

  const std::ptrdiff_t nblocks = static_cast<std::ptrdiff_t>(batch.num_blocks());
  const std::size_t bw = static_cast<std::size_t>(batch.block);
  double* const data = batch.data.data();

  // When a tile covers a whole block, fs is the compile-time W and every
  // address is base + constant — the same addressing the SOA kernel enjoys.
  auto tile = [&](double* base, std::size_t fs) {
    dp_tile<W, HasDividend, /*Stream=*/true>(k, base, fs);
  };

  // x2 unroll: when a tile covers a whole block, pair adjacent blocks;
  // otherwise pair the sub-runs inside each block. Either way two
  // independent transcendental chains are in flight and the indexing is
  // pure pointer increments (no per-tile division).
  if (static_cast<std::size_t>(W) == bw) {
    const std::size_t stride = 5 * static_cast<std::size_t>(W);
    const std::ptrdiff_t npairs = nblocks / 2;
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t p = 0; p < npairs; ++p) {
      double* base = data + static_cast<std::size_t>(2 * p) * stride;
      tile(base, W);
      tile(base + stride, W);
    }
    if (nblocks % 2 != 0) {
      tile(data + static_cast<std::size_t>(nblocks - 1) * stride, W);
    }
    return;
  }
  const std::size_t stride = 5 * bw;
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t b = 0; b < nblocks; ++b) {
    double* const base = data + static_cast<std::size_t>(b) * stride;
    std::size_t off = 0;
    for (; off + 2 * W <= bw; off += 2 * W) {
      tile(base + off, bw);
      tile(base + off + W, bw);
    }
    for (; off < bw; off += W) tile(base + off, bw);
  }
}

template <int W>
void price_blocked_dispatch(const core::BsBlockedView& batch) {
  // A register tile must cover whole lanes of a block; an exotic block
  // size that W does not divide falls back to the scalar tiling, which
  // divides everything.
  if (batch.block % W != 0) {
    if (batch.dividend != 0.0) price_blocked_width<1, true>(batch);
    else price_blocked_width<1, false>(batch);
    return;
  }
  if (batch.dividend != 0.0) price_blocked_width<W, true>(batch);
  else price_blocked_width<W, false>(batch);
}

// --- Fused AOS -> blocked -> AOS pipeline ----------------------------------
//
// The separate convert / price / write-back passes each cross DRAM; the
// point of the AoSoA layout is that conversion composes with tiling, so
// this path does all three block-locally: transpose W options into a
// stack-resident tile (L1-hot), price it in register, and copy the two
// output lanes straight back into the caller's AOS records. The AOS array
// is read once and its output fields written once — no blocked array ever
// exists in DRAM.

template <int W, bool HasDividend>
void price_from_aos_width(const core::BsAosView& batch) {
  const DpConsts<W> k(batch.rate, batch.vol, batch.dividend);
  core::BsOptionAos* const o = batch.options.data();
  const std::size_t n = batch.size();
  const std::ptrdiff_t nfull = static_cast<std::ptrdiff_t>(n / W);

  // Two blocks per iteration (same x2 unroll as the in-memory kernel):
  // the second tile's transpose overlaps the first tile's transcendentals.
  const std::ptrdiff_t npairs = nfull / 2;
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t p = 0; p < npairs; ++p) {
    alignas(64) double buf[2][5 * W];
    core::BsOptionAos* const x = o + static_cast<std::size_t>(2 * p) * W;
    for (int half = 0; half < 2; ++half) {
      core::BsOptionAos* const xi = x + half * W;
      for (int ln = 0; ln < W; ++ln) {
        buf[half][ln] = xi[ln].spot;
        buf[half][W + ln] = xi[ln].strike;
        buf[half][2 * W + ln] = xi[ln].years;
      }
    }
    dp_tile<W, HasDividend, /*Stream=*/false>(k, buf[0], W);
    dp_tile<W, HasDividend, /*Stream=*/false>(k, buf[1], W);
    for (int half = 0; half < 2; ++half) {
      core::BsOptionAos* const xi = x + half * W;
      for (int ln = 0; ln < W; ++ln) {
        xi[ln].call = buf[half][3 * W + ln];
        xi[ln].put = buf[half][4 * W + ln];
      }
    }
  }
  // Odd full block, then the sub-W tail via the scalar closed form.
  if (nfull % 2 != 0) {
    alignas(64) double buf[5 * W];
    core::BsOptionAos* const x = o + static_cast<std::size_t>(nfull - 1) * W;
    for (int ln = 0; ln < W; ++ln) {
      buf[ln] = x[ln].spot;
      buf[W + ln] = x[ln].strike;
      buf[2 * W + ln] = x[ln].years;
    }
    dp_tile<W, HasDividend, /*Stream=*/false>(k, buf, W);
    for (int ln = 0; ln < W; ++ln) {
      x[ln].call = buf[3 * W + ln];
      x[ln].put = buf[4 * W + ln];
    }
  }
  for (std::size_t i = static_cast<std::size_t>(nfull) * W; i < n; ++i) {
    const core::BsPrice pr =
        core::black_scholes(o[i].spot, o[i].strike, o[i].years, batch.rate, batch.vol,
                            batch.dividend);
    o[i].call = pr.call;
    o[i].put = pr.put;
  }
}

template <int W>
void price_from_aos_dispatch(const core::BsAosView& batch) {
  if (batch.dividend != 0.0) price_from_aos_width<W, true>(batch);
  else price_from_aos_width<W, false>(batch);
}

// --- Single precision over the same blocked doubles ------------------------

// One 8-lane field run: 8 doubles in, Vec<float, 8> out.
inline simd::Vec<float, 8> load_f32_8(const double* p) {
#if defined(FINBENCH_HAVE_AVX512)
  return simd::Vec<float, 8>(_mm512_cvtpd_ps(_mm512_load_pd(p)));
#else
  const __m128 lo = _mm256_cvtpd_ps(_mm256_load_pd(p));
  const __m128 hi = _mm256_cvtpd_ps(_mm256_load_pd(p + 4));
  return simd::Vec<float, 8>(_mm256_set_m128(hi, lo));
#endif
}

inline void stream_f64_8(double* p, simd::Vec<float, 8> x) {
#if defined(FINBENCH_HAVE_AVX512)
  _mm512_stream_pd(p, _mm512_cvtps_pd(x.v));
#else
  _mm256_stream_pd(p, _mm256_cvtps_pd(_mm256_castps256_ps128(x.v)));
  _mm256_stream_pd(p + 4, _mm256_cvtps_pd(_mm256_extractf128_ps(x.v, 1)));
#endif
}

// Plain-store twin of stream_f64_8 for the fused AOS path, whose tile
// buffer lives on the stack and is read straight back (a non-temporal
// store there would only evict its own line).
inline void store_f64_8(double* p, simd::Vec<float, 8> x) {
#if defined(FINBENCH_HAVE_AVX512)
  _mm512_store_pd(p, _mm512_cvtps_pd(x.v));
#else
  _mm256_store_pd(p, _mm256_cvtps_pd(_mm256_castps256_ps128(x.v)));
  _mm256_store_pd(p + 4, _mm256_cvtps_pd(_mm256_extractf128_ps(x.v, 1)));
#endif
}

#if defined(FINBENCH_HAVE_AVX512)
// Two 8-lane field runs fused into one 16-float vector (and back).
inline simd::Vec<float, 16> load_f32_16(const double* a, const double* b) {
  const __m256 lo = _mm512_cvtpd_ps(_mm512_load_pd(a));
  const __m256 hi = _mm512_cvtpd_ps(_mm512_load_pd(b));
  return simd::Vec<float, 16>(_mm512_insertf32x8(_mm512_castps256_ps512(lo), hi, 1));
}

inline void stream_f64_16(double* a, double* b, simd::Vec<float, 16> x) {
  _mm512_stream_pd(a, _mm512_cvtps_pd(_mm512_castps512_ps256(x.v)));
  _mm512_stream_pd(b, _mm512_cvtps_pd(_mm512_extractf32x8_ps(x.v, 1)));
}

inline void store_f64_16(double* a, double* b, simd::Vec<float, 16> x) {
  _mm512_store_pd(a, _mm512_cvtps_pd(_mm512_castps512_ps256(x.v)));
  _mm512_store_pd(b, _mm512_cvtps_pd(_mm512_extractf32x8_ps(x.v, 1)));
}
#endif

template <class VF>
struct SpOut {
  VF call, put;
};

// The SP model shared by every width: same algebra as the DP tile, with
// cnd via the SP erf polynomial (~1.5e-7 abs; Fig. 4's SP rows trade this
// for twice the lanes).
template <class VF>
inline SpOut<VF> sp_tile(VF S, VF K, VF T, float rate, float vol, float div) {
  const VF r(rate);
  const VF sig22(vol * vol / 2);
  const VF one(1.0f);
  const VF qlog = vecmath::logf(S / K);
  const VF denom = one / (VF(vol) * sqrt(T));
  VF drift = r;
  VF sq = S;
  if (div != 0.0f) {
    drift = VF(rate - div);
    sq = S * vecmath::expf(VF(-div) * T);
  }
  const VF d1 = (qlog + (drift + sig22) * T) * denom;
  const VF d2 = (qlog + (drift - sig22) * T) * denom;
  const VF xexp = K * vecmath::expf(-r * T);
  const VF c = sq * vecmath::cndf(d1) - xexp * vecmath::cndf(d2);
  return {c, c - sq + xexp};
}

// Fallback for block sizes the 8-lane converters cannot tile: scalar SP
// per lane (still the SP model, so tolerances match the vector paths).
void price_blocked_sp_scalar(const core::BsBlockedView& batch) {
  using V1 = simd::Vec<float, 1>;
  const float rate = static_cast<float>(batch.rate);
  const float vol = static_cast<float>(batch.vol);
  const float div = static_cast<float>(batch.dividend);
  const std::size_t b = static_cast<std::size_t>(batch.block);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const std::size_t blk = i / b;
    const std::size_t ln = i % b;
    const V1 s(static_cast<float>(batch.field(blk, 0)[ln]));
    const V1 k(static_cast<float>(batch.field(blk, 1)[ln]));
    const V1 t(static_cast<float>(batch.field(blk, 2)[ln]));
    const SpOut<V1> o = sp_tile(s, k, t, rate, vol, div);
    batch.field(blk, 3)[ln] = static_cast<double>(o.call.v);
    batch.field(blk, 4)[ln] = static_cast<double>(o.put.v);
  }
}

// 8 SP lanes per tile: one 8-lane sub-run of a block per register tile.
void price_blocked_sp8(const core::BsBlockedView& batch) {
  using VF = simd::Vec<float, 8>;
  const float rate = static_cast<float>(batch.rate);
  const float vol = static_cast<float>(batch.vol);
  const float div = static_cast<float>(batch.dividend);

  const std::ptrdiff_t nblocks = static_cast<std::ptrdiff_t>(batch.num_blocks());
  const std::size_t bw = static_cast<std::size_t>(batch.block);

  auto tile = [&](std::size_t blk, std::size_t off) {
    const VF S = load_f32_8(batch.field(blk, 0) + off);
    const VF K = load_f32_8(batch.field(blk, 1) + off);
    const VF T = load_f32_8(batch.field(blk, 2) + off);
    const SpOut<VF> o = sp_tile(S, K, T, rate, vol, div);
    stream_f64_8(batch.field(blk, 3) + off, o.call);
    stream_f64_8(batch.field(blk, 4) + off, o.put);
  };

  // Same pairing scheme as the DP tiles: adjacent blocks when a tile is a
  // whole block, sub-runs within a block otherwise — increment-only indexing.
  if (bw == 8) {
    const std::ptrdiff_t npairs = nblocks / 2;
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t p = 0; p < npairs; ++p) {
      tile(static_cast<std::size_t>(2 * p), 0);
      tile(static_cast<std::size_t>(2 * p + 1), 0);
    }
    if (nblocks % 2 != 0) tile(static_cast<std::size_t>(nblocks - 1), 0);
    return;
  }
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t b = 0; b < nblocks; ++b) {
    const std::size_t blk = static_cast<std::size_t>(b);
    std::size_t off = 0;
    for (; off + 16 <= bw; off += 16) {
      tile(blk, off);
      tile(blk, off + 8);
    }
    for (; off < bw; off += 8) tile(blk, off);
  }
}

#if defined(FINBENCH_HAVE_AVX512)
// 16 SP lanes per tile: two 8-lane sub-runs fused per register tile.
void price_blocked_sp16(const core::BsBlockedView& batch) {
  using VF = simd::Vec<float, 16>;
  const float rate = static_cast<float>(batch.rate);
  const float vol = static_cast<float>(batch.vol);
  const float div = static_cast<float>(batch.dividend);

  const std::ptrdiff_t nblocks = static_cast<std::ptrdiff_t>(batch.num_blocks());
  const std::size_t bw = static_cast<std::size_t>(batch.block);

  // A 16-float tile fuses two 8-double field runs (lo/hi halves).
  auto tile16 = [&](std::size_t blk_lo, std::size_t off_lo, std::size_t blk_hi,
                    std::size_t off_hi) {
    const VF S = load_f32_16(batch.field(blk_lo, 0) + off_lo, batch.field(blk_hi, 0) + off_hi);
    const VF K = load_f32_16(batch.field(blk_lo, 1) + off_lo, batch.field(blk_hi, 1) + off_hi);
    const VF T = load_f32_16(batch.field(blk_lo, 2) + off_lo, batch.field(blk_hi, 2) + off_hi);
    const SpOut<VF> o = sp_tile(S, K, T, rate, vol, div);
    stream_f64_16(batch.field(blk_lo, 3) + off_lo, batch.field(blk_hi, 3) + off_hi, o.call);
    stream_f64_16(batch.field(blk_lo, 4) + off_lo, batch.field(blk_hi, 4) + off_hi, o.put);
  };
  auto tile8 = [&](std::size_t blk, std::size_t off) {
    using V8 = simd::Vec<float, 8>;
    const V8 S = load_f32_8(batch.field(blk, 0) + off);
    const V8 K = load_f32_8(batch.field(blk, 1) + off);
    const V8 T = load_f32_8(batch.field(blk, 2) + off);
    const SpOut<V8> o = sp_tile(S, K, T, rate, vol, div);
    stream_f64_8(batch.field(blk, 3) + off, o.call);
    stream_f64_8(batch.field(blk, 4) + off, o.put);
  };

  if (bw == 8) {
    // A 16-lane tile spans two adjacent blocks; an odd trailing block
    // finishes 8-wide.
    const std::ptrdiff_t npairs = nblocks / 2;
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t p = 0; p < npairs; ++p) {
      tile16(static_cast<std::size_t>(2 * p), 0, static_cast<std::size_t>(2 * p + 1), 0);
    }
    if (nblocks % 2 != 0) tile8(static_cast<std::size_t>(nblocks - 1), 0);
    return;
  }
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t b = 0; b < nblocks; ++b) {
    const std::size_t blk = static_cast<std::size_t>(b);
    std::size_t off = 0;
    for (; off + 16 <= bw; off += 16) tile16(blk, off, blk, off + 8);
    for (; off < bw; off += 8) tile8(blk, off);
  }
}
#endif

// --- Fused AOS -> f32 register tile pipeline --------------------------------
//
// The SP twin of price_from_aos_width: transpose W options' inputs into
// aligned stack runs of doubles (L1-hot), narrow f64->f32 in register with
// the same cvtpd_ps converters the in-memory SP kernel uses, price through
// the shared sp_tile model, and widen the two outputs back into the
// caller's AOS records. Same "incl. conversion" accounting as the DP fused
// path — the AOS array is read once and written once, no blocked array
// ever exists in DRAM — but with twice the lanes per tile, which is what
// extends Fig. 4's fused-pipeline win to the 16-lane SP rows.

// Width-specific converter glue: one tile's field run in / out.
template <int W>
struct SpAosIo;

template <>
struct SpAosIo<8> {
  static simd::Vec<float, 8> in(const double* p) { return load_f32_8(p); }
  static void out(double* p, simd::Vec<float, 8> x) { store_f64_8(p, x); }
};

#if defined(FINBENCH_HAVE_AVX512)
template <>
struct SpAosIo<16> {
  static simd::Vec<float, 16> in(const double* p) { return load_f32_16(p, p + 8); }
  static void out(double* p, simd::Vec<float, 16> x) { store_f64_16(p, p + 8, x); }
};
#endif

void price_from_aos_sp_scalar(core::BsOptionAos* o, std::size_t begin, std::size_t end,
                              float rate, float vol, float div) {
  using V1 = simd::Vec<float, 1>;
  for (std::size_t i = begin; i < end; ++i) {
    const SpOut<V1> r = sp_tile(V1(static_cast<float>(o[i].spot)),
                                V1(static_cast<float>(o[i].strike)),
                                V1(static_cast<float>(o[i].years)), rate, vol, div);
    o[i].call = static_cast<double>(r.call.v);
    o[i].put = static_cast<double>(r.put.v);
  }
}

template <int W>
void price_from_aos_sp_width(const core::BsAosView& batch) {
  using VF = simd::Vec<float, W>;
  const float rate = static_cast<float>(batch.rate);
  const float vol = static_cast<float>(batch.vol);
  const float div = static_cast<float>(batch.dividend);
  core::BsOptionAos* const o = batch.options.data();
  const std::size_t n = batch.size();
  const std::ptrdiff_t nfull = static_cast<std::ptrdiff_t>(n / W);

  auto tile = [&](core::BsOptionAos* x) {
    alignas(64) double buf[5][W];
    for (int ln = 0; ln < W; ++ln) {
      buf[0][ln] = x[ln].spot;
      buf[1][ln] = x[ln].strike;
      buf[2][ln] = x[ln].years;
    }
    const SpOut<VF> r = sp_tile(SpAosIo<W>::in(buf[0]), SpAosIo<W>::in(buf[1]),
                                SpAosIo<W>::in(buf[2]), rate, vol, div);
    SpAosIo<W>::out(buf[3], r.call);
    SpAosIo<W>::out(buf[4], r.put);
    for (int ln = 0; ln < W; ++ln) {
      x[ln].call = buf[3][ln];
      x[ln].put = buf[4][ln];
    }
  };

  // x2 unroll, as in the DP fused path: the second tile's transpose
  // overlaps the first tile's transcendentals.
  const std::ptrdiff_t npairs = nfull / 2;
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t p = 0; p < npairs; ++p) {
    core::BsOptionAos* const x = o + static_cast<std::size_t>(2 * p) * W;
    tile(x);
    tile(x + W);
  }
  if (nfull % 2 != 0) tile(o + static_cast<std::size_t>(nfull - 1) * W);

  // Sub-W tail: scalar lanes of the same SP model, so the whole batch
  // shares one tolerance.
  price_from_aos_sp_scalar(o, static_cast<std::size_t>(nfull) * W, n, rate, vol, div);
}

}  // namespace

void price_blocked(core::BsBlockedView batch, Width w) {
  static obs::Counter& priced = obs::counter("bs.options_priced");
  priced.add(batch.size());
  switch (w) {
    case Width::kScalar: price_blocked_dispatch<1>(batch); return;
    case Width::kAvx2: price_blocked_dispatch<4>(batch); return;
#if defined(FINBENCH_HAVE_AVX512)
    case Width::kAvx512:
    case Width::kAuto: price_blocked_dispatch<8>(batch); return;
#else
    case Width::kAvx512:
    case Width::kAuto: price_blocked_dispatch<4>(batch); return;
#endif
  }
}

void price_blocked_from_aos(core::BsAosView batch, Width w) {
  static obs::Counter& priced = obs::counter("bs.options_priced");
  priced.add(batch.size());
  switch (w) {
    case Width::kScalar: price_from_aos_dispatch<1>(batch); return;
    case Width::kAvx2: price_from_aos_dispatch<4>(batch); return;
#if defined(FINBENCH_HAVE_AVX512)
    case Width::kAvx512:
    case Width::kAuto: price_from_aos_dispatch<8>(batch); return;
#else
    case Width::kAvx512:
    case Width::kAuto: price_from_aos_dispatch<4>(batch); return;
#endif
  }
}

void price_blocked_from_aos_f32(core::BsAosView batch, WidthF w) {
  static obs::Counter& priced = obs::counter("bs.options_priced");
  priced.add(batch.size());
  switch (w) {
    case WidthF::kScalar:
      price_from_aos_sp_scalar(batch.options.data(), 0, batch.size(),
                               static_cast<float>(batch.rate), static_cast<float>(batch.vol),
                               static_cast<float>(batch.dividend));
      return;
    case WidthF::kAvx2: price_from_aos_sp_width<8>(batch); return;
#if defined(FINBENCH_HAVE_AVX512)
    case WidthF::kAvx512:
    case WidthF::kAuto: price_from_aos_sp_width<16>(batch); return;
#else
    case WidthF::kAvx512:
    case WidthF::kAuto: price_from_aos_sp_width<8>(batch); return;
#endif
  }
}

void price_blocked_sp(core::BsBlockedView batch, WidthF w) {
  static obs::Counter& priced = obs::counter("bs.options_priced");
  priced.add(batch.size());
  if (batch.block % 8 != 0) {
    price_blocked_sp_scalar(batch);
    return;
  }
  switch (w) {
    case WidthF::kScalar: price_blocked_sp_scalar(batch); return;
    case WidthF::kAvx2: price_blocked_sp8(batch); return;
#if defined(FINBENCH_HAVE_AVX512)
    case WidthF::kAvx512:
    case WidthF::kAuto: price_blocked_sp16(batch); return;
#else
    case WidthF::kAvx512:
    case WidthF::kAuto: price_blocked_sp8(batch); return;
#endif
  }
}

}  // namespace finbench::kernels::bs
