#include "finbench/kernels/blackscholes.hpp"

#include <cassert>
#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "finbench/arch/aligned.hpp"
#include "finbench/core/analytic.hpp"
#include "finbench/core/scratch_pool.hpp"
#include "finbench/obs/metrics.hpp"
#include "finbench/obs/trace.hpp"
#include "finbench/vecmath/vecmath.hpp"
#include "finbench/vecmath/vecmathf.hpp"

namespace finbench::kernels::bs {

namespace {

inline double cnd_scalar(double x) { return 0.5 * std::erfc(-x * 0.70710678118654752440); }

}  // namespace

// --- Reference: Lis. 1, scalar, AOS --------------------------------------

void price_reference(core::BsAosView batch) {
  static obs::Counter& priced = obs::counter("bs.options_priced");
  priced.add(batch.size());
  if (batch.dividend != 0.0) {
    throw std::invalid_argument(
        "this variant reproduces the paper's dividend-free kernel; "
        "use price_intermediate for dividend yields");
  }
  const double r = batch.rate;
  const double sig = batch.vol;
  const double sig22 = sig * sig / 2;
  core::BsOptionAos* opts = batch.options.data();
  const std::size_t nopt = batch.size();
  for (std::size_t i = 0; i < nopt; ++i) {
    const double qlog = std::log(opts[i].spot / opts[i].strike);
    const double denom = 1.0 / (sig * std::sqrt(opts[i].years));
    const double d1 = (qlog + (r + sig22) * opts[i].years) * denom;
    const double d2 = (qlog + (r - sig22) * opts[i].years) * denom;
    const double xexp = opts[i].strike * std::exp(-r * opts[i].years);
    opts[i].call = opts[i].spot * cnd_scalar(d1) - xexp * cnd_scalar(d2);
    opts[i].put = xexp * cnd_scalar(-d2) - opts[i].spot * cnd_scalar(-d1);
  }
}

// --- Basic: compiler pragmas on the AOS loop ------------------------------

void price_basic(core::BsAosView batch) {
  static obs::Counter& priced = obs::counter("bs.options_priced");
  priced.add(batch.size());
  if (batch.dividend != 0.0) {
    throw std::invalid_argument(
        "this variant reproduces the paper's dividend-free kernel; "
        "use price_intermediate for dividend yields");
  }
  const double r = batch.rate;
  const double sig = batch.vol;
  const double sig22 = sig * sig / 2;
  core::BsOptionAos* opts = batch.options.data();
  const std::ptrdiff_t nopt = static_cast<std::ptrdiff_t>(batch.size());
  // The pragma is the whole optimization: the compiler vectorizes, but the
  // strided AOS accesses become gathers/scatters (the paper's Fig. 4
  // "Basic" bar, and the 10x instruction blow-up on 8-wide SIMD).
#pragma omp parallel for simd schedule(static)
  for (std::ptrdiff_t i = 0; i < nopt; ++i) {
    const double qlog = std::log(opts[i].spot / opts[i].strike);
    const double denom = 1.0 / (sig * std::sqrt(opts[i].years));
    const double d1 = (qlog + (r + sig22) * opts[i].years) * denom;
    const double d2 = (qlog + (r - sig22) * opts[i].years) * denom;
    const double xexp = opts[i].strike * std::exp(-r * opts[i].years);
    opts[i].call = opts[i].spot * cnd_scalar(d1) - xexp * cnd_scalar(d2);
    opts[i].put = xexp * cnd_scalar(-d2) - opts[i].spot * cnd_scalar(-d1);
  }
}

// --- Intermediate: SOA + explicit SIMD across options ----------------------

namespace {

// One option per SIMD lane; cnd via erf (cheaper, same accuracy — the
// paper's SVML substitution) and the put derived from call/put parity.
template <int W, bool HasDividend>
void price_soa_width(const core::BsSoaView& batch) {
  using V = simd::Vec<double, W>;
  const V r(batch.rate);
  const V q(batch.dividend);
  const V sig(batch.vol);
  const V sig22(batch.vol * batch.vol / 2);
  const V half(0.5), one(1.0);
  const V inv_sqrt2(0.70710678118654752440);

  const std::ptrdiff_t nopt = static_cast<std::ptrdiff_t>(batch.size());
  const double* s = batch.spot.data();
  const double* k = batch.strike.data();
  const double* t = batch.years.data();
  double* call = batch.call.data();
  double* put = batch.put.data();

  const std::ptrdiff_t vec_end = nopt - nopt % W;
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < vec_end; i += W) {
    const V S = V::load(s + i);
    const V K = V::load(k + i);
    const V T = V::load(t + i);
    const V qlog = vecmath::log(S / K);
    const V denom = one / (sig * sqrt(T));
    V drift = r;
    V sq = S;
    if constexpr (HasDividend) {
      drift = r - q;
      sq = S * vecmath::exp(-q * T);  // forward-discounted spot
    }
    const V d1 = (qlog + (drift + sig22) * T) * denom;
    const V d2 = (qlog + (drift - sig22) * T) * denom;
    const V xexp = K * vecmath::exp(-r * T);
    // cnd(x) = (1 + erf(x/sqrt(2))) / 2
    const V nd1 = fmadd(vecmath::erf(d1 * inv_sqrt2), half, half);
    const V nd2 = fmadd(vecmath::erf(d2 * inv_sqrt2), half, half);
    const V c = fmsub(sq, nd1, xexp * nd2);
    c.stream(call + i);
    (c - sq + xexp).stream(put + i);  // put from call/put parity
  }
  // Scalar tail.
  for (std::ptrdiff_t i = vec_end; i < nopt; ++i) {
    const core::BsPrice p = core::black_scholes(s[i], k[i], t[i], batch.rate, batch.vol,
                                                batch.dividend);
    call[i] = p.call;
    put[i] = p.put;
  }
}

template <int W>
void price_soa_dispatch_q(const core::BsSoaView& batch) {
  if (batch.dividend != 0.0) price_soa_width<W, true>(batch);
  else price_soa_width<W, false>(batch);
}

}  // namespace

void price_intermediate(core::BsSoaView batch, Width w) {
  static obs::Counter& priced = obs::counter("bs.options_priced");
  priced.add(batch.size());
  switch (w) {
    case Width::kScalar: price_soa_dispatch_q<1>(batch); return;
    case Width::kAvx2: price_soa_dispatch_q<4>(batch); return;
#if defined(FINBENCH_HAVE_AVX512)
    case Width::kAvx512:
    case Width::kAuto: price_soa_dispatch_q<8>(batch); return;
#else
    case Width::kAvx512:
    case Width::kAuto: price_soa_dispatch_q<4>(batch); return;
#endif
  }
}

// --- Advanced: VML-style whole-array passes --------------------------------

void price_advanced_vml(core::BsSoaView batch, Width w, core::ScratchPool* scratch) {
  if (batch.dividend != 0.0) {
    throw std::invalid_argument(
        "this variant reproduces the paper's dividend-free kernel; "
        "use price_intermediate for dividend yields");
  }
  const std::size_t n = batch.size();
  const double r = batch.rate;
  const double sig = batch.vol;
  const double sig22 = sig * sig / 2;

  // Chunked so the temporaries stay in L2; each chunk makes VML-style
  // whole-array calls (log, exp, cnd) through aligned scratch buffers.
  // The buffers lease from the caller's pool when it has room (steady
  // state: zero allocations); otherwise each worker allocates locally.
  constexpr std::size_t kChunk = kVmlChunk;

#pragma omp parallel
  {
    core::ScratchPool::Lease lease =
        scratch != nullptr ? scratch->claim(4 * kChunk) : core::ScratchPool::Lease{};
    arch::AlignedVector<double> local;
    if (!lease) local.resize(4 * kChunk);
    double* const buf = lease ? lease.data() : local.data();
    double* const d1 = buf;
    double* const d2 = buf + kChunk;
    double* const xexp = buf + 2 * kChunk;
    double* const qlog = buf + 3 * kChunk;
#pragma omp for schedule(static)
    for (std::ptrdiff_t start = 0; start < static_cast<std::ptrdiff_t>(n);
         start += static_cast<std::ptrdiff_t>(kChunk)) {
      const std::size_t c =
          std::min(kChunk, n - static_cast<std::size_t>(start));
      const double* s = batch.spot.data() + start;
      const double* k = batch.strike.data() + start;
      const double* t = batch.years.data() + start;
      double* call = batch.call.data() + start;
      double* put = batch.put.data() + start;

      for (std::size_t i = 0; i < c; ++i) qlog[i] = s[i] / k[i];
      vecmath::log({qlog, c}, {qlog, c}, w);
      for (std::size_t i = 0; i < c; ++i) {
        const double denom = 1.0 / (sig * std::sqrt(t[i]));
        d1[i] = (qlog[i] + (r + sig22) * t[i]) * denom;
        d2[i] = (qlog[i] + (r - sig22) * t[i]) * denom;
        xexp[i] = -r * t[i];
      }
      vecmath::exp({xexp, c}, {xexp, c}, w);
      vecmath::cnd({d1, c}, {d1, c}, w);
      vecmath::cnd({d2, c}, {d2, c}, w);
      for (std::size_t i = 0; i < c; ++i) {
        const double disc_k = k[i] * xexp[i];
        call[i] = s[i] * d1[i] - disc_k * d2[i];
        put[i] = call[i] - s[i] + disc_k;
      }
    }
  }
}

// --- Batch greeks --------------------------------------------------------------

namespace {

template <int W>
void greeks_width(const core::BsSoaCView& batch, GreeksBatchSoa& out) {
  using V = simd::Vec<double, W>;
  const V r(batch.rate);
  const V q(batch.dividend);
  const V drift(batch.rate - batch.dividend);
  const V sig(batch.vol);
  const V sig22(batch.vol * batch.vol / 2);
  const V one(1.0), half(0.5);
  const V inv_sqrt2(0.70710678118654752440);
  const V inv_sqrt2pi(0.39894228040143267794);

  const std::ptrdiff_t nopt = static_cast<std::ptrdiff_t>(batch.size());
  const double* s = batch.spot.data();
  const double* k = batch.strike.data();
  const double* t = batch.years.data();

  const std::ptrdiff_t vec_end = nopt - nopt % W;
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < vec_end; i += W) {
    const V S = V::load(s + i);
    const V K = V::load(k + i);
    const V T = V::load(t + i);
    const V rt_t = sqrt(T);
    const V sig_rt = sig * rt_t;
    const V d1 = (vecmath::log(S / K) + (drift + sig22) * T) / sig_rt;
    const V d2 = d1 - sig_rt;
    const V df = vecmath::exp(-r * T);
    const V qf = vecmath::exp(-q * T);
    const V kdf = K * df;
    const V pdf_d1 = inv_sqrt2pi * vecmath::exp(-half * d1 * d1);
    const V nd1 = fmadd(vecmath::erf(d1 * inv_sqrt2), half, half);
    const V nd2 = fmadd(vecmath::erf(d2 * inv_sqrt2), half, half);

    (qf * nd1).storeu(out.delta_call.data() + i);
    (qf * (nd1 - one)).storeu(out.delta_put.data() + i);
    (qf * pdf_d1 / (S * sig_rt)).storeu(out.gamma.data() + i);
    (S * qf * pdf_d1 * rt_t).storeu(out.vega.data() + i);
    const V theta_common = -S * qf * pdf_d1 * sig / (V(2.0) * rt_t);
    const V r_kdf = r * kdf;
    const V q_sqf = q * S * qf;
    (theta_common - r_kdf * nd2 + q_sqf * nd1).storeu(out.theta_call.data() + i);
    (theta_common + r_kdf * (one - nd2) - q_sqf * (one - nd1))
        .storeu(out.theta_put.data() + i);
    const V ktdf = kdf * T;
    (ktdf * nd2).storeu(out.rho_call.data() + i);
    (ktdf * (nd2 - one)).storeu(out.rho_put.data() + i);
  }
  // Tail: scalar via the analytic module.
  for (std::ptrdiff_t i = vec_end; i < nopt; ++i) {
    core::OptionSpec o{s[i], k[i], t[i], batch.rate, batch.vol, core::OptionType::kCall,
                       core::ExerciseStyle::kEuropean, batch.dividend};
    const core::BsGreeks gc = core::black_scholes_greeks(o);
    o.type = core::OptionType::kPut;
    const core::BsGreeks gp = core::black_scholes_greeks(o);
    out.delta_call[i] = gc.delta;
    out.delta_put[i] = gp.delta;
    out.gamma[i] = gc.gamma;
    out.vega[i] = gc.vega;
    out.theta_call[i] = gc.theta;
    out.theta_put[i] = gp.theta;
    out.rho_call[i] = gc.rho;
    out.rho_put[i] = gp.rho;
  }
}

}  // namespace

void greeks_intermediate(core::BsSoaCView batch, GreeksBatchSoa& out, Width w) {
  out.resize(batch.size());
  switch (w) {
    case Width::kScalar: greeks_width<1>(batch, out); return;
    case Width::kAvx2: greeks_width<4>(batch, out); return;
#if defined(FINBENCH_HAVE_AVX512)
    case Width::kAvx512:
    case Width::kAuto: greeks_width<8>(batch, out); return;
#else
    case Width::kAvx512:
    case Width::kAuto: greeks_width<4>(batch, out); return;
#endif
  }
}

// --- Batch implied volatility ---------------------------------------------------

namespace {

template <int W>
void implied_vol_width(const core::BsSoaCView& batch, std::span<const double> prices,
                       std::span<double> out) {
  using V = simd::Vec<double, W>;
  using M = typename V::mask_type;
  const V r(batch.rate);
  const V q(batch.dividend);
  const V drift(batch.rate - batch.dividend);
  const V half(0.5), one(1.0);
  const V inv_sqrt2(0.70710678118654752440);
  const V inv_sqrt2pi(0.39894228040143267794);
  constexpr double kTol = 1e-12;

  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(batch.size());
  const std::ptrdiff_t vec_end = n - n % W;

#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < vec_end; i += W) {
    const V S = V::loadu(batch.spot.data() + i);
    const V K = V::loadu(batch.strike.data() + i);
    const V T = V::loadu(batch.years.data() + i);
    const V target = V::loadu(prices.data() + i);
    const V rt_t = sqrt(T);
    const V kdf = K * vecmath::exp(-r * T);
    const V sq = S * vecmath::exp(-q * T);
    const V log_sk = vecmath::log(S / K);

    // Arbitrage-free band for a European call (on the forward).
    const M valid = (target >= max(sq - kdf, V(0.0))) & (target <= sq);

    V lo(1e-6), hi(4.0), vol(0.5);
    M done = !valid;
    for (int it = 0; it < 100 && !done.all(); ++it) {
      const V sig_rt = vol * rt_t;
      const V d1 = log_sk / sig_rt + fmadd(half * vol, rt_t, drift * T / sig_rt);
      const V d2 = d1 - sig_rt;
      const V nd1 = fmadd(vecmath::erf(d1 * inv_sqrt2), half, half);
      const V nd2 = fmadd(vecmath::erf(d2 * inv_sqrt2), half, half);
      const V price = fmsub(sq, nd1, kdf * nd2);
      const V vega = sq * inv_sqrt2pi * vecmath::exp(-half * d1 * d1) * rt_t;
      const V diff = price - target;

      const M converged = abs(diff) <= V(kTol) * max(one, target);
      done = done | converged;

      const M high = diff > V(0.0);
      hi = select(high & (!done), vol, hi);
      lo = select((!high) & (!done), vol, lo);
      V next = vol - diff / max(vega, V(1e-12));
      const M out_of_band = !((next > lo) & (next < hi));
      next = select(out_of_band, half * (lo + hi), next);
      vol = select(done, vol, next);
    }
    select(valid, vol, V(-1.0)).storeu(out.data() + i);
  }
  // Tail via the scalar solver.
  for (std::ptrdiff_t i = vec_end; i < n; ++i) {
    core::OptionSpec o{batch.spot[i], batch.strike[i], batch.years[i], batch.rate, 0.2,
                       core::OptionType::kCall, core::ExerciseStyle::kEuropean,
                       batch.dividend};
    out[i] = core::implied_volatility(o, prices[i]);
  }
}

}  // namespace

void implied_vol_intermediate(core::BsSoaCView batch,
                              std::span<const double> call_prices, std::span<double> vols_out,
                              Width w) {
  assert(call_prices.size() >= batch.size() && vols_out.size() >= batch.size());
  switch (w) {
    case Width::kScalar: implied_vol_width<1>(batch, call_prices, vols_out); return;
    case Width::kAvx2: implied_vol_width<4>(batch, call_prices, vols_out); return;
#if defined(FINBENCH_HAVE_AVX512)
    case Width::kAvx512:
    case Width::kAuto: implied_vol_width<8>(batch, call_prices, vols_out); return;
#else
    case Width::kAvx512:
    case Width::kAuto: implied_vol_width<4>(batch, call_prices, vols_out); return;
#endif
  }
}

// --- Single precision ---------------------------------------------------------

namespace {

template <int W>
void price_sp_width(const core::BsSoaFView& batch) {
  using V = simd::Vec<float, W>;
  const V r(batch.rate);
  const V sig(batch.vol);
  const V sig22(batch.vol * batch.vol / 2);
  const V one(1.0f);

  const std::ptrdiff_t nopt = static_cast<std::ptrdiff_t>(batch.size());
  const float* s = batch.spot.data();
  const float* k = batch.strike.data();
  const float* t = batch.years.data();
  float* call = batch.call.data();
  float* put = batch.put.data();

  const std::ptrdiff_t vec_end = nopt - nopt % W;
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < vec_end; i += W) {
    const V S = V::load(s + i);
    const V K = V::load(k + i);
    const V T = V::load(t + i);
    const V qlog = vecmath::logf(S / K);
    const V denom = one / (sig * sqrt(T));
    const V d1 = (qlog + (r + sig22) * T) * denom;
    const V d2 = (qlog + (r - sig22) * T) * denom;
    const V xexp = K * vecmath::expf(-r * T);
    const V nd1 = vecmath::cndf(d1);
    const V nd2 = vecmath::cndf(d2);
    const V c = S * nd1 - xexp * nd2;
    c.stream(call + i);
    (c - S + xexp).stream(put + i);  // call/put parity
  }
  for (std::ptrdiff_t i = vec_end; i < nopt; ++i) {
    using V1 = simd::Vec<float, 1>;
    const V1 qlog = vecmath::logf(V1(s[i] / k[i]));
    const float denom = 1.0f / (batch.vol * std::sqrt(t[i]));
    const float d1 = (qlog.v + (batch.rate + batch.vol * batch.vol / 2) * t[i]) * denom;
    const float d2 = d1 - batch.vol * std::sqrt(t[i]);
    const float xexp = k[i] * std::exp(-batch.rate * t[i]);
    const float nd1 = vecmath::cndf(V1(d1)).v;
    const float nd2 = vecmath::cndf(V1(d2)).v;
    call[i] = s[i] * nd1 - xexp * nd2;
    put[i] = call[i] - s[i] + xexp;
  }
}

}  // namespace

void price_intermediate_sp(core::BsSoaFView batch, WidthF w) {
  switch (w) {
    case WidthF::kScalar: price_sp_width<1>(batch); return;
    case WidthF::kAvx2: price_sp_width<8>(batch); return;
#if defined(FINBENCH_HAVE_AVX512)
    case WidthF::kAvx512:
    case WidthF::kAuto: price_sp_width<16>(batch); return;
#else
    case WidthF::kAvx512:
    case WidthF::kAuto: price_sp_width<8>(batch); return;
#endif
  }
}

}  // namespace finbench::kernels::bs
