#include "finbench/kernels/risk.hpp"

#include <stdexcept>

#include "finbench/core/analytic.hpp"

namespace finbench::kernels::risk {

namespace {

void validate(std::span<const Position> book) {
  for (const auto& p : book) {
    if (p.option.style != core::ExerciseStyle::kEuropean) {
      throw std::invalid_argument("risk: European positions only");
    }
  }
}

double reprice(const Position& p, double spot_mult, double vol_shift) {
  core::OptionSpec o = p.option;
  o.spot *= spot_mult;
  o.vol = std::max(o.vol + vol_shift, 1e-6);
  return p.quantity * core::black_scholes_price(o);
}

}  // namespace

PortfolioGreeks aggregate(std::span<const Position> book) {
  validate(book);
  PortfolioGreeks out;
  for (const auto& p : book) {
    out.value += p.quantity * core::black_scholes_price(p.option);
    const core::BsGreeks g = core::black_scholes_greeks(p.option);
    out.delta += p.quantity * g.delta;
    out.gamma += p.quantity * g.gamma;
    out.vega += p.quantity * g.vega;
    out.theta += p.quantity * g.theta;
    out.rho += p.quantity * g.rho;
  }
  return out;
}

std::vector<double> spot_ladder(std::span<const Position> book,
                                std::span<const double> spot_multipliers) {
  validate(book);
  double base = 0.0;
  for (const auto& p : book) base += reprice(p, 1.0, 0.0);
  std::vector<double> pnl(spot_multipliers.size(), -base);
  for (std::size_t s = 0; s < spot_multipliers.size(); ++s) {
    for (const auto& p : book) pnl[s] += reprice(p, spot_multipliers[s], 0.0);
  }
  return pnl;
}

std::vector<double> vol_ladder(std::span<const Position> book,
                               std::span<const double> vol_shifts) {
  validate(book);
  double base = 0.0;
  for (const auto& p : book) base += reprice(p, 1.0, 0.0);
  std::vector<double> pnl(vol_shifts.size(), -base);
  for (std::size_t s = 0; s < vol_shifts.size(); ++s) {
    for (const auto& p : book) pnl[s] += reprice(p, 1.0, vol_shifts[s]);
  }
  return pnl;
}

}  // namespace finbench::kernels::risk
