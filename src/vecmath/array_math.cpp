#include "finbench/vecmath/array_math.hpp"

#include <cassert>

#include "finbench/vecmath/vecmath.hpp"
#include "finbench/vecmath/vecmathf.hpp"

namespace finbench::vecmath {

namespace {

// Apply a generic lambda (templated on Vec type) over an array at width W.
template <int W, class F>
void apply_width(std::span<const double> in, std::span<double> out, F&& f) {
  assert(in.size() == out.size());
  using V = simd::Vec<double, W>;
  const std::size_t n = in.size();
  std::size_t i = 0;
  if constexpr (W > 1) {
    for (; i + W <= n; i += W) f(V::loadu(in.data() + i)).storeu(out.data() + i);
  }
  for (; i < n; ++i) out[i] = f(simd::Vec<double, 1>(in[i])).v;
}

template <class F>
void apply(std::span<const double> in, std::span<double> out, Width w, F&& f) {
  switch (w) {
    case Width::kScalar: apply_width<1>(in, out, f); return;
    case Width::kAvx2: apply_width<4>(in, out, f); return;
#if defined(FINBENCH_HAVE_AVX512)
    case Width::kAvx512: apply_width<8>(in, out, f); return;
    case Width::kAuto: apply_width<8>(in, out, f); return;
#else
    case Width::kAvx512:
    case Width::kAuto: apply_width<4>(in, out, f); return;
#endif
  }
}

}  // namespace

int max_width() noexcept { return simd::kMaxVectorWidth; }

void exp(std::span<const double> in, std::span<double> out, Width w) {
  apply(in, out, w, [](auto x) { return vecmath::exp(x); });
}
void log(std::span<const double> in, std::span<double> out, Width w) {
  apply(in, out, w, [](auto x) { return vecmath::log(x); });
}
void erf(std::span<const double> in, std::span<double> out, Width w) {
  apply(in, out, w, [](auto x) { return vecmath::erf(x); });
}
void erfc(std::span<const double> in, std::span<double> out, Width w) {
  apply(in, out, w, [](auto x) { return vecmath::erfc(x); });
}
void cnd(std::span<const double> in, std::span<double> out, Width w) {
  apply(in, out, w, [](auto x) { return vecmath::cnd(x); });
}
void inverse_cnd(std::span<const double> in, std::span<double> out, Width w) {
  apply(in, out, w, [](auto x) { return vecmath::inverse_cnd(x); });
}
void sqrt(std::span<const double> in, std::span<double> out, Width w) {
  apply(in, out, w, [](auto x) { return simd::sqrt(x); });
}

namespace {

template <int W>
void sincos_width(std::span<const double> in, std::span<double> s, std::span<double> c) {
  assert(in.size() == s.size() && in.size() == c.size());
  using V = simd::Vec<double, W>;
  const std::size_t n = in.size();
  std::size_t i = 0;
  if constexpr (W > 1) {
    for (; i + W <= n; i += W) {
      V sv, cv;
      vecmath::sincos(V::loadu(in.data() + i), sv, cv);
      sv.storeu(s.data() + i);
      cv.storeu(c.data() + i);
    }
  }
  for (; i < n; ++i) {
    simd::Vec<double, 1> sv, cv;
    vecmath::sincos(simd::Vec<double, 1>(in[i]), sv, cv);
    s[i] = sv.v;
    c[i] = cv.v;
  }
}

}  // namespace

void sincos(std::span<const double> in, std::span<double> sin_out, std::span<double> cos_out,
            Width w) {
  switch (w) {
    case Width::kScalar: sincos_width<1>(in, sin_out, cos_out); return;
    case Width::kAvx2: sincos_width<4>(in, sin_out, cos_out); return;
#if defined(FINBENCH_HAVE_AVX512)
    case Width::kAvx512:
    case Width::kAuto: sincos_width<8>(in, sin_out, cos_out); return;
#else
    case Width::kAvx512:
    case Width::kAuto: sincos_width<4>(in, sin_out, cos_out); return;
#endif
  }
}

// --- Single precision -----------------------------------------------------

namespace {

template <int W, class F>
void apply_width_f(std::span<const float> in, std::span<float> out, F&& f) {
  assert(in.size() == out.size());
  using V = simd::Vec<float, W>;
  const std::size_t n = in.size();
  std::size_t i = 0;
  if constexpr (W > 1) {
    for (; i + W <= n; i += W) f(V::loadu(in.data() + i)).storeu(out.data() + i);
  }
  for (; i < n; ++i) out[i] = f(simd::Vec<float, 1>(in[i])).v;
}

template <class F>
void apply_f(std::span<const float> in, std::span<float> out, WidthF w, F&& f) {
  switch (w) {
    case WidthF::kScalar: apply_width_f<1>(in, out, f); return;
    case WidthF::kAvx2: apply_width_f<8>(in, out, f); return;
#if defined(FINBENCH_HAVE_AVX512)
    case WidthF::kAvx512:
    case WidthF::kAuto: apply_width_f<16>(in, out, f); return;
#else
    case WidthF::kAvx512:
    case WidthF::kAuto: apply_width_f<8>(in, out, f); return;
#endif
  }
}

}  // namespace

void expf(std::span<const float> in, std::span<float> out, WidthF w) {
  apply_f(in, out, w, [](auto x) { return vecmath::expf(x); });
}
void logf(std::span<const float> in, std::span<float> out, WidthF w) {
  apply_f(in, out, w, [](auto x) { return vecmath::logf(x); });
}
void erff(std::span<const float> in, std::span<float> out, WidthF w) {
  apply_f(in, out, w, [](auto x) { return vecmath::erff(x); });
}
void cndf(std::span<const float> in, std::span<float> out, WidthF w) {
  apply_f(in, out, w, [](auto x) { return vecmath::cndf(x); });
}

}  // namespace finbench::vecmath
