// serve::Server — submission queue drain, admission control, coalescing
// dispatch (finbench/serve/server.hpp, docs/serve.md).
//
// Threading model: any number of client threads submit through the
// lock-free ring; one dispatcher thread drains it, groups fusable
// requests, and prices each group through Engine::price_group — which
// parallelizes *inside* the fused batch on the engine::ThreadPool, so the
// heavy lifting runs on the existing pool workers, not the dispatcher.
// The dispatcher's own loop is allocation-free at steady state: working
// vectors keep their capacity, the group scratch keeps its arena blocks
// and engine Scratch, and the wake-up handshake only touches a mutex when
// the dispatcher has declared itself idle.

#include "finbench/serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <utility>

#include "finbench/obs/metrics.hpp"

namespace finbench::serve {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Admission accounting: the workload bytes a job keeps in flight from
// accept to completion.
std::size_t workload_bytes(const core::PortfolioView& v) {
  switch (v.layout) {
    case core::Layout::kSpecs: return v.specs.size_bytes();
    case core::Layout::kBsAos: return v.aos.options.size_bytes();
    case core::Layout::kBsSoa: return v.soa.spot.size_bytes() * 5;
    case core::Layout::kBsSoaF: return v.sp.spot.size_bytes() * 5;
    case core::Layout::kBsBlocked: return v.blocked.data.size_bytes();
    case core::Layout::kPaths: return v.npaths * sizeof(double);
  }
  return 0;
}

// Clear a job's result for a server-side terminal outcome (queue-expired
// deadline), mirroring what Engine::price does on entry.
void reset_result(engine::PricingResult& r) {
  r.ok = false;
  r.error.clear();
  r.status.reset();
  r.request_id = 0;
  r.items = 0;
  r.seconds = 0.0;
  r.convert_seconds = 0.0;
  r.convert_bytes = 0;
  r.values.clear();
  r.std_errors.clear();
  r.option_faults.clear();
  r.chunk_status.clear();
  r.options_clamped = r.options_skipped = r.options_repaired = 0;
  r.chunks_degraded = r.chunks_failed = r.chunks_deadline = 0;
  r.brownout_level = 0;
  r.npath_applied = 0;
  r.steps_applied = 0;
  r.attempts = 1;
}

}  // namespace

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      engine_(cfg_.engine != nullptr ? cfg_.engine : &engine::Engine::shared()),
      queue_(cfg_.queue_capacity) {
  const std::string& labels = cfg_.histogram_labels;
  hist_request_ = labels.empty() ? &obs::histogram("serve.request.seconds")
                                 : &obs::histogram("serve.request.seconds", labels);
  hist_queue_ = labels.empty() ? &obs::histogram("serve.queue.seconds")
                               : &obs::histogram("serve.queue.seconds", labels);
  hist_batch_ = labels.empty() ? &obs::histogram("serve.batch.size")
                               : &obs::histogram("serve.batch.size", labels);
  const std::size_t burst = cfg_.max_batch_requests > 0 ? cfg_.max_batch_requests : 1;
  pending_.reserve(burst);
  claimed_.reserve(burst);
  members_.reserve(burst);
  group_jobs_.reserve(burst);
  retryq_.reserve(burst);
  retry_budget_.configure(cfg_.retry_tokens_per_request, cfg_.retry_burst);
  brownout_.configure(cfg_.brownout);
  accepting_.store(true, std::memory_order_release);
}

Server::~Server() { stop(); }

void Server::start() {
  if (started_) return;
  stop_.store(false, std::memory_order_release);
  accepting_.store(true, std::memory_order_release);
  dispatcher_ = std::thread([this] { run_dispatcher(); });
  started_ = true;
}

void Server::stop() {
  accepting_.store(false, std::memory_order_release);
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(idle_mu_);
    idle_cv_.notify_all();
  }
  if (started_ && dispatcher_.joinable()) dispatcher_.join();
  started_ = false;
}

robust::Status Server::submit(PricingJob& job) {
  static obs::Counter& c_submitted = obs::counter("serve.submitted");
  static obs::Counter& c_shed_queue = obs::counter("serve.shed.queue_full");
  static obs::Counter& c_shed_bytes = obs::counter("serve.shed.bytes");
  // Aggregate admission counter plus a per-cause split, so a dashboard
  // can tell "ring too small" from "workloads too large" at a glance.
  static obs::Counter& c_admission = obs::counter("robust.admission.shed");
  static obs::Counter& c_admission_queue = obs::counter("robust.admission.shed_queue_full");
  static obs::Counter& c_admission_bytes = obs::counter("robust.admission.shed_bytes");

  if (!accepting_.load(std::memory_order_acquire)) {
    n_shed_queue_.fetch_add(1, std::memory_order_relaxed);
    c_shed_queue.add(1);
    c_admission.add(1);
    c_admission_queue.add(1);
    return robust::Status::resource_exhausted("serve: server is stopped");
  }
  const std::size_t bytes = workload_bytes(job.request.portfolio);
  if (cfg_.max_inflight_bytes > 0) {
    const std::size_t prev = inflight_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    if (prev + bytes > cfg_.max_inflight_bytes) {
      inflight_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
      n_shed_bytes_.fetch_add(1, std::memory_order_relaxed);
      c_shed_bytes.add(1);
      c_admission.add(1);
      c_admission_bytes.add(1);
      return robust::Status::resource_exhausted("serve: in-flight byte cap reached");
    }
  }
  job.bytes_ = bytes;
  job.queue_seconds = 0.0;
  job.total_seconds = 0.0;
  job.batch_size = 0;
  job.submit_ns_ = now_ns();
  job.attempts_ = 1;
  job.retry_ns_ = 0;
  job.backoff_s_ = 0.0;
  job.rng_state_ = job.submit_ns_ ^ 0x9e3779b97f4a7c15ull;
  job.degraded_ = false;
  job.degrade_level_ = 0;
  job.state_.store(PricingJob::kQueued, std::memory_order_release);
  if (!queue_.try_push(&job)) {
    job.state_.store(PricingJob::kIdle, std::memory_order_relaxed);
    inflight_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    n_shed_queue_.fetch_add(1, std::memory_order_relaxed);
    c_shed_queue.add(1);
    c_admission.add(1);
    c_admission_queue.add(1);
    return robust::Status::resource_exhausted("serve: submission queue full");
  }
  n_submitted_.fetch_add(1, std::memory_order_relaxed);
  c_submitted.add(1);
  // Dekker handshake with the idle dispatcher: the push above must be
  // visible before we decide whether a wake-up is needed (the dispatcher
  // publishes idle_sleeping_ and then re-checks the queue).
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (idle_sleeping_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lk(idle_mu_);
    idle_cv_.notify_one();
  }
  return {};
}

void Server::wait(const PricingJob& job) {
  if (job.done()) return;
  std::unique_lock<std::mutex> lk(done_mu_);
  done_cv_.wait(lk, [&job] { return job.done(); });
}

Server::Stats Server::stats() const {
  Stats s;
  s.submitted = n_submitted_.load(std::memory_order_relaxed);
  s.completed = n_completed_.load(std::memory_order_relaxed);
  s.shed_queue = n_shed_queue_.load(std::memory_order_relaxed);
  s.shed_bytes = n_shed_bytes_.load(std::memory_order_relaxed);
  s.expired_in_queue = n_expired_.load(std::memory_order_relaxed);
  s.batches = n_batches_.load(std::memory_order_relaxed);
  s.coalesced = n_coalesced_.load(std::memory_order_relaxed);
  s.max_batch = n_max_batch_.load(std::memory_order_relaxed);
  s.retries = n_retries_.load(std::memory_order_relaxed);
  s.retry_denied = n_retry_denied_.load(std::memory_order_relaxed);
  s.brownout_shed = n_brownout_shed_.load(std::memory_order_relaxed);
  s.brownout_level = brownout_.level();
  return s;
}

void Server::run_dispatcher() {
  int idle_spins = 0;
  for (;;) {
    pending_.clear();
    const std::uint64_t now = now_ns();
    brownout_.evaluate(1e-9 * static_cast<double>(now));
    const bool stopping = stop_.load(std::memory_order_acquire);
    // On stop, waiting out backoffs would only delay shutdown: flush every
    // pending retry and dispatch it now.
    const std::uint64_t next_retry = collect_due_retries(now, stopping);
    PricingJob* j = nullptr;
    while (pending_.size() < cfg_.max_batch_requests && (j = queue_.try_pop()) != nullptr) {
      pending_.push_back(j);
    }
    if (pending_.empty()) {
      if (stopping && queue_.approx_size() == 0 && retryq_.empty()) return;
      if (++idle_spins < 64) {
        std::this_thread::yield();
        continue;
      }
      std::unique_lock<std::mutex> lk(idle_mu_);
      idle_sleeping_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (queue_.approx_size() == 0 && !stop_.load(std::memory_order_acquire)) {
        // The idle nap must not overshoot the earliest retry's not-before
        // time, or a lone retried job would sit past its backoff.
        std::chrono::microseconds nap(200);
        if (next_retry != 0) {
          const std::uint64_t n2 = now_ns();
          const std::uint64_t gap = next_retry > n2 ? next_retry - n2 : 1;
          nap = std::min(nap, std::chrono::microseconds(gap / 1000 + 1));
        }
        idle_cv_.wait_for(lk, nap);
      }
      idle_sleeping_.store(false, std::memory_order_relaxed);
      continue;
    }
    idle_spins = 0;
    process(now_ns());
  }
}

std::uint64_t Server::collect_due_retries(std::uint64_t now, bool flush) {
  if (retryq_.empty()) return 0;
  std::uint64_t next = 0;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < retryq_.size(); ++i) {
    PricingJob* job = retryq_[i];
    if (flush || job->retry_ns_ <= now) {
      pending_.push_back(job);
    } else {
      if (next == 0 || job->retry_ns_ < next) next = job->retry_ns_;
      retryq_[keep++] = job;
    }
  }
  retryq_.resize(keep);
  return next;
}

void Server::process(std::uint64_t now) {
  static obs::Counter& c_batches = obs::counter("serve.batches");
  static obs::Counter& c_coalesced = obs::counter("serve.coalesced.requests");
  static obs::Counter& c_expired = obs::counter("serve.expired_in_queue");
  static obs::Counter& c_deadline = obs::counter("robust.deadline.expired");
  static obs::Counter& c_bshed = obs::counter("resilience.brownout.shed");

  claimed_.assign(pending_.size(), 0);
  bool completed_any = false;

  // Queue-expiry pass: a job whose deadline budget is already gone
  // completes immediately — it never blocks the jobs behind it, and the
  // engine never sees it.
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    PricingJob& job = *pending_[i];
    job.queue_seconds = 1e-9 * static_cast<double>(now - job.submit_ns_);
    const double budget = job.request.deadline_seconds;
    if (budget > 0.0 && job.queue_seconds >= budget) {
      reset_result(job.result);
      job.result.kernel_id = job.request.kernel_id;
      job.result.chunks_deadline = 1;
      job.result.status.set(robust::StatusCode::kDeadlineExceeded,
                            "serve: deadline expired while queued");
      job.result.error = job.result.status.to_string();
      n_expired_.fetch_add(1, std::memory_order_relaxed);
      c_expired.add(1);
      c_deadline.add(1);
      claimed_[i] = 1;
      complete(job, now, 0);
      completed_any = true;
    }
  }

  // Brownout pass: at the top ladder level, below-priority requests are
  // shed before dispatch; at any level > 0, opted-in requests get their
  // accuracy knobs scaled (within their declared floors) — the scaled
  // knobs form a new TuneKey, so the race picks a variant that wins at
  // the degraded accuracy. Knobs are restored at completion.
  const int blevel = brownout_.level();
  if (blevel > 0) {
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (claimed_[i] != 0) continue;
      PricingJob& job = *pending_[i];
      if (brownout_.shed(job.request.degrade.priority)) {
        reset_result(job.result);
        job.result.kernel_id = job.request.kernel_id;
        job.result.status.set(robust::StatusCode::kResourceExhausted,
                              "serve: shed by brownout at max level");
        job.result.error = job.result.status.to_string();
        brownout_.note_shed();
        n_brownout_shed_.fetch_add(1, std::memory_order_relaxed);
        c_bshed.add(1);
        claimed_[i] = 1;
        // kResourceExhausted is retryable: pressure passes. Route through
        // finish() so an opted-in job backs off and tries again.
        finish(job, now, 0);
        completed_any = true;
        continue;
      }
      job.saved_npath_ = job.request.npath;
      job.saved_steps_ = job.request.steps;
      job.degraded_ = brownout_.apply(job.request.degrade, job.request.npath, job.request.steps);
      job.degrade_level_ = job.degraded_ ? blevel : 0;
    }
  }
  if (completed_any) signal_done();

  // Greedy coalescing: seed with the oldest unclaimed job, sweep the rest
  // of the drained burst for fusable partners, price the group as one
  // fused batch. With coalescing off every job is its own group.
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (claimed_[i] != 0) continue;
    members_.clear();
    group_jobs_.clear();
    PricingJob* seed = pending_[i];
    members_.push_back(seed);
    claimed_[i] = 1;
    std::size_t total = seed->request.portfolio.size();
    if (cfg_.coalesce) {
      for (std::size_t k = i + 1;
           k < pending_.size() && members_.size() < cfg_.max_batch_requests; ++k) {
        if (claimed_[k] != 0) continue;
        PricingJob* cand = pending_[k];
        const std::size_t m = cand->request.portfolio.size();
        if (total + m > cfg_.max_batch_items) continue;
        if (!engine::Engine::fusable(seed->request, cand->request)) continue;
        members_.push_back(cand);
        claimed_[k] = 1;
        total += m;
      }
    }
    // A fused group runs under the most urgent member's budget.
    double deadline = 0.0;
    for (PricingJob* mjob : members_) {
      const double d = mjob->request.deadline_seconds;
      if (d > 0.0 && (deadline <= 0.0 || d < deadline)) deadline = d;
    }
    group_scratch_.deadline_seconds = deadline;
    for (PricingJob* mjob : members_) {
      group_jobs_.push_back({&mjob->request, &mjob->result});
    }
    engine_->price_group({group_jobs_.data(), group_jobs_.size()}, group_scratch_);
    const std::uint64_t end = now_ns();
    hist_batch_->record_ns(members_.size());
    n_batches_.fetch_add(1, std::memory_order_relaxed);
    c_batches.add(1);
    if (members_.size() > 1) {
      n_coalesced_.fetch_add(members_.size(), std::memory_order_relaxed);
      c_coalesced.add(members_.size());
    }
    std::uint64_t prev_max = n_max_batch_.load(std::memory_order_relaxed);
    while (members_.size() > prev_max &&
           !n_max_batch_.compare_exchange_weak(prev_max, members_.size(),
                                               std::memory_order_relaxed)) {
    }
    for (PricingJob* mjob : members_) finish(*mjob, end, members_.size());
    signal_done();
  }
}

// Undo a brownout knob scale so a retried (or completed) job's request is
// back to what the caller submitted.
void Server::restore_knobs(PricingJob& job) {
  if (!job.degraded_) return;
  job.request.npath = job.saved_npath_;
  job.request.steps = job.saved_steps_;
  job.degraded_ = false;
  job.degrade_level_ = 0;
}

void Server::finish(PricingJob& job, std::uint64_t end_ns, std::size_t batch_size) {
  // batch_size > 0 means the job was actually dispatched; only a real
  // first-attempt dispatch earns retry-budget tokens.
  if (batch_size > 0 && job.attempts_ == 1) retry_budget_.on_primary();
  if (maybe_retry(job, end_ns)) return;
  complete(job, end_ns, batch_size);
}

bool Server::maybe_retry(PricingJob& job, std::uint64_t end_ns) {
  static obs::Counter& c_attempts = obs::counter("resilience.retry.attempts");
  static obs::Counter& c_denied = obs::counter("resilience.retry.denied");
  const resilience::RetryPolicy& pol = job.request.retry;
  if (!pol.enabled() || job.attempts_ >= pol.max_attempts) return false;
  const robust::StatusCode code = job.result.status.code();
  if (code != robust::StatusCode::kKernelError &&
      code != robust::StatusCode::kResourceExhausted) {
    return false;  // wrong, done, or out of time — a retry cannot help
  }
  const double backoff = resilience::decorrelated_jitter(
      job.rng_state_, pol.base_backoff_seconds, pol.max_backoff_seconds, job.backoff_s_);
  const double budget = job.request.deadline_seconds;
  if (budget > 0.0) {
    const double elapsed = 1e-9 * static_cast<double>(end_ns - job.submit_ns_);
    if (elapsed + backoff >= budget) return false;  // no headroom for another attempt
  }
  if (!retry_budget_.try_acquire()) {
    n_retry_denied_.fetch_add(1, std::memory_order_relaxed);
    c_denied.add(1);
    return false;
  }
  restore_knobs(job);  // next attempt re-applies whatever level then holds
  job.backoff_s_ = backoff;
  job.retry_ns_ = end_ns + static_cast<std::uint64_t>(backoff * 1e9);
  ++job.attempts_;
  n_retries_.fetch_add(1, std::memory_order_relaxed);
  c_attempts.add(1);
  retryq_.push_back(&job);
  return true;
}

void Server::complete(PricingJob& job, std::uint64_t end_ns, std::size_t batch_size) {
  static obs::Counter& c_completed = obs::counter("serve.completed");
  static obs::Counter& c_degraded = obs::counter("resilience.brownout.degraded");
  job.result.attempts = job.attempts_;
  if (job.degraded_) {
    // Annotate what actually executed, then put the caller's knobs back.
    job.result.brownout_level = job.degrade_level_;
    job.result.npath_applied = job.request.npath;
    job.result.steps_applied = job.request.steps;
    if (job.result.status.code() == robust::StatusCode::kOk) {
      job.result.status.set(robust::StatusCode::kDegraded,
                            "serve: browned out (accuracy knobs reduced)");
      job.result.error = job.result.status.to_string();
      job.result.ok = job.result.status.ok();
    }
    c_degraded.add(1);
    restore_knobs(job);
  }
  job.total_seconds = 1e-9 * static_cast<double>(end_ns - job.submit_ns_);
  job.batch_size = batch_size;
  const bool miss = job.result.status.code() == robust::StatusCode::kDeadlineExceeded ||
                    job.result.chunks_deadline > 0;
  brownout_.on_complete(job.queue_seconds, miss, 1e-9 * static_cast<double>(end_ns));
  hist_request_->record_seconds(job.total_seconds);
  hist_queue_->record_seconds(job.queue_seconds);
  inflight_bytes_.fetch_sub(job.bytes_, std::memory_order_relaxed);
  n_completed_.fetch_add(1, std::memory_order_relaxed);
  c_completed.add(1);
  if (job.on_done != nullptr) job.on_done(job.on_done_ctx, job);
  job.state_.store(PricingJob::kDone, std::memory_order_release);
}

// One wakeup per dispatch round, not per member: a fused batch completing
// N jobs must not bounce the scheduler between the dispatcher and a
// waiting client N times. Taking (and releasing) done_mu_ before the
// notify orders every state flip above against a waiter's predicate
// check, so no completion can fall between wait()'s check and its sleep.
void Server::signal_done() {
  { std::lock_guard<std::mutex> lk(done_mu_); }
  done_cv_.notify_all();
}

}  // namespace finbench::serve
