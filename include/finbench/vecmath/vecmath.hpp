// finbench/vecmath/vecmath.hpp
//
// Short-vector transcendental math: the library's substitute for the Intel
// Short Vector Math Library (SVML) that the paper's optimized kernels rely
// on (Sec. IV-A2). Every function is written once, generically over
// simd::Vec<double, W>, so the W=1 instantiation is an executable
// specification for the SIMD instantiations.
//
// Implementations:
//   exp     — Cody–Waite argument reduction + degree-11 polynomial
//   log     — exponent/mantissa split + atanh-series in s=(m-1)/(m+1)
//   erf/erfc— W. J. Cody's three-region rational approximations (CALERF)
//   cnd     — standard normal CDF via erfc (tail-accurate)
//   inverse_cnd — Acklam's rational approximation + one Halley refinement
//   sincos  — 3-part Cody–Waite pi/2 reduction + minimax polynomials
//
// Accuracy (validated in tests/test_vecmath.cpp against libm):
//   exp/log: <= 2 ulp over the finance-relevant domain
//   erf/erfc/cnd: <= 4 ulp; cnd is tail-accurate down to ~1e-300
//   inverse_cnd: <= 1e-14 relative after refinement
//
// Domain notes: exp underflows to 0 below -708.39 (the smallest normal
// result) rather than producing subnormals; sincos requires |x| < 2^30.

#pragma once

#include <limits>

#include "finbench/simd/vec.hpp"

namespace finbench::vecmath {

using simd::Mask;
using simd::Vec;

namespace detail {

inline constexpr double kLog2E = 1.4426950408889634074;     // log2(e)
inline constexpr double kLn2Hi = 6.93145751953125e-1;       // ln2 high part
inline constexpr double kLn2Lo = 1.42860682030941723212e-6; // ln2 low part
inline constexpr double kSqrt2 = 1.41421356237309504880;
inline constexpr double kInvSqrtPi = 5.6418958354775628695e-1;  // 1/sqrt(pi)
inline constexpr double kInvSqrt2 = 7.0710678118654752440e-1;
inline constexpr double kSqrt2Pi = 2.5066282746310005024;
inline constexpr double kExpOverflow = 709.782712893383996;
inline constexpr double kExpUnderflow = -708.396418532264106;

}  // namespace detail

// ---------------------------------------------------------------------------
// exp
// ---------------------------------------------------------------------------

template <class V> inline V exp(V x) {
  using namespace detail;
  using M = typename V::mask_type;

  const M too_big = x > V(kExpOverflow);
  const M too_small = x < V(kExpUnderflow);
  const M is_nan = x != x;

  // Reduce: x = n*ln2 + r, |r| <= ln2/2.
  V n = round_nearest(x * V(kLog2E));
  V r = fnmadd(n, V(kLn2Hi), x);
  r = fnmadd(n, V(kLn2Lo), r);

  // exp(r) via degree-13 Taylor/Horner (coefficients 1/k!).
  V p = V(1.0 / 6227020800.0);
  p = fmadd(p, r, V(1.0 / 479001600.0));
  p = fmadd(p, r, V(1.0 / 39916800.0));
  p = fmadd(p, r, V(1.0 / 3628800.0));
  p = fmadd(p, r, V(1.0 / 362880.0));
  p = fmadd(p, r, V(1.0 / 40320.0));
  p = fmadd(p, r, V(1.0 / 5040.0));
  p = fmadd(p, r, V(1.0 / 720.0));
  p = fmadd(p, r, V(1.0 / 120.0));
  p = fmadd(p, r, V(1.0 / 24.0));
  p = fmadd(p, r, V(1.0 / 6.0));
  p = fmadd(p, r, V(0.5));
  p = fmadd(p, r, V(1.0));
  p = fmadd(p, r, V(1.0));

  // Scale by 2^n. n is clamped implicitly by the over/underflow masks.
  n = min(max(n, V(-1022.0)), V(1023.0));
  V result = p * simd::pow2n(n);

  result = select(too_big, V(std::numeric_limits<double>::infinity()), result);
  result = select(too_small, V(0.0), result);
  result = select(is_nan, x, result);
  return result;
}

// ---------------------------------------------------------------------------
// log
// ---------------------------------------------------------------------------

template <class V> inline V log(V x) {
  using namespace detail;
  using M = typename V::mask_type;

  const M not_pos = !(x > V(0.0));
  const M is_inf = x == V(std::numeric_limits<double>::infinity());
  // Scale subnormals into the normal range before the exponent split.
  const M subnormal = (x > V(0.0)) & (x < V(2.2250738585072014e-308));
  V xs = select(subnormal, x * V(0x1p54), x);
  const V ebias = select(subnormal, V(54.0), V(0.0));

  V m, e;
  simd::split_exponent(xs, m, e);
  // Keep m in [sqrt(2)/2, sqrt(2)) so s = (m-1)/(m+1) is small.
  const M upper = m > V(kSqrt2);
  m = select(upper, m * V(0.5), m);
  e = select(upper, e + V(1.0), e) - ebias;

  const V s = (m - V(1.0)) / (m + V(1.0));
  const V z = s * s;
  // 2*atanh(s) = 2s * (1 + z/3 + z^2/5 + ...): truncated odd series.
  V p = V(2.0 / 19.0);
  p = fmadd(p, z, V(2.0 / 17.0));
  p = fmadd(p, z, V(2.0 / 15.0));
  p = fmadd(p, z, V(2.0 / 13.0));
  p = fmadd(p, z, V(2.0 / 11.0));
  p = fmadd(p, z, V(2.0 / 9.0));
  p = fmadd(p, z, V(2.0 / 7.0));
  p = fmadd(p, z, V(2.0 / 5.0));
  p = fmadd(p, z, V(2.0 / 3.0));
  V log_m = fmadd(p * z, s, s + s);

  V result = fmadd(e, V(kLn2Hi), fmadd(e, V(kLn2Lo), log_m));

  result = select(is_inf, x, result);
  result = select(x == V(0.0), V(-std::numeric_limits<double>::infinity()), result);
  result = select(not_pos & !(x == V(0.0)), V(std::numeric_limits<double>::quiet_NaN()), result);
  return result;
}

// ---------------------------------------------------------------------------
// erf / erfc (Cody's CALERF rational approximations)
// ---------------------------------------------------------------------------

namespace detail {

// Region 1: erf(x) for |x| <= 0.46875.
template <class V> inline V erf_small(V x) {
  const V z = x * x;
  V num = fmadd(V(1.85777706184603153e-1), z, V(3.16112374387056560e+0));
  V den = z + V(2.36012909523441209e+1);
  num = fmadd(num, z, V(1.13864154151050156e+2));
  den = fmadd(den, z, V(2.44024637934444173e+2));
  num = fmadd(num, z, V(3.77485237685302021e+2));
  den = fmadd(den, z, V(1.28261652607737228e+3));
  num = fmadd(num, z, V(3.20937758913846947e+3));
  den = fmadd(den, z, V(2.84423683343917062e+3));
  return x * num / den;
}

// exp(-y*y) with the split-argument trick for full accuracy at large y.
template <class V> inline V exp_neg_sq(V y) {
  // ysq = y rounded to 1/16 so ysq*ysq is exact; correct with the residual.
  const V ysq = round_nearest(y * V(16.0)) * V(0.0625);
  const V del = (y - ysq) * (y + ysq);
  return exp(-(ysq * ysq)) * exp(-del);
}

// Region 2: erfc(y)*exp(y*y) for 0.46875 < y <= 4.
template <class V> inline V erfcx_mid(V y) {
  V num = fmadd(V(2.15311535474403846e-8), y, V(5.64188496988670089e-1));
  V den = y + V(1.57449261107098347e+1);
  num = fmadd(num, y, V(8.88314979438837594e+0));
  den = fmadd(den, y, V(1.17693950891312499e+2));
  num = fmadd(num, y, V(6.61191906371416295e+1));
  den = fmadd(den, y, V(5.37181101862009858e+2));
  num = fmadd(num, y, V(2.98635138197400131e+2));
  den = fmadd(den, y, V(1.62138957456669019e+3));
  num = fmadd(num, y, V(8.81952221241769090e+2));
  den = fmadd(den, y, V(3.29079923573345963e+3));
  num = fmadd(num, y, V(1.71204761263407058e+3));
  den = fmadd(den, y, V(4.36261909014324716e+3));
  num = fmadd(num, y, V(2.05107837782607147e+3));
  den = fmadd(den, y, V(3.43936767414372164e+3));
  num = fmadd(num, y, V(1.23033935479799725e+3));
  den = fmadd(den, y, V(1.23033935480374942e+3));
  return num / den;
}

// Region 3: erfc(y)*exp(y*y) for y > 4.
template <class V> inline V erfcx_large(V y) {
  const V z = V(1.0) / (y * y);
  V num = fmadd(V(1.63153871373020978e-2), z, V(3.05326634961232344e-1));
  V den = z + V(2.56852019228982242e+0);
  num = fmadd(num, z, V(3.60344899949804439e-1));
  den = fmadd(den, z, V(1.87295284992346047e+0));
  num = fmadd(num, z, V(1.25781726111229246e-1));
  den = fmadd(den, z, V(5.27905102951428412e-1));
  num = fmadd(num, z, V(1.60837851487422766e-2));
  den = fmadd(den, z, V(6.05183413124413191e-2));
  num = fmadd(num, z, V(6.58749161529837803e-4));
  den = fmadd(den, z, V(2.33520497626869185e-3));
  const V r = z * num / den;
  return (V(kInvSqrtPi) - r) / y;
}

// erfc(y) for y >= 0.46875 (combines regions 2 and 3 with masks).
template <class V> inline V erfc_tail(V y) {
  using M = typename V::mask_type;
  const M mid = y <= V(4.0);
  // Avoid computing garbage lanes: clamp the inactive region's argument.
  const V erfcx = select(mid, erfcx_mid(min(y, V(4.0))), erfcx_large(max(y, V(4.0))));
  // erfc underflows for y >~ 26.54.
  V r = exp_neg_sq(y) * erfcx;
  return select(y > V(26.6), V(0.0), r);
}

}  // namespace detail

template <class V> inline V erf(V x) {
  using M = typename V::mask_type;
  const V y = abs(x);
  const M small = y <= V(0.46875);
  const V small_val = detail::erf_small(select(small, x, V(0.0)));
  const V tail = V(1.0) - detail::erfc_tail(max(y, V(0.46875)));
  const V tail_val = simd::copysign(tail, x);
  return select(small, small_val, tail_val);
}

template <class V> inline V erfc(V x) {
  using M = typename V::mask_type;
  const V y = abs(x);
  const M small = y <= V(0.46875);
  const V small_val = V(1.0) - detail::erf_small(select(small, x, V(0.0)));
  V tail = detail::erfc_tail(max(y, V(0.46875)));
  tail = select(x < V(0.0), V(2.0) - tail, tail);
  return select(small, small_val, tail);
}

// Standard normal CDF. Computed through erfc so that deep negative tails
// (down to ~1e-300) keep full relative accuracy — the property the paper's
// Black-Scholes kernel relies on when substituting cnd with erf (Sec. IV-A2).
template <class V> inline V cnd(V x) {
  return V(0.5) * erfc(-x * V(detail::kInvSqrt2));
}

// ---------------------------------------------------------------------------
// inverse_cnd (Wichura's AS241 / PPND16: pure rationals, full double
// precision without iterative refinement — the central path costs no
// transcendentals at all, which is what makes the ICDF normal transform
// competitive on wide SIMD)
// ---------------------------------------------------------------------------

namespace detail {

// |q| = |p - 0.5| <= 0.425: x = q * A(r)/B(r), r = 0.180625 - q^2.
template <class V> inline V ppnd16_central(V q) {
  const V r = fnmadd(q, q, V(0.180625));
  V num = fmadd(V(2.5090809287301226727e+3), r, V(3.3430575583588128105e+4));
  num = fmadd(num, r, V(6.7265770927008700853e+4));
  num = fmadd(num, r, V(4.5921953931549871457e+4));
  num = fmadd(num, r, V(1.3731693765509461125e+4));
  num = fmadd(num, r, V(1.9715909503065514427e+3));
  num = fmadd(num, r, V(1.3314166789178437745e+2));
  num = fmadd(num, r, V(3.3871328727963666080e+0));
  V den = fmadd(V(5.2264952788528545610e+3), r, V(2.8729085735721942674e+4));
  den = fmadd(den, r, V(3.9307895800092710610e+4));
  den = fmadd(den, r, V(2.1213794301586595867e+4));
  den = fmadd(den, r, V(5.3941960214247511077e+3));
  den = fmadd(den, r, V(6.8718700749205790830e+2));
  den = fmadd(den, r, V(4.2313330701600911252e+1));
  den = fmadd(den, r, V(1.0));
  return q * num / den;
}

// r = sqrt(-ln(p_tail)), 1.6 < r <= 5 (i.e. p_tail down to ~1.4e-11).
template <class V> inline V ppnd16_mid(V r) {
  const V rr = r - V(1.6);
  V num = fmadd(V(7.74545014278341407640e-4), rr, V(2.27238449892691845833e-2));
  num = fmadd(num, rr, V(2.41780725177450611770e-1));
  num = fmadd(num, rr, V(1.27045825245236838258e+0));
  num = fmadd(num, rr, V(3.64784832476320460504e+0));
  num = fmadd(num, rr, V(5.76949722146069140550e+0));
  num = fmadd(num, rr, V(4.63033784615654529590e+0));
  num = fmadd(num, rr, V(1.42343711074968357734e+0));
  V den = fmadd(V(1.05075007164441684324e-9), rr, V(5.47593808499534494600e-4));
  den = fmadd(den, rr, V(1.51986665636164571966e-2));
  den = fmadd(den, rr, V(1.48103976427480074590e-1));
  den = fmadd(den, rr, V(6.89767334985100004550e-1));
  den = fmadd(den, rr, V(1.67638483018380384940e+0));
  den = fmadd(den, rr, V(2.05319162663775882187e+0));
  den = fmadd(den, rr, V(1.0));
  return num / den;
}

// r > 5 (p_tail below ~1.4e-11, down to the smallest doubles).
template <class V> inline V ppnd16_far(V r) {
  const V rr = r - V(5.0);
  V num = fmadd(V(2.01033439929228813265e-7), rr, V(2.71155556874348757815e-5));
  num = fmadd(num, rr, V(1.24266094738807843860e-3));
  num = fmadd(num, rr, V(2.65321895265761230930e-2));
  num = fmadd(num, rr, V(2.96560571828504891230e-1));
  num = fmadd(num, rr, V(1.78482653991729133580e+0));
  num = fmadd(num, rr, V(5.46378491116411436990e+0));
  num = fmadd(num, rr, V(6.65790464350110377720e+0));
  V den = fmadd(V(2.04426310338993978564e-15), rr, V(1.42151175831644588870e-7));
  den = fmadd(den, rr, V(1.84631831751005468180e-5));
  den = fmadd(den, rr, V(7.86869131145613259100e-4));
  den = fmadd(den, rr, V(1.48753612908506148525e-2));
  den = fmadd(den, rr, V(1.36929880922735805310e-1));
  den = fmadd(den, rr, V(5.99832206555887937690e-1));
  den = fmadd(den, rr, V(1.0));
  return num / den;
}

}  // namespace detail

// Inverse of cnd: returns x with cnd(x) = p, for p in (0, 1).
template <class V> inline V inverse_cnd(V p) {
  using namespace detail;
  using M = typename V::mask_type;

  const V q = p - V(0.5);
  const M central = abs(q) <= V(0.425);

  V x;
  if (central.all()) {
    // Fast path: 85% of uniform inputs per lane, so most full vectors —
    // no log/sqrt, pure rational arithmetic.
    x = ppnd16_central(q);
  } else {
    // Tail lanes: r = sqrt(-ln(min(p, 1-p))), sign restored at the end.
    const M lower = q < V(0.0);
    const V p_tail = select(lower, p, V(1.0) - p);
    const V p_safe = select(central, V(0.1), p_tail);  // keep log() happy
    const V r = sqrt(-log(p_safe));
    const M mid = r <= V(5.0);
    V tail = select(mid, ppnd16_mid(min(r, V(5.0))), ppnd16_far(max(r, V(5.0))));
    tail = select(lower, -tail, tail);
    x = select(central, ppnd16_central(q), tail);
  }

  // Edge cases.
  x = select(p <= V(0.0), V(-std::numeric_limits<double>::infinity()), x);
  x = select(p >= V(1.0), V(std::numeric_limits<double>::infinity()), x);
  return x;
}

// ---------------------------------------------------------------------------
// sincos (Cody–Waite reduction; |x| < 2^30)
// ---------------------------------------------------------------------------

namespace detail {

inline constexpr double kTwoOverPi = 6.36619772367581382433e-1;
inline constexpr double kPio2Hi = 1.57079632673412561417e+0;
inline constexpr double kPio2Mid = 6.07710050650619224932e-11;
inline constexpr double kPio2Lo = 2.02226624879595063154e-21;

// sin(r) for |r| <= pi/4 (degree-13 odd polynomial).
template <class V> inline V sin_poly(V r) {
  const V z = r * r;
  V p = V(1.58962301576546568060e-10);
  p = fmadd(p, z, V(-2.50507477628578072866e-8));
  p = fmadd(p, z, V(2.75573136213857245213e-6));
  p = fmadd(p, z, V(-1.98412698295895385996e-4));
  p = fmadd(p, z, V(8.33333333332211858878e-3));
  p = fmadd(p, z, V(-1.66666666666666307295e-1));
  return fmadd(p * z, r, r);
}

// cos(r) for |r| <= pi/4 (degree-14 even polynomial).
template <class V> inline V cos_poly(V r) {
  const V z = r * r;
  V p = V(-1.13585365213876817300e-11);
  p = fmadd(p, z, V(2.08757008419747316778e-9));
  p = fmadd(p, z, V(-2.75573141792967388112e-7));
  p = fmadd(p, z, V(2.48015872888517179954e-5));
  p = fmadd(p, z, V(-1.38888888888730564116e-3));
  p = fmadd(p, z, V(4.16666666666665929218e-2));
  return fmadd(p, z * z, fnmadd(V(0.5), z, V(1.0)));
}

}  // namespace detail

// Simultaneous sin and cos. Quadrant selection is branch-free.
template <class V> inline void sincos(V x, V& s, V& c) {
  using namespace detail;
  using I = typename V::int_type;
  using M = typename V::mask_type;

  const V n = round_nearest(x * V(kTwoOverPi));
  V r = fnmadd(n, V(kPio2Hi), x);
  r = fnmadd(n, V(kPio2Mid), r);
  r = fnmadd(n, V(kPio2Lo), r);

  const V sp = sin_poly(r);
  const V cp = cos_poly(r);

  // Quadrant q = n mod 4 decides which polynomial lands where and the signs.
  const I q = to_int(n) & I(3);
  const V qd = to_double(q);
  const M swap = (qd == V(1.0)) | (qd == V(3.0));     // odd quadrant: swap
  const M s_neg = qd >= V(2.0);                       // sin negative in q2,q3
  const M c_neg = (qd == V(1.0)) | (qd == V(2.0));    // cos negative in q1,q2

  V sv = select(swap, cp, sp);
  V cv = select(swap, sp, cp);
  sv = select(s_neg, -sv, sv);
  cv = select(c_neg, -cv, cv);
  s = sv;
  c = cv;
}

template <class V> inline V sin(V x) { V s, c; sincos(x, s, c); return s; }
template <class V> inline V cos(V x) { V s, c; sincos(x, s, c); return c; }

}  // namespace finbench::vecmath
