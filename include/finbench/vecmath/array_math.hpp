// finbench/vecmath/array_math.hpp
//
// Array-level math: the library's substitute for Intel MKL VML, which the
// paper's "Advanced (Using VML)" Black–Scholes variant calls into (Fig. 4).
// Each routine applies a transcendental to a whole array with a SIMD main
// loop and a scalar tail, optionally at a forced vector width so benchmarks
// can compare the 4-wide (SNB-EP-class) and 8-wide (KNC-class) paths.

#pragma once

#include <cstddef>
#include <span>

namespace finbench::vecmath {

// Vector-width selection for the array routines (and for kernels).
enum class Width {
  kScalar = 1,   // W=1 reference path
  kAvx2 = 4,     // W=4, 256-bit (SNB-EP-class)
  kAvx512 = 8,   // W=8, 512-bit (KNC-class)
  kAuto = 0,     // widest path compiled in
};

// Single-precision width selection (float lanes are twice as many).
enum class WidthF { kScalar = 1, kAvx2 = 8, kAvx512 = 16, kAuto = 0 };

// Widest width compiled into this build (8 with AVX-512, else 4).
int max_width() noexcept;

// out[i] = f(in[i]); in and out may alias exactly (in == out) but must not
// partially overlap. All routines are thread-safe and allocation-free.
void exp(std::span<const double> in, std::span<double> out, Width w = Width::kAuto);
void log(std::span<const double> in, std::span<double> out, Width w = Width::kAuto);
void erf(std::span<const double> in, std::span<double> out, Width w = Width::kAuto);
void erfc(std::span<const double> in, std::span<double> out, Width w = Width::kAuto);
void cnd(std::span<const double> in, std::span<double> out, Width w = Width::kAuto);
void inverse_cnd(std::span<const double> in, std::span<double> out, Width w = Width::kAuto);
void sincos(std::span<const double> in, std::span<double> sin_out, std::span<double> cos_out,
            Width w = Width::kAuto);
void sqrt(std::span<const double> in, std::span<double> out, Width w = Width::kAuto);

// Single-precision array routines (same aliasing rules).
void expf(std::span<const float> in, std::span<float> out, WidthF w = WidthF::kAuto);
void logf(std::span<const float> in, std::span<float> out, WidthF w = WidthF::kAuto);
void erff(std::span<const float> in, std::span<float> out, WidthF w = WidthF::kAuto);
void cndf(std::span<const float> in, std::span<float> out, WidthF w = WidthF::kAuto);

}  // namespace finbench::vecmath
