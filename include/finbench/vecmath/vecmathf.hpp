// finbench/vecmath/vecmathf.hpp
//
// Single-precision vector transcendentals for the SP kernel variants
// (Table I quotes separate SP peaks; SP doubles the SIMD lane count).
// Same structure as the double kernels, with float-appropriate polynomial
// degrees:
//
//   expf — Cody–Waite + degree-6 polynomial, <= 2 ulp over [-87, 88]
//   logf — exponent split + atanh series, <= 2 ulp
//   erff — rational approximation (|x|<=2: expf-free polynomial blend;
//          tails via expf), ~5e-7 absolute
//   cndf — normal CDF via erff

#pragma once

#include <limits>

#include "finbench/simd/vecf.hpp"

namespace finbench::vecmath {

namespace detailf {

inline constexpr float kLog2Ef = 1.44269504088896341f;
inline constexpr float kLn2Hif = 0.693359375f;
inline constexpr float kLn2Lof = -2.12194440e-4f;
inline constexpr float kExpOverflowF = 88.3762626647950f;
inline constexpr float kExpUnderflowF = -87.3365478515625f;
inline constexpr float kSqrt2f = 1.41421356237f;

}  // namespace detailf

template <class VF> inline VF expf(VF x) {
  using namespace detailf;
  using M = typename VF::mask_type;

  const M too_big = x > VF(kExpOverflowF);
  const M too_small = x < VF(kExpUnderflowF);

  VF n = round_nearest(x * VF(kLog2Ef));
  VF r = fnmadd(n, VF(kLn2Hif), x);
  r = fnmadd(n, VF(kLn2Lof), r);

  // Degree-6 polynomial (coefficients 1/k!): |r| <= ln2/2 -> ~1e-8 rel.
  VF p = VF(1.0f / 5040.0f);
  p = fmadd(p, r, VF(1.0f / 720.0f));
  p = fmadd(p, r, VF(1.0f / 120.0f));
  p = fmadd(p, r, VF(1.0f / 24.0f));
  p = fmadd(p, r, VF(1.0f / 6.0f));
  p = fmadd(p, r, VF(0.5f));
  p = fmadd(p, r, VF(1.0f));
  p = fmadd(p, r, VF(1.0f));

  n = min(max(n, VF(-126.0f)), VF(127.0f));
  VF result = p * simd::pow2n_f(n);
  result = select(too_big, VF(std::numeric_limits<float>::infinity()), result);
  result = select(too_small, VF(0.0f), result);
  result = select(x != x, x, result);
  return result;
}

template <class VF> inline VF logf(VF x) {
  using namespace detailf;
  using M = typename VF::mask_type;

  const M not_pos = !(x > VF(0.0f));
  const M is_inf = x == VF(std::numeric_limits<float>::infinity());

  VF m, e;
  simd::split_exponent_f(x, m, e);
  const M upper = m > VF(kSqrt2f);
  m = select(upper, m * VF(0.5f), m);
  e = select(upper, e + VF(1.0f), e);

  const VF s = (m - VF(1.0f)) / (m + VF(1.0f));
  const VF z = s * s;
  VF p = VF(2.0f / 11.0f);
  p = fmadd(p, z, VF(2.0f / 9.0f));
  p = fmadd(p, z, VF(2.0f / 7.0f));
  p = fmadd(p, z, VF(2.0f / 5.0f));
  p = fmadd(p, z, VF(2.0f / 3.0f));
  VF log_m = fmadd(p * z, s, s + s);

  VF result = fmadd(e, VF(kLn2Hif), fmadd(e, VF(kLn2Lof), log_m));
  result = select(is_inf, x, result);
  result = select(x == VF(0.0f), VF(-std::numeric_limits<float>::infinity()), result);
  result = select(not_pos & !(x == VF(0.0f)), VF(std::numeric_limits<float>::quiet_NaN()),
                  result);
  return result;
}

// erf via the Abramowitz–Stegun 7.1.26 rational (max error 1.5e-7,
// i.e. full single precision), vectorized branch-free.
template <class VF> inline VF erff(VF x) {
  const VF ax = abs(x);
  const VF t = VF(1.0f) / fmadd(VF(0.3275911f), ax, VF(1.0f));
  VF poly = VF(1.061405429f);
  poly = fmadd(poly, t, VF(-1.453152027f));
  poly = fmadd(poly, t, VF(1.421413741f));
  poly = fmadd(poly, t, VF(-0.284496736f));
  poly = fmadd(poly, t, VF(0.254829592f));
  const VF e = expf(-(ax * ax));
  VF r = fnmadd(poly * t, e, VF(1.0f));
  // Restore sign.
  r = select(x < VF(0.0f), -r, r);
  return r;
}

// Standard normal CDF, single precision.
template <class VF> inline VF cndf(VF x) {
  constexpr float kInvSqrt2f = 0.70710678118654752440f;
  return fmadd(erff(x * VF(kInvSqrt2f)), VF(0.5f), VF(0.5f));
}

}  // namespace finbench::vecmath
