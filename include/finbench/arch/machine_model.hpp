// finbench/arch/machine_model.hpp
//
// Analytical machine models + roofline performance bounds.
//
// The paper evaluates on two 2012 platforms (Table I): the Xeon E5-2680
// "SNB-EP" and the Xeon Phi "KNC". Neither is obtainable today, so this
// library reproduces the paper's *cross-platform claims* through a
// substitution documented in DESIGN.md §1:
//
//   1. Each kernel runs natively on the host at 4-wide (SNB-EP-class AVX)
//      and 8-wide (KNC-class 512-bit) SIMD, at every optimization level.
//   2. The measured fraction of the host roofline ("efficiency") at each
//      level is combined with the modeled SNB-EP / KNC rooflines below to
//      project platform throughput — exactly the style of argument the
//      paper itself makes ("84% of the bandwidth bound", "commensurate
//      with the difference in peak flops").
//
// The models carry the paper's Table I numbers verbatim.

#pragma once

#include <string>

namespace finbench::arch {

struct MachineModel {
  std::string name;
  int sockets = 1;
  int cores = 1;           // physical cores per socket
  int smt = 1;             // hardware threads per core
  double ghz = 1.0;
  int simd_dp = 1;         // double-precision SIMD lanes
  double dp_gflops = 1.0;  // peak double-precision GFLOP/s (whole machine)
  double sp_gflops = 1.0;  // peak single-precision GFLOP/s
  double bw_gbs = 1.0;     // STREAM bandwidth, GB/s
  double l1_kb = 32, l2_kb = 256, l3_kb = 0;  // per-core L1/L2; shared L3

  int total_cores() const { return sockets * cores; }
  int total_threads() const { return sockets * cores * smt; }
};

// Table I: Intel Xeon E5-2680, 2 x 8 cores @ 2.7 GHz, AVX (4-wide DP).
MachineModel snb_ep();

// Table I: Intel Xeon Phi (Knights Corner), 60 cores @ 1.09 GHz, 8-wide DP.
MachineModel knc();

// The machine this binary is running on: cpuid + sysfs detection; peak
// flops derived from frequency x lanes x 2 (FMA) x 2 ports; bandwidth
// filled in from the mini-STREAM measurement (see stream_bandwidth_gbs).
MachineModel host();

// Measured STREAM-triad bandwidth of the host in GB/s (memoized; the first
// call runs the measurement, ~0.5 s).
double stream_bandwidth_gbs();

// ---------------------------------------------------------------------------
// Roofline bounds
// ---------------------------------------------------------------------------

// Throughput bound (items/second) for a kernel that performs
// `flops_per_item` double-precision operations and moves `bytes_per_item`
// to/from DRAM per item, on machine `m`.
struct RooflineBound {
  double compute_items_per_sec;
  double bandwidth_items_per_sec;
  bool compute_bound;  // true if the compute roof is the lower one
  double items_per_sec() const {
    return compute_bound ? compute_items_per_sec : bandwidth_items_per_sec;
  }
};

RooflineBound roofline(const MachineModel& m, double flops_per_item, double bytes_per_item);

// Project a kernel's throughput on machine `m` from a measured efficiency
// (fraction of the host's roofline achieved): the DESIGN.md §1 substitution.
double project_items_per_sec(const MachineModel& m, double efficiency, double flops_per_item,
                             double bytes_per_item);

}  // namespace finbench::arch
