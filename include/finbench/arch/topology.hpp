// finbench/arch/topology.hpp
//
// Host CPU detection: ISA features via cpuid, cache sizes via sysfs.
// Feeds Table I reproduction (bench/tab1_sysconfig) and the host machine
// model used for roofline efficiency measurements.

#pragma once

#include <cstdint>
#include <string>

namespace finbench::arch {

struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  bool avx512dq = false;
  std::string brand;  // cpuid brand string, e.g. "Intel(R) Xeon(R) ..."
};

CpuFeatures detect_cpu_features();

struct CacheInfo {
  // Bytes; 0 when a level does not exist / cannot be detected.
  std::size_t l1d = 0;
  std::size_t l2 = 0;
  std::size_t l3 = 0;
};

CacheInfo detect_caches();

// Logical CPUs visible to this process.
int logical_cpus();

// Best-effort current nominal frequency in GHz (from cpuinfo; 0 if unknown).
double cpu_ghz();

}  // namespace finbench::arch
