// finbench/arch/timing.hpp
//
// Wall-clock timing and repeat-measurement helpers used by the benchmark
// harness. Kernel throughput is reported from the best of R repetitions
// (minimum wall time), the convention the paper's figures use.

#pragma once

#include <chrono>
#include <cstdint>
#include <utility>

namespace finbench::arch {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Run `fn` `reps` times; return the minimum wall-clock seconds per run.
template <class F>
double best_of(int reps, F&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    fn();
    const double s = t.seconds();
    if (s < best) best = s;
  }
  return best;
}

// Defeat dead-code elimination of a computed value.
template <class T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

}  // namespace finbench::arch
