// finbench/arch/timing.hpp
//
// Wall-clock timing and repeat-measurement helpers used by the benchmark
// harness. Kernel throughput is reported from the best of R repetitions
// (minimum wall time), the convention the paper's figures use.

#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <ctime>
#include <utility>

namespace finbench::arch {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

// Per-thread CPU time. Unlike wall time, this is immune to core
// oversubscription (N runnable threads on one core all accrue wall time
// but split CPU time), so it is the right basis for the engine thread
// pool's load-imbalance metric. Falls back to wall time where
// CLOCK_THREAD_CPUTIME_ID is unavailable.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(now()) {}
  void reset() { start_ = now(); }
  double seconds() const { return now() - start_; }

 private:
  static double now() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
    }
#endif
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  double start_;
};

// Per-run wall-clock statistics over R repetitions. The headline number
// stays best-of (the paper's convention — least-disturbed run), but mean
// and stddev travel alongside so the harness can flag noisy measurements
// (rel_stddev() > 10%) instead of silently reporting an unstable best.
struct RepStats {
  double best = 0.0;    // minimum seconds per run
  double mean = 0.0;
  double stddev = 0.0;  // sample stddev (n-1); 0 when reps < 2
  int reps = 0;

  double rel_stddev() const { return mean > 0.0 ? stddev / mean : 0.0; }
};

// Run `fn` `reps` times; return best/mean/stddev wall-clock seconds.
template <class F>
RepStats measure(int reps, F&& fn) {
  RepStats st;
  st.reps = reps < 1 ? 1 : reps;
  double sum = 0.0, sumsq = 0.0, best = 1e300;
  for (int r = 0; r < st.reps; ++r) {
    WallTimer t;
    fn();
    const double s = t.seconds();
    if (s < best) best = s;
    sum += s;
    sumsq += s * s;
  }
  st.best = best;
  st.mean = sum / st.reps;
  if (st.reps > 1) {
    const double var = (sumsq - sum * sum / st.reps) / (st.reps - 1);
    st.stddev = var > 0.0 ? std::sqrt(var) : 0.0;
  }
  return st;
}

// Run `fn` `reps` times; return the minimum wall-clock seconds per run.
template <class F>
double best_of(int reps, F&& fn) {
  return measure(reps, static_cast<F&&>(fn)).best;
}

// Defeat dead-code elimination of a computed value.
template <class T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

}  // namespace finbench::arch
