// finbench/arch/aligned.hpp
//
// Cache-line / vector-register aligned storage. All kernel working arrays
// use 64-byte alignment so aligned SIMD loads/stores and streaming stores
// are always legal, matching the paper's data-layout assumptions.

#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

namespace finbench::arch {

inline constexpr std::size_t kCacheLineBytes = 64;

// Minimal aligned allocator for std::vector.
template <class T, std::size_t Align = kCacheLineBytes>
struct AlignedAllocator {
  using value_type = T;
  // Required explicitly: the non-type Align parameter defeats the
  // allocator_traits automatic rebind.
  template <class U> struct rebind { using other = AlignedAllocator<U, Align>; };

  AlignedAllocator() = default;
  template <class U> AlignedAllocator(const AlignedAllocator<U, Align>&) {}

  // Routed through aligned operator new (not std::aligned_alloc) so that
  // allocation-counting tests which override the global operator new — the
  // zero-steady-state-allocation proof in tests/test_engine_alloc.cpp —
  // observe AlignedVector traffic too.
  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(round_up(n * sizeof(T)), std::align_val_t{Align});
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <class U> bool operator==(const AlignedAllocator<U, Align>&) const { return true; }

 private:
  static std::size_t round_up(std::size_t bytes) {
    return (bytes + Align - 1) / Align * Align;
  }
};

// The workhorse container for kernel arrays.
template <class T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace finbench::arch
