// finbench/arch/parallel.hpp
//
// Thin OpenMP wrappers. The paper's thread-level parallelism is always
// "#pragma omp parallel for over options / paths"; these helpers keep that
// idiom in one place and make the thread count queryable and overridable.
//
// When obs::parallel_timing_enabled() (bench binaries: --trace/--json),
// each worker's wall time inside the loop is measured with the implicit
// end-of-loop barrier excluded (`nowait`), so per-thread load imbalance is
// visible in the metrics registry ("parallel.<site>.imbalance") and each
// worker contributes a span to the trace. The untimed fast path is the
// original pragma, guarded by one relaxed atomic load per call.

#pragma once

#include <cstddef>

#include <omp.h>

#include "finbench/arch/timing.hpp"
#include "finbench/obs/metrics.hpp"
#include "finbench/obs/trace.hpp"

namespace finbench::arch {

inline int num_threads() {
  int n = 1;
#pragma omp parallel
  {
#pragma omp single
    n = omp_get_num_threads();
  }
  return n;
}

// Static-schedule parallel loop over [0, n).
template <class F>
void parallel_for(std::ptrdiff_t n, F&& fn) {
  if (!obs::parallel_timing_enabled()) {
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = 0; i < n; ++i) fn(i);
    return;
  }
  double tmin = 1e300, tmax = 0.0, tsum = 0.0;
  int nthreads = 0;
#pragma omp parallel reduction(min : tmin) reduction(max : tmax) reduction(+ : tsum, nthreads)
  {
    FINBENCH_SPAN("parallel_for");
    WallTimer t;
#pragma omp for schedule(static) nowait
    for (std::ptrdiff_t i = 0; i < n; ++i) fn(i);
    const double s = t.seconds();
    tmin = s;
    tmax = s;
    tsum = s;
    nthreads = 1;
  }
  obs::record_parallel_region("for", nthreads, tmin, tmax, tsum);
}

// Parallel loop in fixed-size blocks: fn(begin, end) per block. Used when
// each thread needs private scratch sized to its block.
template <class F>
void parallel_for_blocked(std::ptrdiff_t n, std::ptrdiff_t block, F&& fn) {
  const std::ptrdiff_t nblocks = (n + block - 1) / block;
  auto body = [&](std::ptrdiff_t b) {
    const std::ptrdiff_t begin = b * block;
    const std::ptrdiff_t end = begin + block < n ? begin + block : n;
    fn(begin, end);
  };
  if (!obs::parallel_timing_enabled()) {
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t b = 0; b < nblocks; ++b) body(b);
    return;
  }
  double tmin = 1e300, tmax = 0.0, tsum = 0.0;
  int nthreads = 0;
#pragma omp parallel reduction(min : tmin) reduction(max : tmax) reduction(+ : tsum, nthreads)
  {
    FINBENCH_SPAN("parallel_for_blocked");
    WallTimer t;
#pragma omp for schedule(static) nowait
    for (std::ptrdiff_t b = 0; b < nblocks; ++b) body(b);
    const double s = t.seconds();
    tmin = s;
    tmax = s;
    tsum = s;
    nthreads = 1;
  }
  obs::record_parallel_region("for_blocked", nthreads, tmin, tmax, tsum);
}

}  // namespace finbench::arch
