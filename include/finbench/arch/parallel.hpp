// finbench/arch/parallel.hpp
//
// Thin OpenMP wrappers. The paper's thread-level parallelism is always
// "#pragma omp parallel for over options / paths"; these helpers keep that
// idiom in one place and make the thread count queryable and overridable.

#pragma once

#include <cstddef>

#include <omp.h>

namespace finbench::arch {

inline int num_threads() {
  int n = 1;
#pragma omp parallel
  {
#pragma omp single
    n = omp_get_num_threads();
  }
  return n;
}

// Static-schedule parallel loop over [0, n).
template <class F>
void parallel_for(std::ptrdiff_t n, F&& fn) {
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < n; ++i) fn(i);
}

// Parallel loop in fixed-size blocks: fn(begin, end) per block. Used when
// each thread needs private scratch sized to its block.
template <class F>
void parallel_for_blocked(std::ptrdiff_t n, std::ptrdiff_t block, F&& fn) {
  const std::ptrdiff_t nblocks = (n + block - 1) / block;
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t b = 0; b < nblocks; ++b) {
    const std::ptrdiff_t begin = b * block;
    const std::ptrdiff_t end = begin + block < n ? begin + block : n;
    fn(begin, end);
  }
}

}  // namespace finbench::arch
