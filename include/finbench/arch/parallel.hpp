// finbench/arch/parallel.hpp
//
// Thin OpenMP wrappers. The paper's thread-level parallelism is always
// "#pragma omp parallel for over options / paths"; these helpers keep that
// idiom in one place and make the thread count queryable and overridable.
//
// Two schedules are offered. kStatic is the original per-call
// schedule(static) pragma. kDynamic replaces the OpenMP scheduler with an
// atomic ticket counter over fixed-size chunks, so threads that finish
// cheap iterations early keep pulling work — the mode the finbench::engine
// layer builds on for heterogeneous option batches (a long-dated lattice
// option costs orders of magnitude more than a short-dated one).
//
// When obs::parallel_timing_enabled() (bench binaries: --trace/--json),
// each worker's wall time inside the loop is measured with the implicit
// end-of-loop barrier excluded (`nowait` / ticket exhaustion), so
// per-thread load imbalance is visible in the metrics registry
// ("parallel.<site>.imbalance") and each worker contributes a span to the
// trace. The untimed fast path is the original pragma, guarded by one
// relaxed atomic load per call.

#pragma once

#include <atomic>
#include <cstddef>

#include <omp.h>

#include "finbench/arch/timing.hpp"
#include "finbench/obs/metrics.hpp"
#include "finbench/obs/trace.hpp"

namespace finbench::arch {

enum class Schedule {
  kStatic,   // contiguous equal-count stripes, one per thread
  kDynamic,  // atomic-ticket chunk self-scheduling
};

namespace detail {

inline std::atomic<int>& cached_num_threads() {
  static std::atomic<int> v{0};  // 0 = not yet detected
  return v;
}

inline int detect_num_threads() {
  int n = 1;
#pragma omp parallel
  {
#pragma omp single
    n = omp_get_num_threads();
  }
  return n;
}

}  // namespace detail

// Effective OpenMP team size. Detection spins up a full parallel region,
// far too expensive per call (bench_common queries this once per
// measurement repetition), so the result is cached after the first call;
// set_num_threads() keeps the cache coherent with override requests.
inline int num_threads() {
  int n = detail::cached_num_threads().load(std::memory_order_relaxed);
  if (n > 0) return n;
  n = detail::detect_num_threads();
  detail::cached_num_threads().store(n, std::memory_order_relaxed);
  return n;
}

// Override the OpenMP team size (the --threads N flag). n <= 0 is ignored.
inline void set_num_threads(int n) {
  if (n <= 0) return;
  omp_set_num_threads(n);
  detail::cached_num_threads().store(n, std::memory_order_relaxed);
}

// Chunk size for the dynamic ticket loop: ~8 chunks per thread keeps
// ticket contention negligible while still smoothing skewed iteration
// costs.
inline std::ptrdiff_t dynamic_chunk(std::ptrdiff_t n, int nthreads) {
  const std::ptrdiff_t target = nthreads > 0 ? static_cast<std::ptrdiff_t>(nthreads) * 8 : 8;
  const std::ptrdiff_t c = (n + target - 1) / target;
  return c > 0 ? c : 1;
}

namespace detail {

// One OpenMP team executing `loop()` per thread, with optional per-thread
// wall timing into "parallel.<site>.*". `loop` must itself partition the
// iteration space (omp for, or a shared ticket).
template <class Loop>
void run_team(const char* site, Loop&& loop) {
  if (!obs::parallel_timing_enabled()) {
#pragma omp parallel
    loop();
    return;
  }
  double tmin = 1e300, tmax = 0.0, tsum = 0.0;
  int nthreads = 0;
#pragma omp parallel reduction(min : tmin) reduction(max : tmax) reduction(+ : tsum, nthreads)
  {
    FINBENCH_SPAN(site);
    WallTimer t;
    loop();
    const double s = t.seconds();
    tmin = s;
    tmax = s;
    tsum = s;
    nthreads = 1;
  }
  obs::record_parallel_region(site, nthreads, tmin, tmax, tsum);
}

}  // namespace detail

// Parallel loop over [0, n) at the requested schedule.
template <class F>
void parallel_for(std::ptrdiff_t n, F&& fn, Schedule sched = Schedule::kStatic) {
  if (sched == Schedule::kDynamic) {
    std::atomic<std::ptrdiff_t> ticket{0};
    const std::ptrdiff_t chunk = dynamic_chunk(n, num_threads());
    detail::run_team("for.dynamic", [&] {
      std::ptrdiff_t begin;
      while ((begin = ticket.fetch_add(chunk, std::memory_order_relaxed)) < n) {
        const std::ptrdiff_t end = begin + chunk < n ? begin + chunk : n;
        for (std::ptrdiff_t i = begin; i < end; ++i) fn(i);
      }
    });
    return;
  }
  detail::run_team("for", [&] {
#pragma omp for schedule(static) nowait
    for (std::ptrdiff_t i = 0; i < n; ++i) fn(i);
  });
}

// Parallel loop in fixed-size blocks: fn(begin, end) per block. Used when
// each thread needs private scratch sized to its block.
template <class F>
void parallel_for_blocked(std::ptrdiff_t n, std::ptrdiff_t block, F&& fn,
                          Schedule sched = Schedule::kStatic) {
  const std::ptrdiff_t nblocks = (n + block - 1) / block;
  auto body = [&](std::ptrdiff_t b) {
    const std::ptrdiff_t begin = b * block;
    const std::ptrdiff_t end = begin + block < n ? begin + block : n;
    fn(begin, end);
  };
  if (sched == Schedule::kDynamic) {
    std::atomic<std::ptrdiff_t> ticket{0};
    detail::run_team("for_blocked.dynamic", [&] {
      std::ptrdiff_t b;
      while ((b = ticket.fetch_add(1, std::memory_order_relaxed)) < nblocks) body(b);
    });
    return;
  }
  detail::run_team("for_blocked", [&] {
#pragma omp for schedule(static) nowait
    for (std::ptrdiff_t b = 0; b < nblocks; ++b) body(b);
  });
}

}  // namespace finbench::arch
