// finbench/engine/request.hpp
//
// The uniform request/result vocabulary of the pricing engine: one
// PricingRequest describes a workload (a portfolio of OptionSpecs, a
// Black–Scholes batch, or a path-construction job), the accuracy knobs the
// kernels consume, and how the engine may schedule the work; one
// PricingResult carries the per-item outputs and timing. Every kernel
// variant in the registry (finbench/engine/registry.hpp) prices through
// this interface.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "finbench/arch/parallel.hpp"
#include "finbench/core/option.hpp"

namespace finbench::engine {

// Per-request derived data the adapters cache across repetitions (normal
// streams, lane-blocked layouts, path buffers). Created lazily on first
// use; defined in src/engine/. A request object must not be priced from
// two threads at once (the engine itself parallelizes *inside* one
// request).
struct Scratch;

struct PricingRequest {
  // Registry id of the variant to run, e.g. "bs.intermediate.avx2".
  std::string kernel_id;

  // --- Workload: exactly one of these forms, matching the variant's
  // required Layout (the engine rejects mismatches). -----------------------
  std::span<const core::OptionSpec> specs{};  // lattice / PDE / MC kernels
  core::BsBatchAos* bs_aos = nullptr;         // Black–Scholes AOS variants
  core::BsBatchSoa* bs_soa = nullptr;         // Black–Scholes SOA variants
  core::BsBatchSoaF* bs_sp = nullptr;         // single-precision BS variant
  std::size_t npaths = 0;                     // Brownian-bridge construction

  // --- Accuracy knobs ------------------------------------------------------
  int steps = 1024;          // binomial lattice depth / CN time steps
  int steps_per_year = 0;    // > 0: per-option binomial depth = T * this
                             // (heterogeneous batches; scalar execution)
  std::size_t npath = 16384; // Monte Carlo paths per option
  int bridge_depth = 6;      // Brownian bridge depth (2^D steps)
  int cn_num_prices = 257;   // CN spatial grid points
  std::uint64_t seed = 42;   // RNG seed (deterministic workloads)

  // --- Scheduling (engine execution only; direct run_batch dispatch keeps
  // each kernel's native OpenMP structure) ----------------------------------
  arch::Schedule schedule = arch::Schedule::kDynamic;
  int chunks_per_thread = 8;  // dynamic chunk granularity target

  // Adapter-owned cache; reused across repeated pricings of this request.
  mutable std::shared_ptr<Scratch> scratch;
};

struct PricingResult {
  bool ok = false;
  std::string error;       // empty on success
  std::string kernel_id;

  std::size_t items = 0;   // options priced / paths constructed
  double seconds = 0.0;    // wall time inside the engine (0 for run_batch
                           // dispatched directly by benchmarks)

  // Per-item outputs. Black–Scholes variants write prices into the
  // request's batch arrays instead (copying millions of outputs would
  // distort the bandwidth-bound kernel), leaving `values` empty.
  std::vector<double> values;
  std::vector<double> std_errors;  // Monte Carlo variants only

  double items_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(items) / seconds : 0.0;
  }
};

}  // namespace finbench::engine
