// finbench/engine/request.hpp
//
// The uniform request/result vocabulary of the pricing engine: one
// PricingRequest describes a workload — a single layout-tagged
// core::PortfolioView — plus the accuracy knobs the kernels consume and
// how the engine may schedule the work; one PricingResult carries the
// per-item outputs, timing, and the layout-negotiation cost. Every kernel
// variant in the registry (finbench/engine/registry.hpp) prices through
// this interface.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "finbench/arch/parallel.hpp"
#include "finbench/core/portfolio.hpp"
#include "finbench/resilience/brownout.hpp"
#include "finbench/resilience/retry.hpp"
#include "finbench/robust/deadline.hpp"
#include "finbench/robust/fault.hpp"
#include "finbench/robust/guards.hpp"
#include "finbench/robust/sanitize.hpp"
#include "finbench/robust/status.hpp"

namespace finbench::engine {

// Per-request derived data the adapters cache across repetitions (normal
// streams, lane-blocked layouts, result buffers, the layout-negotiation
// arena). Created lazily on first use; defined in src/engine/. A request
// object must not be priced from two threads at once (the engine itself
// parallelizes *inside* one request).
struct Scratch;

// Intra-option task parallelism (engine/task_group.hpp): whether expensive
// options may decompose into nested fork-join tasks inside their chunk.
// kAuto defers to the tuner (which races tasked vs. flat execution under
// auto dispatch) or a threads > 1 heuristic for explicit kernel ids.
enum class TaskMode : int { kAuto = -1, kOff = 0, kOn = 1 };

struct PricingRequest {
  // Registry id of the variant to run, e.g. "bs.intermediate.avx2".
  std::string kernel_id;

  // --- Workload: one layout-tagged view (core::view_of / core::Portfolio).
  // When the view's layout differs from the variant's required layout and
  // the pair is core::convertible, the engine negotiates: it converts once
  // into the request's arena, reuses the converted buffer across repeated
  // pricings, copies outputs back after each run, and reports the one-time
  // conversion cost in the result. ---------------------------------------
  core::PortfolioView portfolio{};

  // --- Accuracy knobs ------------------------------------------------------
  int steps = 1024;          // binomial lattice depth / CN time steps
  int steps_per_year = 0;    // > 0: per-option binomial depth = T * this
                             // (heterogeneous batches; scalar execution)
  std::size_t npath = 16384; // Monte Carlo paths per option
  int bridge_depth = 6;      // Brownian bridge depth (2^D steps)
  int cn_num_prices = 257;   // CN spatial grid points
  std::uint64_t seed = 42;   // RNG seed (deterministic workloads)

  // --- Scheduling (engine execution only; direct run_batch dispatch keeps
  // each kernel's native OpenMP structure) ----------------------------------
  // Under `auto` dispatch (kernel_id = "<family>.auto", e.g.
  // "blackscholes.auto") these are *defaults the tuner may override*: the
  // resolved DispatchPlan's schedule / chunks_per_thread win unless the
  // matching pin below is set. Concrete kernel_ids use them verbatim.
  arch::Schedule schedule = arch::Schedule::kDynamic;
  int chunks_per_thread = 8;  // dynamic chunk granularity target
  TaskMode tasks = TaskMode::kAuto;  // intra-option fork-join tasks

  // Pins: the caller insists on the value above even under auto dispatch.
  // The tuner still races the full grid and bumps engine.tune.pinned_losing
  // (once per key) when the pinned choice loses the tuned one by >10%.
  bool pin_schedule = false;
  bool pin_chunks = false;

  // --- Robustness (finbench/robust; docs/robustness.md) --------------------
  // Input sanitization policy. The default masks faulty options out
  // (their outputs come back as quiet NaN with a per-option fault mask)
  // instead of letting one poisoned record take down the batch; kOff is
  // the raw-benchmark mode with the exact pre-robustness behavior.
  robust::SanitizePolicy sanitize = robust::SanitizePolicy::kSkip;

  // Post-kernel output guardrails; failing chunks are re-priced through
  // the variant's fallback chain when `fallback` is set.
  robust::GuardPolicy guard{};
  bool fallback = true;

  // Cooperative deadline, polled at chunk boundaries: > 0 arms a
  // per-request deadline of that many seconds; `cancel` (optional,
  // caller-owned, must outlive the call) lets a client revoke the request
  // from another thread. Either trigger yields partial results with
  // per-chunk status rather than an abort.
  double deadline_seconds = 0.0;
  const robust::CancelToken* cancel = nullptr;

  // Deterministic engine-side fault injection (tests, CI smoke runs):
  // corrupt outputs, throw in chunks, slow chunks down. Input poisoning
  // (FaultPlan::poison) is applied by whoever owns the workload — see
  // robust::inject_input_faults. Never active during fallback repricing,
  // and never scored by the circuit breakers (a request-level injected
  // fault is test machinery, not variant health).
  robust::FaultPlan faults{};

  // --- Resilience (finbench/resilience; docs/resilience.md) ----------------
  // Serve-layer retry opt-in: max_attempts > 1 lets the dispatcher retry
  // kKernelError / kResourceExhausted outcomes with decorrelated-jitter
  // backoff, subject to the server's global retry budget. Ignored by a
  // direct Engine::price call (the engine itself never retries).
  resilience::RetryPolicy retry{};

  // Brownout opt-in: how far the serve dispatcher may degrade this
  // request's accuracy knobs under overload, and its shedding priority.
  // The defaults forbid any degradation.
  resilience::DegradePolicy degrade{};

  // Adapter-owned cache; reused across repeated pricings of this request.
  mutable std::shared_ptr<Scratch> scratch;
};

// Per-chunk outcome of one engine execution (PricingResult::chunk_status).
// kNotRun chunks were never started — after a deadline expiry or a
// non-recoverable failure they are what distinguishes "missing" from
// "wrong".
enum class ChunkStatus : std::uint8_t {
  kNotRun = 0,
  kOk = 1,        // priced by the requested variant, guard clean
  kDegraded = 2,  // quarantined and re-priced through the fallback chain
  kFailed = 3,    // failed and no fallback link could repair it
  kDeadline = 4,  // skipped because the deadline/cancel token expired
};

constexpr std::string_view to_string(ChunkStatus s) {
  switch (s) {
    case ChunkStatus::kNotRun: return "not_run";
    case ChunkStatus::kOk: return "ok";
    case ChunkStatus::kDegraded: return "degraded";
    case ChunkStatus::kFailed: return "failed";
    case ChunkStatus::kDeadline: return "deadline";
  }
  return "?";
}

struct PricingResult {
  // Legacy success flag and message, kept in lockstep with `status`:
  // ok == status.ok() (true for kOk *and* kDegraded) and error ==
  // status.to_string() when not clean. New code should read `status`.
  bool ok = false;
  std::string error;       // empty on success
  std::string kernel_id;

  // Concrete variant the request resolved to. Equal to kernel_id for
  // explicit dispatch; under auto dispatch it is the plan's variant id and
  // `tuned` is true (kernel_id keeps the caller's intent id).
  std::string resolved_id;
  bool tuned = false;

  // Structured outcome of the robust pricing path (finbench/robust).
  robust::Status status{};

  // Process-unique id of this engine execution, stamped into every
  // flight-recorder record the run produced — the join key between a
  // PricingResult and the `records` of a flight dump.
  std::uint64_t request_id = 0;

  std::size_t items = 0;   // options priced / paths constructed
  double seconds = 0.0;    // wall time inside the engine, including the
                           // per-repetition output writeback after a
                           // negotiated-layout run (0 for run_batch
                           // dispatched directly by benchmarks)

  // Layout negotiation: the layout the kernel actually executed on, and
  // the one-time cost of converting the request's portfolio into it
  // (0 / 0 when the request already matched). The conversion is cached in
  // the request Scratch, so repeated pricings report the same one-time
  // cost rather than paying it again.
  core::Layout layout = core::Layout::kSpecs;
  double convert_seconds = 0.0;
  std::size_t convert_bytes = 0;

  // Per-item outputs. Black–Scholes variants write prices into the
  // request's portfolio arrays instead (copying millions of outputs would
  // distort the bandwidth-bound kernel), leaving `values` empty.
  std::vector<double> values;
  std::vector<double> std_errors;  // Monte Carlo variants only

  // --- Robustness detail (empty / zero on a clean, un-degraded run) --------
  // Sanitizer verdict per option (robust::OptionFault bits); empty when
  // every input was clean. An option with kFaultSkipped set has quiet NaN
  // outputs by design.
  std::vector<std::uint8_t> option_faults;

  // Outcome per engine chunk, aligned with the run's chunk partition;
  // empty for whole-batch (single-chunk) execution, where `status` alone
  // tells the story. Partial results after a deadline: kDeadline/kNotRun
  // chunks hold unpriced items.
  std::vector<std::uint8_t> chunk_status;  // ChunkStatus values

  std::size_t options_clamped = 0;   // sanitizer repaired in place / in copy
  std::size_t options_skipped = 0;   // sanitizer masked out (NaN outputs)
  std::size_t options_repaired = 0;  // guard repaired via scalar reference
  std::size_t chunks_degraded = 0;   // re-priced through the fallback chain
  std::size_t chunks_failed = 0;     // unrecoverable
  std::size_t chunks_deadline = 0;   // skipped at deadline/cancellation

  // --- Resilience detail (serve-layer; zero on a direct engine call) -------
  // Brownout ladder level the dispatcher applied to this request (0 =
  // none) and the accuracy knobs that actually executed when degraded
  // (0 = as requested). A browned-out result is at least kDegraded.
  int brownout_level = 0;
  std::size_t npath_applied = 0;
  int steps_applied = 0;
  // Dispatch attempts the serve retry layer made (1 = no retries).
  int attempts = 1;

  double items_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(items) / seconds : 0.0;
  }
};

}  // namespace finbench::engine
