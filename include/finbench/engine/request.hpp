// finbench/engine/request.hpp
//
// The uniform request/result vocabulary of the pricing engine: one
// PricingRequest describes a workload — a single layout-tagged
// core::PortfolioView — plus the accuracy knobs the kernels consume and
// how the engine may schedule the work; one PricingResult carries the
// per-item outputs, timing, and the layout-negotiation cost. Every kernel
// variant in the registry (finbench/engine/registry.hpp) prices through
// this interface.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "finbench/arch/parallel.hpp"
#include "finbench/core/portfolio.hpp"

namespace finbench::engine {

// Per-request derived data the adapters cache across repetitions (normal
// streams, lane-blocked layouts, result buffers, the layout-negotiation
// arena). Created lazily on first use; defined in src/engine/. A request
// object must not be priced from two threads at once (the engine itself
// parallelizes *inside* one request).
struct Scratch;

struct PricingRequest {
  // Registry id of the variant to run, e.g. "bs.intermediate.avx2".
  std::string kernel_id;

  // --- Workload: one layout-tagged view (core::view_of / core::Portfolio).
  // When the view's layout differs from the variant's required layout and
  // the pair is core::convertible, the engine negotiates: it converts once
  // into the request's arena, reuses the converted buffer across repeated
  // pricings, copies outputs back after each run, and reports the one-time
  // conversion cost in the result. ---------------------------------------
  core::PortfolioView portfolio{};

  // --- Accuracy knobs ------------------------------------------------------
  int steps = 1024;          // binomial lattice depth / CN time steps
  int steps_per_year = 0;    // > 0: per-option binomial depth = T * this
                             // (heterogeneous batches; scalar execution)
  std::size_t npath = 16384; // Monte Carlo paths per option
  int bridge_depth = 6;      // Brownian bridge depth (2^D steps)
  int cn_num_prices = 257;   // CN spatial grid points
  std::uint64_t seed = 42;   // RNG seed (deterministic workloads)

  // --- Scheduling (engine execution only; direct run_batch dispatch keeps
  // each kernel's native OpenMP structure) ----------------------------------
  arch::Schedule schedule = arch::Schedule::kDynamic;
  int chunks_per_thread = 8;  // dynamic chunk granularity target

  // Adapter-owned cache; reused across repeated pricings of this request.
  mutable std::shared_ptr<Scratch> scratch;
};

struct PricingResult {
  bool ok = false;
  std::string error;       // empty on success
  std::string kernel_id;

  std::size_t items = 0;   // options priced / paths constructed
  double seconds = 0.0;    // wall time inside the engine, including the
                           // per-repetition output writeback after a
                           // negotiated-layout run (0 for run_batch
                           // dispatched directly by benchmarks)

  // Layout negotiation: the layout the kernel actually executed on, and
  // the one-time cost of converting the request's portfolio into it
  // (0 / 0 when the request already matched). The conversion is cached in
  // the request Scratch, so repeated pricings report the same one-time
  // cost rather than paying it again.
  core::Layout layout = core::Layout::kSpecs;
  double convert_seconds = 0.0;
  std::size_t convert_bytes = 0;

  // Per-item outputs. Black–Scholes variants write prices into the
  // request's portfolio arrays instead (copying millions of outputs would
  // distort the bandwidth-bound kernel), leaving `values` empty.
  std::vector<double> values;
  std::vector<double> std_errors;  // Monte Carlo variants only

  double items_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(items) / seconds : 0.0;
  }
};

}  // namespace finbench::engine
