// finbench/engine/thread_pool.hpp
//
// A persistent worker pool with dynamic chunk self-scheduling: chunks are
// claimed through an atomic ticket counter, so a participant that finishes
// cheap chunks early keeps pulling work — the load-balancing behavior the
// per-call "#pragma omp parallel for schedule(static)" idiom lacks on
// heterogeneous option batches. A static mode (participant p owns chunks
// p, p+P, p+2P, ...) is kept for apples-to-apples imbalance comparisons.
//
// The calling thread participates as participant 0, so a pool of size P
// uses P-1 dedicated workers. Workers pin their OpenMP ICV to one thread
// (and run() temporarily pins the caller's), so kernels with internal
// "#pragma omp parallel" regions execute their chunk serially instead of
// oversubscribing the machine with nested teams.
//
// Per-participant *CPU* time (not wall time) is recorded through
// obs::record_parallel_region under "parallel.<site>.*" when
// obs::parallel_timing_enabled(): CPU time attributes load imbalance
// correctly even when the pool is oversubscribed onto fewer cores.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "finbench/arch/parallel.hpp"
#include "finbench/robust/deadline.hpp"

namespace finbench::engine {

class TaskGroup;

class ThreadPool {
 public:
  // threads <= 0: size to arch::num_threads(). A pool of size 1 runs
  // everything inline on the caller.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Participants per run (dedicated workers + the calling thread).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  // Execute fn(c) for every chunk c in [0, nchunks); blocks until all
  // chunks completed. kDynamic claims chunks via the ticket counter;
  // kStatic assigns chunk c to participant c % P. The first exception is
  // rethrown here (remaining chunks are skipped under kDynamic, visited
  // but not executed under kStatic); further exceptions from other
  // participants are counted under the "pool.exceptions.suppressed"
  // counter and noted in the rethrown message. When `cancel` is non-null
  // it is polled at every chunk boundary: once expired, remaining chunks
  // complete as not-run (fn is never called for them), so a run under a
  // deadline returns within one chunk's wall time per participant — the
  // caller (the engine) knows which chunks ran from its own per-chunk
  // bookkeeping. Concurrent run() calls from different threads serialize;
  // run() from inside fn executes the nested loop inline on the calling
  // participant.
  //
  // Every participant — dedicated workers at startup, the caller for the
  // scope of its participation — computes under the pool's denormal
  // policy (FTZ+DAZ, robust::install_denormal_ftz), so results never
  // depend on which participant claimed a chunk. The caller's FP state is
  // restored before run() returns.
  void run(std::ptrdiff_t nchunks, const std::function<void(std::ptrdiff_t)>& fn,
           arch::Schedule sched = arch::Schedule::kDynamic, const char* site = "pool",
           const robust::CancelToken* cancel = nullptr);

  // Process-wide pool sized to arch::num_threads() at first use.
  static ThreadPool& shared();

  // Participant index of the calling thread while it executes chunks of a
  // run() (0 = the submitting caller, 1..P-1 = dedicated workers), -1
  // outside any run. The engine stamps it into flight-recorder records.
  static int current_participant();

 private:
  friend class TaskGroup;

  // --- Nested fork-join task layer (finbench/engine/task_group.hpp) ---
  //
  // Intrusive node of the pool-global FIFO task queue. Nodes are owned by
  // their TaskGroup's inline slots; the pool only links/unlinks them.
  struct TaskNode {
    void (*invoke)(TaskNode*) = nullptr;
    TaskGroup* group = nullptr;
    TaskNode* next = nullptr;
    std::thread::id owner{};     // spawner, for the steal counter
    std::atomic<int> state{0};   // TaskGroup slot lifecycle (0 = free)
  };

  void post_task(TaskNode* n);
  TaskNode* try_pop_task();
  // Execute one popped task, maintaining the steal/depth counters.
  static void execute_task(TaskNode* n);
  // Block until a task is queued or `pending` (a group's outstanding-task
  // count) drops to zero. Used by TaskGroup::join when the queue is empty
  // but other threads still run this group's tasks.
  void wait_task_or_group_idle(const std::atomic<int>& pending);
  void notify_task_waiters();
  // Run-scoped help: a participant out of chunk tickets drains queued
  // tasks until every chunk of the live run has completed.
  void help_tasks_until_run_done();

  static void count_task_spawned();
  static void count_suppressed_exception();

  void worker_main(int participant);
  void participate(int participant);
  void execute_chunk(std::ptrdiff_t c);

  std::vector<std::thread> workers_;

  std::mutex task_mu_;                // guards the task queue links
  std::condition_variable task_cv_;   // task posted / group drained / run done
  TaskNode* task_head_ = nullptr;
  TaskNode* task_tail_ = nullptr;

  std::mutex mu_;                    // guards gen_, run_live_, stop_
  std::condition_variable cv_work_;  // new generation / stop
  std::condition_variable cv_done_;  // chunk completed / worker left run
  std::uint64_t gen_ = 0;
  bool run_live_ = false;
  bool stop_ = false;

  std::mutex submit_mu_;  // serializes external run() calls

  // State of the active run (valid while run_live_).
  const std::function<void(std::ptrdiff_t)>* fn_ = nullptr;
  std::ptrdiff_t nchunks_ = 0;
  arch::Schedule sched_ = arch::Schedule::kDynamic;
  std::atomic<std::ptrdiff_t> ticket_{0};
  std::atomic<std::ptrdiff_t> completed_{0};
  std::atomic<int> active_workers_{0};
  std::atomic<bool> failed_{false};
  std::atomic<int> suppressed_{0};  // secondary exceptions after the first
  const robust::CancelToken* cancel_ = nullptr;
  std::exception_ptr error_;  // guarded by err_mu_
  std::mutex err_mu_;

  // Per-participant CPU-time accumulation for the imbalance metric.
  std::mutex stat_mu_;
  double cpu_min_ = 0.0, cpu_max_ = 0.0, cpu_sum_ = 0.0;
  int cpu_count_ = 0;
};

}  // namespace finbench::engine
