// finbench/engine/engine.hpp
//
// The batched pricing engine: looks the requested variant up in the
// registry, validates the workload against the variant's required layout,
// partitions specs-layout portfolios into cost-model-weighted chunks, and
// executes them on a persistent thread pool with dynamic chunk
// self-scheduling (PricingRequest::schedule selects dynamic/static).
// Variants without a run_range adapter (Black–Scholes batches, Brownian
// path construction, whole-batch MC stream variants) fall through to the
// kernel's native batch entry point.
//
// Execution is reported through finbench::obs: chunk spans on the trace,
// "engine.requests" / "engine.items" counters, and — when parallel timing
// is enabled — per-participant CPU-time imbalance under
// "parallel.engine.<schedule>.*".

#pragma once

#include "finbench/engine/registry.hpp"
#include "finbench/engine/request.hpp"
#include "finbench/engine/thread_pool.hpp"

namespace finbench::engine {

class Engine {
 public:
  // pool == nullptr: use ThreadPool::shared().
  explicit Engine(ThreadPool* pool = nullptr);

  // Price one request. Never throws for workload/registry errors — they
  // come back as result.ok == false with a message; kernel exceptions
  // propagate.
  PricingResult price(const PricingRequest& req) const;

  // Process-wide engine over ThreadPool::shared().
  static Engine& shared();

 private:
  ThreadPool* pool_;
};

}  // namespace finbench::engine
