// finbench/engine/engine.hpp
//
// The batched pricing engine: looks the requested variant up in the
// registry, *negotiates* the workload layout against the variant's
// required layout (a convertible mismatch — e.g. an AOS portfolio priced
// by an SOA variant — is converted once through the request's arena,
// cached across repetitions, and its one-time cost reported in
// PricingResult::convert_seconds/convert_bytes; outputs are copied back
// into the caller's portfolio after every run, inside the timed region),
// partitions specs-layout portfolios into cost-model-weighted chunks, and
// executes them on a persistent thread pool with dynamic chunk
// self-scheduling (PricingRequest::schedule selects dynamic/static).
// Variants without a run_range adapter (Black–Scholes batches, Brownian
// path construction) fall through to the kernel's native batch entry
// point.
//
// Steady state is allocation-free: re-pricing the same request through
// the two-argument price() overload performs zero heap allocations per
// repetition — conversion buffers live in the request arena, chunk bounds
// and result buffers are cached in the request Scratch, and the chunk
// closure fits std::function's small-buffer optimization
// (tests/test_engine_alloc.cpp proves this with a counting operator new).
//
// Execution is reported through finbench::obs: chunk spans on the trace,
// "engine.requests" / "engine.items" / "engine.layout_converts" /
// "engine.convert.bytes" counters, the "engine.convert.seconds" stat, and
// — when parallel timing is enabled — per-participant CPU-time imbalance
// under "parallel.engine.<schedule>.*".

#pragma once

#include <span>

#include "finbench/engine/group.hpp"
#include "finbench/engine/registry.hpp"
#include "finbench/engine/request.hpp"
#include "finbench/engine/thread_pool.hpp"

namespace finbench::engine {

class Engine {
 public:
  // pool == nullptr: use ThreadPool::shared().
  explicit Engine(ThreadPool* pool = nullptr);

  // Price one request. Never throws for workload/registry errors — they
  // come back as result.ok == false with a message; kernel exceptions
  // propagate.
  PricingResult price(const PricingRequest& req) const;

  // Re-entrant form: prices into an existing result, reusing its buffers.
  // Repeat loops (benchmarks, servers) use this overload — after the first
  // call, re-pricing the same request is heap-allocation-free.
  void price(const PricingRequest& req, PricingResult& res) const;

  // Multi-request entry point (finbench/engine/group.hpp): fuse the group
  // into one arena-backed portfolio, price it in a single execution, and
  // scatter per-member outputs/statuses back. Members must be pairwise
  // fusable with group[0] — a member that is not gets priced individually
  // rather than silently mis-fused. Single-member groups skip the fuse.
  // `scratch` is caller-owned and reused; steady-state same-shaped groups
  // are heap-allocation-free.
  void price_group(std::span<const GroupJob> group, GroupScratch& scratch) const;

  // True when `a` and `b` may share one fused batch: same variant, same
  // fusable layout, matching batch scalars and accuracy/robustness knobs,
  // no active fault plan, and a deterministic (non-statistical) kernel.
  // Auto-intent requests ("blackscholes.auto") compare by *resolved plan*:
  // both resolve through the tuner first and fuse only when they land on
  // the same concrete variant, schedule, and chunk granularity.
  static bool fusable(const PricingRequest& a, const PricingRequest& b);

  // Participants the engine executes with (pool workers + caller). The
  // tuner keys plans on this: a plan raced at one pool size does not
  // dispatch another.
  int pool_size() const;

  // Process-wide engine over ThreadPool::shared().
  static Engine& shared();

 private:
  ThreadPool* pool_;
};

}  // namespace finbench::engine
