// finbench/engine/validate.hpp
//
// Registry self-validation: price a canonical workload through a variant
// and through the reference variant it links to, and compare within the
// variant's registered tolerance. Deterministic variants compare
// element-wise (relative error); statistical variants (own RNG draws)
// compare batch means within max(tolerance, k standard errors).
//
// Shared by tests/test_engine.cpp and `pricectl --validate`.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace finbench::engine {

struct ValidationReport {
  std::string id;            // variant validated
  std::string reference_id;  // what it was compared against ("" = is reference)
  bool ok = false;
  bool skipped = false;      // reference variants validate trivially
  std::size_t items = 0;
  double max_rel_err = 0.0;  // worst element (deterministic comparisons)
  double mean_abs_err = 0.0; // |mean difference| (statistical comparisons)
  double tolerance = 0.0;
  std::string detail;        // human-readable failure description
};

// Validate one variant by id (throws std::invalid_argument on unknown id).
// `nopt` scales the canonical workload; small values keep it fast.
ValidationReport validate_variant(const std::string& id, std::size_t nopt = 64);

// Validate every registered variant.
std::vector<ValidationReport> validate_all(std::size_t nopt = 64);

}  // namespace finbench::engine
