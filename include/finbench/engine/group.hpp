// finbench/engine/group.hpp
//
// The engine's multi-request entry point: N compatible PricingRequests
// fused into one arena-backed portfolio, priced in a single engine
// execution, with per-request outputs and statuses scattered back. This
// is what serve::Server's coalescer rides on — layout negotiation, chunk
// partitioning, and ScratchPool reservation amortize across the group
// instead of being paid once per small request.
//
// Fusion contract (Engine::fusable): two requests fuse when they name the
// same kernel variant, carry the same workload layout (one of kSpecs,
// kBsAos, kBsSoa, kBsSoaF — lane-blocked AoSoA members are priced
// individually, their per-request tail padding makes concatenation
// non-trivial), agree on every accuracy and robustness knob, share the
// batch scalars (rate/vol/dividend for Black–Scholes layouts), carry no
// active fault plan, and the variant is deterministic. Statistical
// estimators (Monte Carlo) never fuse: their per-option RNG substreams
// are keyed by batch index, so coalescing would change the answer a
// request gets depending on who it shares a batch with.
//
// Determinism: for the layouts that do fuse, every shipped kernel is
// element-wise across options (SIMD lanes are independent), so a member's
// prices are bitwise identical whether it is priced alone or inside a
// fused batch — tests/test_serve.cpp asserts this.
//
// Degradation is attributed per member: the fused run executes with the
// engine's Black–Scholes output guard deferred, and price_group re-guards
// each member's range of the fused batch with the member's own policy —
// a member whose outputs trip the guardrail is repaired (scalar closed
// form) and reported kDegraded without touching its neighbours' statuses
// or bits. Sanitizer verdicts scatter the same way through the per-option
// fault mask.
//
// GroupScratch is caller-owned and reused across calls; after warm-up, a
// steady state of same-shaped groups prices with zero heap allocations
// (the fused portfolio lives in a block-reusing Arena, the fused request
// keeps its engine Scratch, and all scatter buffers retain capacity).

#pragma once

#include <cstddef>
#include <vector>

#include "finbench/core/portfolio.hpp"
#include "finbench/engine/request.hpp"
#include "finbench/robust/deadline.hpp"

namespace finbench::engine {

// One member of a fused group: the request to price and where its
// per-request outcome lands. Outputs go to the member's own portfolio
// arrays (BS layouts) or result values (kSpecs), exactly as in
// Engine::price.
struct GroupJob {
  const PricingRequest* req = nullptr;
  PricingResult* res = nullptr;
};

// Caller-owned state reused across price_group calls. The arena holds the
// fused portfolio (reset keeps its blocks); `fused` keeps its engine
// Scratch so negotiation/chunk/pool buffers persist. `deadline_seconds`
// and `cancel`, when set, override the group deadline (otherwise the
// minimum positive member deadline applies); serve::Server uses this to
// arm the remaining budget of the most urgent member.
struct GroupScratch {
  core::Arena arena;
  PricingRequest fused;
  PricingResult fused_res;

  // Group-level deadline override (0 = derive from members).
  double deadline_seconds = 0.0;
  const robust::CancelToken* cancel = nullptr;

  // Internal scatter bookkeeping (kept for capacity reuse).
  std::vector<std::size_t> offsets;
};

}  // namespace finbench::engine
