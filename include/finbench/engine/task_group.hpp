// finbench/engine/task_group.hpp
//
// Nested fork-join task layer over the persistent ThreadPool (PR 10).
//
// The pool's chunked scheduler balances *across* options; a TaskGroup
// decomposes work *inside* one expensive option (binomial level bands,
// Crank–Nicolson wavefront sweeps, Monte Carlo path blocks) without a
// second thread pool. A chunk that spawns tasks publishes them to a
// pool-global FIFO; participants that run out of chunk tickets drain that
// queue until the run's chunks complete, and join() is help-first — the
// joining thread executes queued tasks (its own group's or any other's)
// instead of blocking, so a pool of size 1 (or a TaskGroup used outside
// any run) degrades to serial in-spawn-order execution and can never
// deadlock.
//
// Design constraints, in order:
//   * Zero steady-state allocations: task closures are placement-new'd
//     into fixed inline slots owned by the (stack-allocated) group, and
//     the queue is intrusive. The counting-allocator harness
//     (tests/test_engine_alloc.cpp) holds with tasking enabled.
//   * Determinism: the queue pops in spawn (FIFO) order, so pipelined
//     task waves (Crank–Nicolson) may busy-wait on an *earlier-spawned*
//     task's monotonic progress — its executor was dispatched first, so
//     the wait always makes progress. can_spawn() lets such callers
//     verify up front that every wave will really be queued (never run
//     inline out of order) and fall back to a serial schedule otherwise.
//   * Exception safety: the first exception thrown by a task is captured
//     and rethrown from join(); further ones land on the same
//     "pool.exceptions.suppressed" counter the chunk scheduler uses.
//
// Observability: engine.tasks.spawned counts every spawn, engine.tasks.steals
// counts tasks executed by a thread other than their spawner, and
// engine.tasks.depth counts tasks executed from inside another task
// (nested fork-join). All three surface in the v2 run report.

#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <new>
#include <thread>
#include <type_traits>
#include <utility>

#include "finbench/engine/thread_pool.hpp"

namespace finbench::engine {

class TaskGroup {
 public:
  // Inline capacity: tasks outstanding (spawned, not yet executed) per
  // group. spawn() beyond capacity executes the callable inline on the
  // spawner — correct for independent tasks; pipelined callers must gate
  // on can_spawn() instead.
  static constexpr int kMaxTasks = 64;
  static constexpr std::size_t kClosureBytes = 96;

  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  // Drains outstanding tasks; a pending exception that join() never
  // collected is suppressed (counted), never thrown from a destructor.
  ~TaskGroup() {
    if (pending_.load(std::memory_order_acquire) > 0) {
      try {
        join();
      } catch (...) {
        ThreadPool::count_suppressed_exception();
      }
    }
  }

  // True when k more spawn() calls are guaranteed to enqueue (not run
  // inline). Only the owning thread spawns, and executed tasks only
  // *free* slots, so the answer cannot go stale in the false direction.
  bool can_spawn(std::size_t k) const {
    std::size_t free = 0;
    for (const Slot& s : slots_) {
      if (s.node.state.load(std::memory_order_acquire) == kFree) ++free;
    }
    return free >= k;
  }

  // Spawn fn() as a task. Must be called by one thread per group (the
  // owner); tasks themselves may spawn into their *own* nested groups.
  template <class F>
  void spawn(F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kClosureBytes, "task closure too large for inline slot");
    static_assert(alignof(Fn) <= alignof(std::max_align_t), "over-aligned task closure");
    ThreadPool::count_task_spawned();
    Slot* slot = claim_slot();
    if (slot == nullptr) {
      // Capacity exhausted: run inline, with the same exception capture an
      // enqueued task would get so join() reports uniformly.
      run_inline(static_cast<F&&>(fn));
      return;
    }
    ::new (static_cast<void*>(slot->storage)) Fn(static_cast<F&&>(fn));
    slot->node.invoke = &invoke_thunk<Fn>;
    slot->node.group = this;
    slot->node.next = nullptr;
    slot->node.owner = std::this_thread::get_id();
    pending_.fetch_add(1, std::memory_order_relaxed);
    pool_.post_task(&slot->node);
  }

  // Help-first join: execute queued tasks (any group's) until every task
  // spawned on this group has finished, then rethrow the first captured
  // exception. Safe at pool size 1 and outside pool runs (the caller
  // simply executes everything itself).
  void join() {
    while (pending_.load(std::memory_order_acquire) > 0) {
      if (ThreadPool::TaskNode* n = pool_.try_pop_task()) {
        ThreadPool::execute_task(n);
        continue;
      }
      pool_.wait_task_or_group_idle(pending_);
    }
    if (failed_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(err_mu_);
      if (error_) {
        std::exception_ptr e = error_;
        error_ = nullptr;
        failed_.store(false, std::memory_order_release);
        std::rethrow_exception(e);
      }
    }
  }

 private:
  friend class ThreadPool;

  enum : int { kFree = 0, kLive = 1 };

  struct Slot {
    ThreadPool::TaskNode node;
    alignas(std::max_align_t) unsigned char storage[kClosureBytes];
  };

  template <class Fn>
  static void invoke_thunk(ThreadPool::TaskNode* n) {
    // TaskNode is the first member of Slot, so the node pointer IS the slot.
    Slot* slot = reinterpret_cast<Slot*>(n);
    TaskGroup* g = n->group;
    Fn* fn = std::launder(reinterpret_cast<Fn*>(slot->storage));
    try {
      (*fn)();
    } catch (...) {
      g->capture_exception();
    }
    fn->~Fn();
    // Free the slot before the pending decrement: once pending_ hits zero
    // the joiner may destroy the group (and with it this slot).
    n->state.store(kFree, std::memory_order_release);
    g->finish_one();
  }

  template <class F>
  void run_inline(F&& fn) {
    try {
      fn();
    } catch (...) {
      capture_exception();
    }
  }

  Slot* claim_slot() {
    for (int i = 0; i < kMaxTasks; ++i) {
      Slot& s = slots_[(next_slot_ + i) % kMaxTasks];
      if (s.node.state.load(std::memory_order_acquire) == kFree) {
        s.node.state.store(kLive, std::memory_order_relaxed);
        next_slot_ = (next_slot_ + i + 1) % kMaxTasks;
        return &s;
      }
    }
    return nullptr;
  }

  void capture_exception() {
    std::lock_guard<std::mutex> lock(err_mu_);
    if (!error_) {
      error_ = std::current_exception();
      failed_.store(true, std::memory_order_release);
    } else {
      ThreadPool::count_suppressed_exception();
    }
  }

  // The executor's last touch of the group: after the final decrement the
  // joiner may destroy it, so only the (outliving) pool is notified.
  void finish_one() {
    ThreadPool& pool = pool_;
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      pool.notify_task_waiters();
    }
  }

  ThreadPool& pool_;
  std::atomic<int> pending_{0};
  std::atomic<bool> failed_{false};
  std::mutex err_mu_;
  std::exception_ptr error_;  // guarded by err_mu_
  int next_slot_ = 0;         // owner-thread only
  Slot slots_[kMaxTasks] = {};
};

}  // namespace finbench::engine
