// finbench/engine/registry.hpp
//
// The kernel registry: every kernel variant in the library (kernel x
// OptLevel x SIMD width) is registered under a stable string id —
// "bs.intermediate.avx2", "mc.optimized_computed.auto", ... — with a
// uniform execution adapter over PricingRequest/PricingResult, cost-model
// metadata for weighted chunking and rooflines, and a link to the
// reference variant it must agree with (the self-validation anchor: see
// validate_variant in finbench/engine/validate.hpp).
//
// Id scheme: "<kernel>.<variant>.<width>" with width one of
//   scalar — the W=1 reference path
//   avx2   — the forced 4-wide (SNB-EP-class) path
//   auto   — the widest path compiled into this build (8-wide with AVX-512)
//
// The built-in variants register on first Registry::instance() access, so
// there is no static-initialization-order or archive-stripping hazard.

#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "finbench/core/option.hpp"
#include "finbench/core/optlevel.hpp"
#include "finbench/core/portfolio.hpp"
#include "finbench/engine/request.hpp"

namespace finbench::engine {

// Workload form a variant consumes — the core layout tag. A request whose
// portfolio carries a different (but core::convertible) layout is
// negotiated by the engine rather than rejected.
using Layout = core::Layout;
using core::to_string;

struct VariantInfo {
  std::string id;            // "binomial.advanced.avx2"
  std::string kernel;        // family: "bs", "binomial", "brownian", "mc", "cn"
  core::OptLevel level = core::OptLevel::kReference;
  int width = 1;             // nominal SIMD lanes; 0 = widest compiled in
  Layout layout = Layout::kSpecs;
  std::string exhibit;       // paper exhibit this variant appears in
  std::string description;

  // Self-validation: the variant this one must agree with ("" for the
  // family reference itself). `tolerance` is relative for element-wise
  // comparison; when `statistical` is set the variant draws its own random
  // numbers, so validation compares standard-error bands / batch means
  // instead of elements (tolerance becomes the absolute mean band).
  std::string reference_id;
  double tolerance = 1e-9;
  bool statistical = false;

  // Graceful degradation: when a chunk of this variant fails its output
  // guard (or throws), the engine re-prices the chunk through this
  // variant instead (finbench/robust, docs/robustness.md). "" means
  // fall back to reference_id; the chain is followed until a variant
  // succeeds or the family reference itself fails. Each link must share
  // the variant's layout family.
  std::string fallback_id;

  bool european_only = false;  // variant cannot price American exercise

  // Cost model per item under this request (roofline metadata).
  double (*flops_per_item)(const PricingRequest&) = nullptr;
  double (*bytes_per_item)(const PricingRequest&) = nullptr;

  // Relative cost weight of one option (heterogeneous batches; used for
  // cost-model-weighted chunking). Null = uniform cost.
  double (*item_cost)(const core::OptionSpec&, const PricingRequest&) = nullptr;

  // Build the request's Scratch cache (pre-generated normal streams,
  // lane-blocked layouts, pre-sized result buffers). Called once before
  // any run_range chunk executes; run_batch prepares internally. Null =
  // nothing to prepare.
  //
  // Every adapter hook receives the workload view to execute — this is the
  // request's own portfolio for a layout match, or the engine's negotiated
  // (arena-backed, converted) view on a mismatch. Adapters must read the
  // workload from the view, never from req.portfolio.
  void (*prepare)(const PricingRequest&, const core::PortfolioView&) = nullptr;

  // Execute the whole workload through the kernel's native batch entry
  // point (kernel-internal OpenMP) — what the fig/tab benchmarks dispatch.
  void (*run_batch)(const PricingRequest&, const core::PortfolioView&,
                    PricingResult&) = nullptr;

  // Execute items [begin, end) of a kSpecs workload, writing
  // values[begin..end) (and std_errors for MC). Must be safe to call
  // concurrently for disjoint ranges; null = whole-batch only (the engine
  // then falls back to run_batch). Must not allocate: chunks run in the
  // engine's zero-steady-state-allocation loop (buffers come from prepare
  // / the request Scratch).
  void (*run_range)(const PricingRequest&, const core::PortfolioView&, std::size_t begin,
                    std::size_t end, PricingResult&) = nullptr;

  bool has_std_error = false;  // fills PricingResult::std_errors
};

class Registry {
 public:
  // The process-wide registry, with all built-in variants registered.
  static Registry& instance();

  // Register a variant. Throws std::invalid_argument on a duplicate or
  // empty id. Thread-safe.
  void add(VariantInfo v);

  // Null when the id is unknown. Returned pointers are stable for the
  // process lifetime.
  const VariantInfo* find(std::string_view id) const;

  // All variants, sorted by id.
  std::vector<const VariantInfo*> all() const;
  std::vector<std::string> ids() const;
  std::size_t size() const;

 private:
  Registry();
  struct Impl;
  Impl* impl_;
};

}  // namespace finbench::engine
