// finbench/simd/vecf.hpp
//
// Single-precision SIMD wrapper classes: Vec<float, W> for W in {1, 8, 16}
// (scalar, AVX2 __m256, AVX-512 __m512), mirroring the double-precision
// classes in vec.hpp. Table I of the paper quotes separate SP peaks
// (691 / 2127 GF/s) — single precision doubles the lane count, and the SP
// Black-Scholes variant exercises exactly that.
//
// The integer companion VecI32<W> carries the exponent bit manipulation
// for the float transcendental kernels (vecmathf.hpp).

#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <immintrin.h>

#include "finbench/simd/vec.hpp"

namespace finbench::simd {

template <int W> struct VecI32;

// ---------------------------------------------------------------------------
// Scalar specialization (W = 1)
// ---------------------------------------------------------------------------

template <> struct Mask<float, 1> {
  bool m{};
  Mask() = default;
  explicit Mask(bool b) : m(b) {}
  friend Mask operator&(Mask a, Mask b) { return Mask(a.m && b.m); }
  friend Mask operator|(Mask a, Mask b) { return Mask(a.m || b.m); }
  Mask operator!() const { return Mask(!m); }
  bool any() const { return m; }
  bool all() const { return m; }
  bool none() const { return !m; }
  bool lane(int) const { return m; }
};

template <> struct VecI32<1> {
  std::int32_t v{};
  VecI32() = default;
  explicit VecI32(std::int32_t x) : v(x) {}
  friend VecI32 operator+(VecI32 a, VecI32 b) { return VecI32(a.v + b.v); }
  friend VecI32 operator-(VecI32 a, VecI32 b) { return VecI32(a.v - b.v); }
  friend VecI32 operator&(VecI32 a, VecI32 b) { return VecI32(a.v & b.v); }
  friend VecI32 operator|(VecI32 a, VecI32 b) { return VecI32(a.v | b.v); }
  template <int S> VecI32 shl() const {
    return VecI32(static_cast<std::int32_t>(static_cast<std::uint32_t>(v) << S));
  }
  template <int S> VecI32 shr() const {
    return VecI32(static_cast<std::int32_t>(static_cast<std::uint32_t>(v) >> S));
  }
  std::int32_t lane(int) const { return v; }
};

template <> struct Vec<float, 1> {
  using value_type = float;
  using mask_type = Mask<float, 1>;
  using int_type = VecI32<1>;
  static constexpr int width = 1;

  float v{};

  Vec() = default;
  Vec(float x) : v(x) {}  // NOLINT: implicit broadcast

  static Vec load(const float* p) { return Vec(*p); }
  static Vec loadu(const float* p) { return Vec(*p); }
  void store(float* p) const { *p = v; }
  void storeu(float* p) const { *p = v; }
  void stream(float* p) const { *p = v; }
  float lane(int) const { return v; }

  friend Vec operator+(Vec a, Vec b) { return Vec(a.v + b.v); }
  friend Vec operator-(Vec a, Vec b) { return Vec(a.v - b.v); }
  friend Vec operator*(Vec a, Vec b) { return Vec(a.v * b.v); }
  friend Vec operator/(Vec a, Vec b) { return Vec(a.v / b.v); }
  Vec operator-() const { return Vec(-v); }

  friend mask_type operator<(Vec a, Vec b) { return mask_type(a.v < b.v); }
  friend mask_type operator<=(Vec a, Vec b) { return mask_type(a.v <= b.v); }
  friend mask_type operator>(Vec a, Vec b) { return mask_type(a.v > b.v); }
  friend mask_type operator>=(Vec a, Vec b) { return mask_type(a.v >= b.v); }
  friend mask_type operator==(Vec a, Vec b) { return mask_type(a.v == b.v); }
  friend mask_type operator!=(Vec a, Vec b) { return mask_type(a.v != b.v); }
};

inline Vec<float, 1> fmadd(Vec<float, 1> a, Vec<float, 1> b, Vec<float, 1> c) { return {std::fmaf(a.v, b.v, c.v)}; }
inline Vec<float, 1> fnmadd(Vec<float, 1> a, Vec<float, 1> b, Vec<float, 1> c) { return {std::fmaf(-a.v, b.v, c.v)}; }
inline Vec<float, 1> min(Vec<float, 1> a, Vec<float, 1> b) { return {b.v < a.v ? b.v : a.v}; }
inline Vec<float, 1> max(Vec<float, 1> a, Vec<float, 1> b) { return {a.v < b.v ? b.v : a.v}; }
inline Vec<float, 1> abs(Vec<float, 1> a) { return {std::fabs(a.v)}; }
inline Vec<float, 1> sqrt(Vec<float, 1> a) { return {std::sqrt(a.v)}; }
inline Vec<float, 1> round_nearest(Vec<float, 1> a) { return {std::nearbyintf(a.v)}; }
inline Vec<float, 1> select(Mask<float, 1> m, Vec<float, 1> a, Vec<float, 1> b) { return m.m ? a : b; }
inline VecI32<1> bitcast_to_int(Vec<float, 1> a) {
  std::int32_t i;
  std::memcpy(&i, &a.v, 4);
  return VecI32<1>(i);
}
inline Vec<float, 1> bitcast_to_float(VecI32<1> a) {
  float f;
  std::memcpy(&f, &a.v, 4);
  return {f};
}
inline VecI32<1> to_int32(Vec<float, 1> a) { return VecI32<1>(static_cast<std::int32_t>(std::lrintf(a.v))); }

// ---------------------------------------------------------------------------
// AVX2 specialization (W = 8)
// ---------------------------------------------------------------------------

template <> struct Mask<float, 8> {
  __m256 m{};
  Mask() = default;
  explicit Mask(__m256 x) : m(x) {}
  friend Mask operator&(Mask a, Mask b) { return Mask(_mm256_and_ps(a.m, b.m)); }
  friend Mask operator|(Mask a, Mask b) { return Mask(_mm256_or_ps(a.m, b.m)); }
  Mask operator!() const {
    return Mask(_mm256_xor_ps(m, _mm256_castsi256_ps(_mm256_set1_epi32(-1))));
  }
  int bits() const { return _mm256_movemask_ps(m); }
  bool any() const { return bits() != 0; }
  bool all() const { return bits() == 0xff; }
  bool none() const { return bits() == 0; }
  bool lane(int i) const { return (bits() >> i) & 1; }
};

template <> struct VecI32<8> {
  __m256i v{};
  VecI32() = default;
  explicit VecI32(__m256i x) : v(x) {}
  explicit VecI32(std::int32_t x) : v(_mm256_set1_epi32(x)) {}
  friend VecI32 operator+(VecI32 a, VecI32 b) { return VecI32(_mm256_add_epi32(a.v, b.v)); }
  friend VecI32 operator-(VecI32 a, VecI32 b) { return VecI32(_mm256_sub_epi32(a.v, b.v)); }
  friend VecI32 operator&(VecI32 a, VecI32 b) { return VecI32(_mm256_and_si256(a.v, b.v)); }
  friend VecI32 operator|(VecI32 a, VecI32 b) { return VecI32(_mm256_or_si256(a.v, b.v)); }
  template <int S> VecI32 shl() const { return VecI32(_mm256_slli_epi32(v, S)); }
  template <int S> VecI32 shr() const { return VecI32(_mm256_srli_epi32(v, S)); }
  std::int32_t lane(int i) const {
    alignas(32) std::int32_t t[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(t), v);
    return t[i];
  }
};

template <> struct Vec<float, 8> {
  using value_type = float;
  using mask_type = Mask<float, 8>;
  using int_type = VecI32<8>;
  static constexpr int width = 8;

  __m256 v{};

  Vec() = default;
  Vec(float x) : v(_mm256_set1_ps(x)) {}  // NOLINT: implicit broadcast
  explicit Vec(__m256 x) : v(x) {}

  static Vec load(const float* p) { return Vec(_mm256_load_ps(p)); }
  static Vec loadu(const float* p) { return Vec(_mm256_loadu_ps(p)); }
  void store(float* p) const { _mm256_store_ps(p, v); }
  void storeu(float* p) const { _mm256_storeu_ps(p, v); }
  void stream(float* p) const { _mm256_stream_ps(p, v); }
  float lane(int i) const {
    alignas(32) float t[8];
    store(t);
    return t[i];
  }

  friend Vec operator+(Vec a, Vec b) { return Vec(_mm256_add_ps(a.v, b.v)); }
  friend Vec operator-(Vec a, Vec b) { return Vec(_mm256_sub_ps(a.v, b.v)); }
  friend Vec operator*(Vec a, Vec b) { return Vec(_mm256_mul_ps(a.v, b.v)); }
  friend Vec operator/(Vec a, Vec b) { return Vec(_mm256_div_ps(a.v, b.v)); }
  Vec operator-() const { return Vec(_mm256_xor_ps(v, _mm256_set1_ps(-0.0f))); }

  friend mask_type operator<(Vec a, Vec b) { return mask_type(_mm256_cmp_ps(a.v, b.v, _CMP_LT_OQ)); }
  friend mask_type operator<=(Vec a, Vec b) { return mask_type(_mm256_cmp_ps(a.v, b.v, _CMP_LE_OQ)); }
  friend mask_type operator>(Vec a, Vec b) { return mask_type(_mm256_cmp_ps(a.v, b.v, _CMP_GT_OQ)); }
  friend mask_type operator>=(Vec a, Vec b) { return mask_type(_mm256_cmp_ps(a.v, b.v, _CMP_GE_OQ)); }
  friend mask_type operator==(Vec a, Vec b) { return mask_type(_mm256_cmp_ps(a.v, b.v, _CMP_EQ_OQ)); }
  friend mask_type operator!=(Vec a, Vec b) { return mask_type(_mm256_cmp_ps(a.v, b.v, _CMP_NEQ_UQ)); }
};

inline Vec<float, 8> fmadd(Vec<float, 8> a, Vec<float, 8> b, Vec<float, 8> c) { return Vec<float, 8>(_mm256_fmadd_ps(a.v, b.v, c.v)); }
inline Vec<float, 8> fnmadd(Vec<float, 8> a, Vec<float, 8> b, Vec<float, 8> c) { return Vec<float, 8>(_mm256_fnmadd_ps(a.v, b.v, c.v)); }
inline Vec<float, 8> min(Vec<float, 8> a, Vec<float, 8> b) { return Vec<float, 8>(_mm256_min_ps(a.v, b.v)); }
inline Vec<float, 8> max(Vec<float, 8> a, Vec<float, 8> b) { return Vec<float, 8>(_mm256_max_ps(a.v, b.v)); }
inline Vec<float, 8> abs(Vec<float, 8> a) { return Vec<float, 8>(_mm256_andnot_ps(_mm256_set1_ps(-0.0f), a.v)); }
inline Vec<float, 8> sqrt(Vec<float, 8> a) { return Vec<float, 8>(_mm256_sqrt_ps(a.v)); }
inline Vec<float, 8> round_nearest(Vec<float, 8> a) { return Vec<float, 8>(_mm256_round_ps(a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)); }
inline Vec<float, 8> select(Mask<float, 8> m, Vec<float, 8> a, Vec<float, 8> b) { return Vec<float, 8>(_mm256_blendv_ps(b.v, a.v, m.m)); }
inline VecI32<8> bitcast_to_int(Vec<float, 8> a) { return VecI32<8>(_mm256_castps_si256(a.v)); }
inline Vec<float, 8> bitcast_to_float(VecI32<8> a) { return Vec<float, 8>(_mm256_castsi256_ps(a.v)); }
inline VecI32<8> to_int32(Vec<float, 8> a) { return VecI32<8>(_mm256_cvtps_epi32(a.v)); }

#if defined(FINBENCH_HAVE_AVX512)
// ---------------------------------------------------------------------------
// AVX-512 specialization (W = 16)
// ---------------------------------------------------------------------------

template <> struct Mask<float, 16> {
  __mmask16 m{};
  Mask() = default;
  explicit Mask(__mmask16 x) : m(x) {}
  friend Mask operator&(Mask a, Mask b) { return Mask(static_cast<__mmask16>(a.m & b.m)); }
  friend Mask operator|(Mask a, Mask b) { return Mask(static_cast<__mmask16>(a.m | b.m)); }
  Mask operator!() const { return Mask(static_cast<__mmask16>(~m)); }
  bool any() const { return m != 0; }
  bool all() const { return m == 0xffff; }
  bool none() const { return m == 0; }
  bool lane(int i) const { return (m >> i) & 1; }
};

template <> struct VecI32<16> {
  __m512i v{};
  VecI32() = default;
  explicit VecI32(__m512i x) : v(x) {}
  explicit VecI32(std::int32_t x) : v(_mm512_set1_epi32(x)) {}
  friend VecI32 operator+(VecI32 a, VecI32 b) { return VecI32(_mm512_add_epi32(a.v, b.v)); }
  friend VecI32 operator-(VecI32 a, VecI32 b) { return VecI32(_mm512_sub_epi32(a.v, b.v)); }
  friend VecI32 operator&(VecI32 a, VecI32 b) { return VecI32(_mm512_and_si512(a.v, b.v)); }
  friend VecI32 operator|(VecI32 a, VecI32 b) { return VecI32(_mm512_or_si512(a.v, b.v)); }
  template <int S> VecI32 shl() const { return VecI32(_mm512_slli_epi32(v, S)); }
  template <int S> VecI32 shr() const { return VecI32(_mm512_srli_epi32(v, S)); }
  std::int32_t lane(int i) const {
    alignas(64) std::int32_t t[16];
    _mm512_store_si512(t, v);
    return t[i];
  }
};

template <> struct Vec<float, 16> {
  using value_type = float;
  using mask_type = Mask<float, 16>;
  using int_type = VecI32<16>;
  static constexpr int width = 16;

  __m512 v{};

  Vec() = default;
  Vec(float x) : v(_mm512_set1_ps(x)) {}  // NOLINT: implicit broadcast
  explicit Vec(__m512 x) : v(x) {}

  static Vec load(const float* p) { return Vec(_mm512_load_ps(p)); }
  static Vec loadu(const float* p) { return Vec(_mm512_loadu_ps(p)); }
  void store(float* p) const { _mm512_store_ps(p, v); }
  void storeu(float* p) const { _mm512_storeu_ps(p, v); }
  void stream(float* p) const { _mm512_stream_ps(p, v); }
  float lane(int i) const {
    alignas(64) float t[16];
    store(t);
    return t[i];
  }

  friend Vec operator+(Vec a, Vec b) { return Vec(_mm512_add_ps(a.v, b.v)); }
  friend Vec operator-(Vec a, Vec b) { return Vec(_mm512_sub_ps(a.v, b.v)); }
  friend Vec operator*(Vec a, Vec b) { return Vec(_mm512_mul_ps(a.v, b.v)); }
  friend Vec operator/(Vec a, Vec b) { return Vec(_mm512_div_ps(a.v, b.v)); }
  Vec operator-() const { return Vec(_mm512_xor_ps(v, _mm512_set1_ps(-0.0f))); }

  friend mask_type operator<(Vec a, Vec b) { return mask_type(_mm512_cmp_ps_mask(a.v, b.v, _CMP_LT_OQ)); }
  friend mask_type operator<=(Vec a, Vec b) { return mask_type(_mm512_cmp_ps_mask(a.v, b.v, _CMP_LE_OQ)); }
  friend mask_type operator>(Vec a, Vec b) { return mask_type(_mm512_cmp_ps_mask(a.v, b.v, _CMP_GT_OQ)); }
  friend mask_type operator>=(Vec a, Vec b) { return mask_type(_mm512_cmp_ps_mask(a.v, b.v, _CMP_GE_OQ)); }
  friend mask_type operator==(Vec a, Vec b) { return mask_type(_mm512_cmp_ps_mask(a.v, b.v, _CMP_EQ_OQ)); }
  friend mask_type operator!=(Vec a, Vec b) { return mask_type(_mm512_cmp_ps_mask(a.v, b.v, _CMP_NEQ_UQ)); }
};

inline Vec<float, 16> fmadd(Vec<float, 16> a, Vec<float, 16> b, Vec<float, 16> c) { return Vec<float, 16>(_mm512_fmadd_ps(a.v, b.v, c.v)); }
inline Vec<float, 16> fnmadd(Vec<float, 16> a, Vec<float, 16> b, Vec<float, 16> c) { return Vec<float, 16>(_mm512_fnmadd_ps(a.v, b.v, c.v)); }
inline Vec<float, 16> min(Vec<float, 16> a, Vec<float, 16> b) { return Vec<float, 16>(_mm512_min_ps(a.v, b.v)); }
inline Vec<float, 16> max(Vec<float, 16> a, Vec<float, 16> b) { return Vec<float, 16>(_mm512_max_ps(a.v, b.v)); }
inline Vec<float, 16> abs(Vec<float, 16> a) { return Vec<float, 16>(_mm512_abs_ps(a.v)); }
inline Vec<float, 16> sqrt(Vec<float, 16> a) { return Vec<float, 16>(_mm512_sqrt_ps(a.v)); }
inline Vec<float, 16> round_nearest(Vec<float, 16> a) { return Vec<float, 16>(_mm512_roundscale_ps(a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)); }
inline Vec<float, 16> select(Mask<float, 16> m, Vec<float, 16> a, Vec<float, 16> b) { return Vec<float, 16>(_mm512_mask_blend_ps(m.m, b.v, a.v)); }
inline VecI32<16> bitcast_to_int(Vec<float, 16> a) { return VecI32<16>(_mm512_castps_si512(a.v)); }
inline Vec<float, 16> bitcast_to_float(VecI32<16> a) { return Vec<float, 16>(_mm512_castsi512_ps(a.v)); }
inline VecI32<16> to_int32(Vec<float, 16> a) { return VecI32<16>(_mm512_cvtps_epi32(a.v)); }

#endif  // FINBENCH_HAVE_AVX512

inline Vec<float, 1> to_float(VecI32<1> a) { return {static_cast<float>(a.v)}; }
inline Vec<float, 8> to_float(VecI32<8> a) { return Vec<float, 8>(_mm256_cvtepi32_ps(a.v)); }
#if defined(FINBENCH_HAVE_AVX512)
inline Vec<float, 16> to_float(VecI32<16> a) { return Vec<float, 16>(_mm512_cvtepi32_ps(a.v)); }
#endif

// 2^n for integer-valued float n in [-126, 127].
template <class VF> inline VF pow2n_f(VF n) {
  using I = typename VF::int_type;
  I bits = (to_int32(n) + I(127)).template shl<23>();
  return bitcast_to_float(bits);
}

// frexp-style split: a = m * 2^e, m in [1, 2). Positive normal inputs.
template <class VF> inline void split_exponent_f(VF a, VF& m, VF& e) {
  using I = typename VF::int_type;
  I bits = bitcast_to_int(a);
  I exp_field = bits.template shr<23>() & I(0xff);
  e = to_float(exp_field - I(127));
  I mant = (bits & I(0x007fffff)) | I(0x3f800000);
  m = bitcast_to_float(mant);
}

}  // namespace finbench::simd
