// finbench/simd/vec.hpp
//
// Short-vector wrapper classes: the moral equivalent of the F64vec4 /
// F64vec8 classes the paper uses for outer-loop vectorization (Sec. III-B).
//
// Vec<double, W> for W in {1, 4, 8}:
//   W = 1 : scalar fallback (always available; reference semantics)
//   W = 4 : AVX2 + FMA (__m256d) — the SNB-EP-class 256-bit path
//   W = 8 : AVX-512F (__m512d)  — the KNC-class 512-bit path
//
// Every algorithm in the library is written once, generically over Vec,
// so the scalar instantiation doubles as an executable specification for
// the SIMD instantiations (tests compare them lanewise).
//
// The companion VecI64<W> carries the integer bit-twiddling needed by the
// vector math library (exponent extraction / scaling).

#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <immintrin.h>

namespace finbench::simd {

template <class T, int W> struct Vec;
template <class T, int W> struct Mask;
template <int W> struct VecI64;

inline constexpr int kMaxVectorWidth =
#if defined(FINBENCH_HAVE_AVX512)
    8;
#else
    4;
#endif

// ---------------------------------------------------------------------------
// Scalar specialization (W = 1)
// ---------------------------------------------------------------------------

template <> struct Mask<double, 1> {
  bool m{};
  Mask() = default;
  explicit Mask(bool b) : m(b) {}
  friend Mask operator&(Mask a, Mask b) { return Mask(a.m && b.m); }
  friend Mask operator|(Mask a, Mask b) { return Mask(a.m || b.m); }
  friend Mask operator^(Mask a, Mask b) { return Mask(a.m != b.m); }
  Mask operator!() const { return Mask(!m); }
  bool any() const { return m; }
  bool all() const { return m; }
  bool none() const { return !m; }
  int count() const { return m ? 1 : 0; }
  bool lane(int) const { return m; }
};

template <> struct VecI64<1> {
  std::int64_t v{};
  VecI64() = default;
  explicit VecI64(std::int64_t x) : v(x) {}
  friend VecI64 operator+(VecI64 a, VecI64 b) { return VecI64(a.v + b.v); }
  friend VecI64 operator-(VecI64 a, VecI64 b) { return VecI64(a.v - b.v); }
  friend VecI64 operator&(VecI64 a, VecI64 b) { return VecI64(a.v & b.v); }
  friend VecI64 operator|(VecI64 a, VecI64 b) { return VecI64(a.v | b.v); }
  friend VecI64 operator^(VecI64 a, VecI64 b) { return VecI64(a.v ^ b.v); }
  template <int S> VecI64 shl() const { return VecI64(static_cast<std::int64_t>(static_cast<std::uint64_t>(v) << S)); }
  template <int S> VecI64 shr() const { return VecI64(static_cast<std::int64_t>(static_cast<std::uint64_t>(v) >> S)); }
  template <int S> VecI64 sar() const { return VecI64(v >> S); }
  std::int64_t lane(int) const { return v; }
};

template <> struct Vec<double, 1> {
  using value_type = double;
  using mask_type = Mask<double, 1>;
  using int_type = VecI64<1>;
  static constexpr int width = 1;

  double v{};

  Vec() = default;
  Vec(double x) : v(x) {}  // NOLINT: implicit broadcast is the point

  static Vec load(const double* p) { return Vec(*p); }
  static Vec loadu(const double* p) { return Vec(*p); }
  void store(double* p) const { *p = v; }
  void storeu(double* p) const { *p = v; }
  void stream(double* p) const { *p = v; }

  static Vec gather(const double* base, const std::int32_t* idx) { return Vec(base[idx[0]]); }
  void scatter(double* base, const std::int32_t* idx) const { base[idx[0]] = v; }

  double lane(int) const { return v; }
  void set_lane(int, double x) { v = x; }

  friend Vec operator+(Vec a, Vec b) { return Vec(a.v + b.v); }
  friend Vec operator-(Vec a, Vec b) { return Vec(a.v - b.v); }
  friend Vec operator*(Vec a, Vec b) { return Vec(a.v * b.v); }
  friend Vec operator/(Vec a, Vec b) { return Vec(a.v / b.v); }
  Vec operator-() const { return Vec(-v); }
  Vec& operator+=(Vec b) { v += b.v; return *this; }
  Vec& operator-=(Vec b) { v -= b.v; return *this; }
  Vec& operator*=(Vec b) { v *= b.v; return *this; }
  Vec& operator/=(Vec b) { v /= b.v; return *this; }

  friend mask_type operator<(Vec a, Vec b) { return mask_type(a.v < b.v); }
  friend mask_type operator<=(Vec a, Vec b) { return mask_type(a.v <= b.v); }
  friend mask_type operator>(Vec a, Vec b) { return mask_type(a.v > b.v); }
  friend mask_type operator>=(Vec a, Vec b) { return mask_type(a.v >= b.v); }
  friend mask_type operator==(Vec a, Vec b) { return mask_type(a.v == b.v); }
  friend mask_type operator!=(Vec a, Vec b) { return mask_type(a.v != b.v); }
};

inline Vec<double, 1> fmadd(Vec<double, 1> a, Vec<double, 1> b, Vec<double, 1> c) { return {std::fma(a.v, b.v, c.v)}; }
inline Vec<double, 1> fmsub(Vec<double, 1> a, Vec<double, 1> b, Vec<double, 1> c) { return {std::fma(a.v, b.v, -c.v)}; }
inline Vec<double, 1> fnmadd(Vec<double, 1> a, Vec<double, 1> b, Vec<double, 1> c) { return {std::fma(-a.v, b.v, c.v)}; }
inline Vec<double, 1> min(Vec<double, 1> a, Vec<double, 1> b) { return {b.v < a.v ? b.v : a.v}; }
inline Vec<double, 1> max(Vec<double, 1> a, Vec<double, 1> b) { return {a.v < b.v ? b.v : a.v}; }
inline Vec<double, 1> abs(Vec<double, 1> a) { return {std::fabs(a.v)}; }
inline Vec<double, 1> sqrt(Vec<double, 1> a) { return {std::sqrt(a.v)}; }
inline Vec<double, 1> round_nearest(Vec<double, 1> a) { return {std::nearbyint(a.v)}; }
inline Vec<double, 1> floor(Vec<double, 1> a) { return {std::floor(a.v)}; }
inline Vec<double, 1> select(Mask<double, 1> m, Vec<double, 1> a, Vec<double, 1> b) { return m.m ? a : b; }
inline double hsum(Vec<double, 1> a) { return a.v; }
inline double hmin(Vec<double, 1> a) { return a.v; }
inline double hmax(Vec<double, 1> a) { return a.v; }

inline VecI64<1> bitcast_to_int(Vec<double, 1> a) {
  std::int64_t i; std::memcpy(&i, &a.v, 8); return VecI64<1>(i);
}
inline Vec<double, 1> bitcast_to_double(VecI64<1> a) {
  double d; std::memcpy(&d, &a.v, 8); return {d};
}
// Convert an integer-valued double to int64 (round-to-nearest).
inline VecI64<1> to_int(Vec<double, 1> a) { return VecI64<1>(static_cast<std::int64_t>(std::llrint(a.v))); }
inline Vec<double, 1> to_double(VecI64<1> a) { return {static_cast<double>(a.v)}; }

// ---------------------------------------------------------------------------
// AVX2 specialization (W = 4)
// ---------------------------------------------------------------------------

template <> struct Mask<double, 4> {
  __m256d m{};  // all-ones / all-zeros lanes
  Mask() = default;
  explicit Mask(__m256d x) : m(x) {}
  explicit Mask(bool b) : m(b ? _mm256_castsi256_pd(_mm256_set1_epi64x(-1)) : _mm256_setzero_pd()) {}
  friend Mask operator&(Mask a, Mask b) { return Mask(_mm256_and_pd(a.m, b.m)); }
  friend Mask operator|(Mask a, Mask b) { return Mask(_mm256_or_pd(a.m, b.m)); }
  friend Mask operator^(Mask a, Mask b) { return Mask(_mm256_xor_pd(a.m, b.m)); }
  Mask operator!() const { return Mask(_mm256_xor_pd(m, _mm256_castsi256_pd(_mm256_set1_epi64x(-1)))); }
  int bits() const { return _mm256_movemask_pd(m); }
  bool any() const { return bits() != 0; }
  bool all() const { return bits() == 0xf; }
  bool none() const { return bits() == 0; }
  int count() const { return __builtin_popcount(static_cast<unsigned>(bits())); }
  bool lane(int i) const { return (bits() >> i) & 1; }
};

template <> struct VecI64<4> {
  __m256i v{};
  VecI64() = default;
  explicit VecI64(__m256i x) : v(x) {}
  explicit VecI64(std::int64_t x) : v(_mm256_set1_epi64x(x)) {}
  friend VecI64 operator+(VecI64 a, VecI64 b) { return VecI64(_mm256_add_epi64(a.v, b.v)); }
  friend VecI64 operator-(VecI64 a, VecI64 b) { return VecI64(_mm256_sub_epi64(a.v, b.v)); }
  friend VecI64 operator&(VecI64 a, VecI64 b) { return VecI64(_mm256_and_si256(a.v, b.v)); }
  friend VecI64 operator|(VecI64 a, VecI64 b) { return VecI64(_mm256_or_si256(a.v, b.v)); }
  friend VecI64 operator^(VecI64 a, VecI64 b) { return VecI64(_mm256_xor_si256(a.v, b.v)); }
  template <int S> VecI64 shl() const { return VecI64(_mm256_slli_epi64(v, S)); }
  template <int S> VecI64 shr() const { return VecI64(_mm256_srli_epi64(v, S)); }
  template <int S> VecI64 sar() const {
#if defined(FINBENCH_HAVE_AVX512)
    return VecI64(_mm256_srai_epi64(v, S));
#else
    alignas(32) std::int64_t t[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(t), v);
    for (auto& x : t) x >>= S;
    return VecI64(_mm256_load_si256(reinterpret_cast<const __m256i*>(t)));
#endif
  }
  std::int64_t lane(int i) const {
    alignas(32) std::int64_t t[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(t), v);
    return t[i];
  }
};

template <> struct Vec<double, 4> {
  using value_type = double;
  using mask_type = Mask<double, 4>;
  using int_type = VecI64<4>;
  static constexpr int width = 4;

  __m256d v{};

  Vec() = default;
  Vec(double x) : v(_mm256_set1_pd(x)) {}  // NOLINT: implicit broadcast
  explicit Vec(__m256d x) : v(x) {}
  Vec(double a, double b, double c, double d) : v(_mm256_setr_pd(a, b, c, d)) {}

  static Vec load(const double* p) { return Vec(_mm256_load_pd(p)); }
  static Vec loadu(const double* p) { return Vec(_mm256_loadu_pd(p)); }
  void store(double* p) const { _mm256_store_pd(p, v); }
  void storeu(double* p) const { _mm256_storeu_pd(p, v); }
  void stream(double* p) const { _mm256_stream_pd(p, v); }

  static Vec gather(const double* base, const std::int32_t* idx) {
    return Vec(_mm256_i32gather_pd(base, _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx)), 8));
  }
  void scatter(double* base, const std::int32_t* idx) const {
    alignas(32) double t[4];
    store(t);
    for (int i = 0; i < 4; ++i) base[idx[i]] = t[i];
  }

  double lane(int i) const {
    alignas(32) double t[4];
    store(t);
    return t[i];
  }
  void set_lane(int i, double x) {
    alignas(32) double t[4];
    store(t);
    t[i] = x;
    v = _mm256_load_pd(t);
  }

  friend Vec operator+(Vec a, Vec b) { return Vec(_mm256_add_pd(a.v, b.v)); }
  friend Vec operator-(Vec a, Vec b) { return Vec(_mm256_sub_pd(a.v, b.v)); }
  friend Vec operator*(Vec a, Vec b) { return Vec(_mm256_mul_pd(a.v, b.v)); }
  friend Vec operator/(Vec a, Vec b) { return Vec(_mm256_div_pd(a.v, b.v)); }
  Vec operator-() const { return Vec(_mm256_xor_pd(v, _mm256_set1_pd(-0.0))); }
  Vec& operator+=(Vec b) { v = _mm256_add_pd(v, b.v); return *this; }
  Vec& operator-=(Vec b) { v = _mm256_sub_pd(v, b.v); return *this; }
  Vec& operator*=(Vec b) { v = _mm256_mul_pd(v, b.v); return *this; }
  Vec& operator/=(Vec b) { v = _mm256_div_pd(v, b.v); return *this; }

  friend mask_type operator<(Vec a, Vec b) { return mask_type(_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)); }
  friend mask_type operator<=(Vec a, Vec b) { return mask_type(_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)); }
  friend mask_type operator>(Vec a, Vec b) { return mask_type(_mm256_cmp_pd(a.v, b.v, _CMP_GT_OQ)); }
  friend mask_type operator>=(Vec a, Vec b) { return mask_type(_mm256_cmp_pd(a.v, b.v, _CMP_GE_OQ)); }
  friend mask_type operator==(Vec a, Vec b) { return mask_type(_mm256_cmp_pd(a.v, b.v, _CMP_EQ_OQ)); }
  friend mask_type operator!=(Vec a, Vec b) { return mask_type(_mm256_cmp_pd(a.v, b.v, _CMP_NEQ_UQ)); }
};

inline Vec<double, 4> fmadd(Vec<double, 4> a, Vec<double, 4> b, Vec<double, 4> c) { return Vec<double, 4>(_mm256_fmadd_pd(a.v, b.v, c.v)); }
inline Vec<double, 4> fmsub(Vec<double, 4> a, Vec<double, 4> b, Vec<double, 4> c) { return Vec<double, 4>(_mm256_fmsub_pd(a.v, b.v, c.v)); }
inline Vec<double, 4> fnmadd(Vec<double, 4> a, Vec<double, 4> b, Vec<double, 4> c) { return Vec<double, 4>(_mm256_fnmadd_pd(a.v, b.v, c.v)); }
inline Vec<double, 4> min(Vec<double, 4> a, Vec<double, 4> b) { return Vec<double, 4>(_mm256_min_pd(a.v, b.v)); }
inline Vec<double, 4> max(Vec<double, 4> a, Vec<double, 4> b) { return Vec<double, 4>(_mm256_max_pd(a.v, b.v)); }
inline Vec<double, 4> abs(Vec<double, 4> a) { return Vec<double, 4>(_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)); }
inline Vec<double, 4> sqrt(Vec<double, 4> a) { return Vec<double, 4>(_mm256_sqrt_pd(a.v)); }
inline Vec<double, 4> round_nearest(Vec<double, 4> a) { return Vec<double, 4>(_mm256_round_pd(a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)); }
inline Vec<double, 4> floor(Vec<double, 4> a) { return Vec<double, 4>(_mm256_floor_pd(a.v)); }
inline Vec<double, 4> select(Mask<double, 4> m, Vec<double, 4> a, Vec<double, 4> b) { return Vec<double, 4>(_mm256_blendv_pd(b.v, a.v, m.m)); }

inline double hsum(Vec<double, 4> a) {
  __m128d lo = _mm256_castpd256_pd128(a.v);
  __m128d hi = _mm256_extractf128_pd(a.v, 1);
  lo = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(lo, _mm_unpackhi_pd(lo, lo)));
}
inline double hmin(Vec<double, 4> a) {
  __m128d lo = _mm_min_pd(_mm256_castpd256_pd128(a.v), _mm256_extractf128_pd(a.v, 1));
  return _mm_cvtsd_f64(_mm_min_sd(lo, _mm_unpackhi_pd(lo, lo)));
}
inline double hmax(Vec<double, 4> a) {
  __m128d lo = _mm_max_pd(_mm256_castpd256_pd128(a.v), _mm256_extractf128_pd(a.v, 1));
  return _mm_cvtsd_f64(_mm_max_sd(lo, _mm_unpackhi_pd(lo, lo)));
}

inline VecI64<4> bitcast_to_int(Vec<double, 4> a) { return VecI64<4>(_mm256_castpd_si256(a.v)); }
inline Vec<double, 4> bitcast_to_double(VecI64<4> a) { return Vec<double, 4>(_mm256_castsi256_pd(a.v)); }
inline VecI64<4> to_int(Vec<double, 4> a) {
  // Exponents / step counts fit easily in int32: go through cvtpd_epi32.
  __m128i i32 = _mm256_cvtpd_epi32(a.v);
  return VecI64<4>(_mm256_cvtepi32_epi64(i32));
}
inline Vec<double, 4> to_double(VecI64<4> a) {
#if defined(FINBENCH_HAVE_AVX512)
  return Vec<double, 4>(_mm256_cvtepi64_pd(a.v));
#else
  alignas(32) std::int64_t t[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(t), a.v);
  return Vec<double, 4>(static_cast<double>(t[0]), static_cast<double>(t[1]),
                        static_cast<double>(t[2]), static_cast<double>(t[3]));
#endif
}

#if defined(FINBENCH_HAVE_AVX512)
// ---------------------------------------------------------------------------
// AVX-512 specialization (W = 8) — the KNC-class 512-bit path
// ---------------------------------------------------------------------------

template <> struct Mask<double, 8> {
  __mmask8 m{};
  Mask() = default;
  explicit Mask(__mmask8 x) : m(x) {}
  explicit Mask(bool b) : m(b ? static_cast<__mmask8>(0xff) : static_cast<__mmask8>(0)) {}
  friend Mask operator&(Mask a, Mask b) { return Mask(static_cast<__mmask8>(a.m & b.m)); }
  friend Mask operator|(Mask a, Mask b) { return Mask(static_cast<__mmask8>(a.m | b.m)); }
  friend Mask operator^(Mask a, Mask b) { return Mask(static_cast<__mmask8>(a.m ^ b.m)); }
  Mask operator!() const { return Mask(static_cast<__mmask8>(~m)); }
  int bits() const { return m; }
  bool any() const { return m != 0; }
  bool all() const { return m == 0xff; }
  bool none() const { return m == 0; }
  int count() const { return __builtin_popcount(static_cast<unsigned>(m)); }
  bool lane(int i) const { return (m >> i) & 1; }
};

template <> struct VecI64<8> {
  __m512i v{};
  VecI64() = default;
  explicit VecI64(__m512i x) : v(x) {}
  explicit VecI64(std::int64_t x) : v(_mm512_set1_epi64(x)) {}
  friend VecI64 operator+(VecI64 a, VecI64 b) { return VecI64(_mm512_add_epi64(a.v, b.v)); }
  friend VecI64 operator-(VecI64 a, VecI64 b) { return VecI64(_mm512_sub_epi64(a.v, b.v)); }
  friend VecI64 operator&(VecI64 a, VecI64 b) { return VecI64(_mm512_and_si512(a.v, b.v)); }
  friend VecI64 operator|(VecI64 a, VecI64 b) { return VecI64(_mm512_or_si512(a.v, b.v)); }
  friend VecI64 operator^(VecI64 a, VecI64 b) { return VecI64(_mm512_xor_si512(a.v, b.v)); }
  template <int S> VecI64 shl() const { return VecI64(_mm512_slli_epi64(v, S)); }
  template <int S> VecI64 shr() const { return VecI64(_mm512_srli_epi64(v, S)); }
  template <int S> VecI64 sar() const { return VecI64(_mm512_srai_epi64(v, S)); }
  std::int64_t lane(int i) const {
    alignas(64) std::int64_t t[8];
    _mm512_store_si512(t, v);
    return t[i];
  }
};

template <> struct Vec<double, 8> {
  using value_type = double;
  using mask_type = Mask<double, 8>;
  using int_type = VecI64<8>;
  static constexpr int width = 8;

  __m512d v{};

  Vec() = default;
  Vec(double x) : v(_mm512_set1_pd(x)) {}  // NOLINT: implicit broadcast
  explicit Vec(__m512d x) : v(x) {}

  static Vec load(const double* p) { return Vec(_mm512_load_pd(p)); }
  static Vec loadu(const double* p) { return Vec(_mm512_loadu_pd(p)); }
  void store(double* p) const { _mm512_store_pd(p, v); }
  void storeu(double* p) const { _mm512_storeu_pd(p, v); }
  void stream(double* p) const { _mm512_stream_pd(p, v); }

  static Vec gather(const double* base, const std::int32_t* idx) {
    return Vec(_mm512_i32gather_pd(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx)), base, 8));
  }
  void scatter(double* base, const std::int32_t* idx) const {
    _mm512_i32scatter_pd(base, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx)), v, 8);
  }

  double lane(int i) const {
    alignas(64) double t[8];
    store(t);
    return t[i];
  }
  void set_lane(int i, double x) {
    alignas(64) double t[8];
    store(t);
    t[i] = x;
    v = _mm512_load_pd(t);
  }

  friend Vec operator+(Vec a, Vec b) { return Vec(_mm512_add_pd(a.v, b.v)); }
  friend Vec operator-(Vec a, Vec b) { return Vec(_mm512_sub_pd(a.v, b.v)); }
  friend Vec operator*(Vec a, Vec b) { return Vec(_mm512_mul_pd(a.v, b.v)); }
  friend Vec operator/(Vec a, Vec b) { return Vec(_mm512_div_pd(a.v, b.v)); }
  Vec operator-() const { return Vec(_mm512_xor_pd(v, _mm512_set1_pd(-0.0))); }
  Vec& operator+=(Vec b) { v = _mm512_add_pd(v, b.v); return *this; }
  Vec& operator-=(Vec b) { v = _mm512_sub_pd(v, b.v); return *this; }
  Vec& operator*=(Vec b) { v = _mm512_mul_pd(v, b.v); return *this; }
  Vec& operator/=(Vec b) { v = _mm512_div_pd(v, b.v); return *this; }

  friend mask_type operator<(Vec a, Vec b) { return mask_type(_mm512_cmp_pd_mask(a.v, b.v, _CMP_LT_OQ)); }
  friend mask_type operator<=(Vec a, Vec b) { return mask_type(_mm512_cmp_pd_mask(a.v, b.v, _CMP_LE_OQ)); }
  friend mask_type operator>(Vec a, Vec b) { return mask_type(_mm512_cmp_pd_mask(a.v, b.v, _CMP_GT_OQ)); }
  friend mask_type operator>=(Vec a, Vec b) { return mask_type(_mm512_cmp_pd_mask(a.v, b.v, _CMP_GE_OQ)); }
  friend mask_type operator==(Vec a, Vec b) { return mask_type(_mm512_cmp_pd_mask(a.v, b.v, _CMP_EQ_OQ)); }
  friend mask_type operator!=(Vec a, Vec b) { return mask_type(_mm512_cmp_pd_mask(a.v, b.v, _CMP_NEQ_UQ)); }
};

inline Vec<double, 8> fmadd(Vec<double, 8> a, Vec<double, 8> b, Vec<double, 8> c) { return Vec<double, 8>(_mm512_fmadd_pd(a.v, b.v, c.v)); }
inline Vec<double, 8> fmsub(Vec<double, 8> a, Vec<double, 8> b, Vec<double, 8> c) { return Vec<double, 8>(_mm512_fmsub_pd(a.v, b.v, c.v)); }
inline Vec<double, 8> fnmadd(Vec<double, 8> a, Vec<double, 8> b, Vec<double, 8> c) { return Vec<double, 8>(_mm512_fnmadd_pd(a.v, b.v, c.v)); }
inline Vec<double, 8> min(Vec<double, 8> a, Vec<double, 8> b) { return Vec<double, 8>(_mm512_min_pd(a.v, b.v)); }
inline Vec<double, 8> max(Vec<double, 8> a, Vec<double, 8> b) { return Vec<double, 8>(_mm512_max_pd(a.v, b.v)); }
inline Vec<double, 8> abs(Vec<double, 8> a) { return Vec<double, 8>(_mm512_abs_pd(a.v)); }
inline Vec<double, 8> sqrt(Vec<double, 8> a) { return Vec<double, 8>(_mm512_sqrt_pd(a.v)); }
inline Vec<double, 8> round_nearest(Vec<double, 8> a) { return Vec<double, 8>(_mm512_roundscale_pd(a.v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC)); }
inline Vec<double, 8> floor(Vec<double, 8> a) { return Vec<double, 8>(_mm512_roundscale_pd(a.v, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC)); }
inline Vec<double, 8> select(Mask<double, 8> m, Vec<double, 8> a, Vec<double, 8> b) { return Vec<double, 8>(_mm512_mask_blend_pd(m.m, b.v, a.v)); }
inline double hsum(Vec<double, 8> a) { return _mm512_reduce_add_pd(a.v); }
inline double hmin(Vec<double, 8> a) { return _mm512_reduce_min_pd(a.v); }
inline double hmax(Vec<double, 8> a) { return _mm512_reduce_max_pd(a.v); }

inline VecI64<8> bitcast_to_int(Vec<double, 8> a) { return VecI64<8>(_mm512_castpd_si512(a.v)); }
inline Vec<double, 8> bitcast_to_double(VecI64<8> a) { return Vec<double, 8>(_mm512_castsi512_pd(a.v)); }
inline VecI64<8> to_int(Vec<double, 8> a) { return VecI64<8>(_mm512_cvtpd_epi64(a.v)); }
inline Vec<double, 8> to_double(VecI64<8> a) { return Vec<double, 8>(_mm512_cvtepi64_pd(a.v)); }

#endif  // FINBENCH_HAVE_AVX512

// ---------------------------------------------------------------------------
// Lane permutations
// ---------------------------------------------------------------------------

inline Vec<double, 1> reverse(Vec<double, 1> a) { return a; }
inline Vec<double, 4> reverse(Vec<double, 4> a) {
  return Vec<double, 4>(_mm256_permute4x64_pd(a.v, 0x1B));
}
#if defined(FINBENCH_HAVE_AVX512)
inline Vec<double, 8> reverse(Vec<double, 8> a) {
  const __m512i idx = _mm512_setr_epi64(7, 6, 5, 4, 3, 2, 1, 0);
  return Vec<double, 8>(_mm512_permutexvar_pd(idx, a.v));
}
#endif

// ---------------------------------------------------------------------------
// Generic helpers (work for all specializations)
// ---------------------------------------------------------------------------

// 2^n for integer-valued double n in [-1022, 1023]: build the exponent field
// directly. Used by the vector exp() kernel.
template <class V> inline V pow2n(V n) {
  using I = typename V::int_type;
  I bits = (to_int(n) + I(1023)).template shl<52>();
  return bitcast_to_double(bits);
}

// frexp-style decomposition: a = m * 2^e with m in [1, 2). Assumes a is
// positive, finite and normal (the vector log() kernel guards the rest).
template <class V> inline void split_exponent(V a, V& m, V& e) {
  using I = typename V::int_type;
  I bits = bitcast_to_int(a);
  I exp_field = bits.template shr<52>() & I(0x7ff);
  e = to_double(exp_field - I(1023));
  I mant = (bits & I(0x000fffffffffffffLL)) | I(0x3ff0000000000000LL);
  m = bitcast_to_double(mant);
}

// Software prefetch (the paper's intermediate-level optimization for
// "data structures that do not fit in the cache", Sec. III-B).
inline void prefetch_read(const void* p) { _mm_prefetch(static_cast<const char*>(p), _MM_HINT_T0); }
inline void prefetch_nta(const void* p) { _mm_prefetch(static_cast<const char*>(p), _MM_HINT_NTA); }

// Iota: {0, 1, ..., W-1}.
template <class V> inline V iota() {
  alignas(64) double t[8] = {0, 1, 2, 3, 4, 5, 6, 7};
  if constexpr (V::width == 1) return V(0.0);
  else return V::loadu(t);
}

// Copy-sign: magnitude of a, sign of b.
template <class V> inline V copysign(V a, V b) {
  using I = typename V::int_type;
  const I sign_mask(static_cast<std::int64_t>(0x8000000000000000ULL));
  I bits = (bitcast_to_int(a) & I(0x7fffffffffffffffLL)) | (bitcast_to_int(b) & sign_mask);
  return bitcast_to_double(bits);
}

}  // namespace finbench::simd
