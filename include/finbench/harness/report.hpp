// finbench/harness/report.hpp
//
// Result reporting shared by the bench/ binaries. Each paper exhibit is
// reproduced as a table of optimization levels x platforms:
//
//   - measured host throughput (scalar / 4-wide / 8-wide as applicable)
//   - modeled SNB-EP and KNC projections (efficiency x modeled roofline,
//     the DESIGN.md §1 hardware substitution)
//   - the paper's reported value, where the paper gives one
//   - PASS/FAIL shape checks (orderings and rough ratios)

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "finbench/arch/machine_model.hpp"

namespace finbench::harness {

struct Row {
  std::string label;                  // e.g. "Intermediate (AOS to SOA)"
  double host_items_per_sec = 0.0;    // measured on this machine
  double snb_projected = 0.0;         // modeled (0 = not applicable)
  double knc_projected = 0.0;
  std::optional<double> paper_snb;    // paper-reported values
  std::optional<double> paper_knc;
  // Cost-model metadata (0 = unknown): filled by bench::Projector::make_row
  // and carried into the JSON run report (finbench/obs/run_report.hpp).
  int width = 0;                      // SIMD lanes the measured path used
  double flops_per_item = 0.0;
  double bytes_per_item = 0.0;
  double host_efficiency = 0.0;       // measured / width-adjusted host roofline
};

class Report {
 public:
  Report(std::string exhibit, std::string units) : exhibit_(std::move(exhibit)), units_(std::move(units)) {}

  void add_row(Row row) { rows_.push_back(std::move(row)); }

  struct Check {
    std::string name;
    bool passed;
    std::string detail;
  };

  // Shape checks: named boolean assertions about the result structure
  // ("advanced beats basic", "KNC/SNB ratio within 2x of paper's", ...).
  void add_check(const std::string& name, bool passed, const std::string& detail = "");

  // Free-form context lines printed under the header.
  void add_note(std::string note) { notes_.push_back(std::move(note)); }

  // Render to stdout; returns the number of failed shape checks.
  int print() const;

  // Append rows as CSV to `path` (one line per row, exhibit tagged).
  void write_csv(const std::string& path) const;

  int failed_checks() const;

  // Read accessors for exporters (CSV, the obs JSON run report).
  const std::string& exhibit() const { return exhibit_; }
  const std::string& units() const { return units_; }
  const std::vector<Row>& rows() const { return rows_; }
  const std::vector<std::string>& notes() const { return notes_; }
  const std::vector<Check>& checks() const { return checks_; }

 private:
  std::string exhibit_;
  std::string units_;
  std::vector<std::string> notes_;
  std::vector<Row> rows_;
  std::vector<Check> checks_;
};

// Helper: format items/sec with engineering suffixes (K/M/G).
std::string eng(double v);

// Relative-ratio check helper: is `actual` within [lo, hi] x `expected`?
bool ratio_within(double actual, double expected, double lo, double hi);

// The DESIGN.md §1 hardware substitution, as a tested library facility:
// project a kernel's throughput from this host onto a modeled machine by
// preserving its measured roofline efficiency.
//
//   efficiency = host_measured / host_roofline(width-adjusted)
//   projected  = efficiency x target_roofline(width-adjusted)
//
// Width adjustment scales each machine's compute roof to the SIMD width
// the measured code path actually uses (a scalar reference projected onto
// SNB-EP stays scalar there).
class Projector {
 public:
  Projector(arch::MachineModel host, arch::MachineModel target);

  // Roofline throughput (items/s) of `machine` for a kernel using `width`
  // SIMD lanes, `flops_per_item` DP flops and `bytes_per_item` DRAM bytes.
  static double width_adjusted_roofline(const arch::MachineModel& machine,
                                        double flops_per_item, double bytes_per_item,
                                        int width);

  double efficiency(double host_measured, double flops_per_item, double bytes_per_item,
                    int width) const;
  double project(double host_measured, double flops_per_item, double bytes_per_item,
                 int width) const;

  const arch::MachineModel& host() const { return host_; }
  const arch::MachineModel& target() const { return target_; }

 private:
  arch::MachineModel host_;
  arch::MachineModel target_;
};

}  // namespace finbench::harness
