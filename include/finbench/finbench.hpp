// finbench/finbench.hpp — umbrella header: the whole public API.
//
// Prefer including the specific module headers in library code; this
// convenience header is for applications and exploration.

#pragma once

// Substrates.
#include "finbench/arch/aligned.hpp"
#include "finbench/arch/machine_model.hpp"
#include "finbench/arch/parallel.hpp"
#include "finbench/arch/timing.hpp"
#include "finbench/arch/topology.hpp"
#include "finbench/rng/halton.hpp"
#include "finbench/rng/mt19937.hpp"
#include "finbench/rng/normal.hpp"
#include "finbench/rng/philox.hpp"
#include "finbench/rng/splitmix64.hpp"
#include "finbench/rng/xoshiro256.hpp"
#include "finbench/simd/vec.hpp"
#include "finbench/simd/vecf.hpp"
#include "finbench/vecmath/array_math.hpp"
#include "finbench/vecmath/vecmath.hpp"
#include "finbench/vecmath/vecmathf.hpp"

// Core pricing vocabulary.
#include "finbench/core/analytic.hpp"
#include "finbench/core/io.hpp"
#include "finbench/core/linalg.hpp"
#include "finbench/core/option.hpp"
#include "finbench/core/quadrature.hpp"
#include "finbench/core/term_structure.hpp"
#include "finbench/core/vol_surface.hpp"
#include "finbench/core/workload.hpp"

// Kernels.
#include "finbench/kernels/asian.hpp"
#include "finbench/kernels/barrier.hpp"
#include "finbench/kernels/binomial.hpp"
#include "finbench/kernels/blackscholes.hpp"
#include "finbench/kernels/brownian.hpp"
#include "finbench/kernels/cranknicolson.hpp"
#include "finbench/kernels/heston.hpp"
#include "finbench/kernels/lattice.hpp"
#include "finbench/kernels/lookback.hpp"
#include "finbench/kernels/lsmc.hpp"
#include "finbench/kernels/merton.hpp"
#include "finbench/kernels/montecarlo.hpp"
#include "finbench/kernels/multiasset.hpp"
#include "finbench/kernels/risk.hpp"

// Benchmark harness.
#include "finbench/harness/report.hpp"
