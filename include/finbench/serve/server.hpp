// finbench/serve/server.hpp
//
// The request-stream server core: turns the batch pricing engine into a
// service that absorbs continuous streams of small concurrent requests
// (docs/serve.md). Three pieces:
//
//   submission queue   a bounded MPSC lock-free ring of caller-owned
//                      PricingJob pointers (serve/queue.hpp); submit()
//                      never blocks and never allocates
//   admission control  queue-depth (the ring bound) and in-flight byte
//                      caps; an over-limit submit is shed synchronously
//                      with Status::kResourceExhausted and counted under
//                      robust.admission.shed — backlog is bounded by
//                      construction, not by luck
//   coalescer          the dispatcher drains the backlog and greedily
//                      groups fusable requests (Engine::fusable: same
//                      kernel, layout, batch scalars, knobs) into one
//                      fused batch priced via Engine::price_group — one
//                      layout negotiation, one chunk partition, one
//                      ScratchPool reservation for the whole group
//
// A PricingJob is caller-owned and reusable; outputs land where
// Engine::price would put them (the job's portfolio arrays / result
// values). Completion is signaled by job.done() (wait on it with
// Server::wait) and optionally a callback on the dispatcher thread.
//
// Deadlines: request.deadline_seconds bounds the queue wait — a job whose
// budget expires before dispatch completes immediately with
// kDeadlineExceeded, without blocking anything behind it — and then rides
// robust::CancelToken through the engine as usual during execution (a
// fused group runs under the most urgent member's budget). For one
// end-to-end absolute deadline, arm a caller-owned CancelToken in
// request.cancel instead.
//
// Telemetry: per-request enqueue→complete latency feeds the
// serve.request.seconds histogram (plus serve.queue.seconds for the wait
// component and serve.batch.size for coalescing depth) through the
// obs::Histogram registry, so quantiles ride the v2 run report and the
// OpenMetrics export like every engine metric.
//
// Resilience (finbench/resilience; docs/resilience.md): the dispatcher is
// where retry and brownout live. A job whose request opts in
// (retry.max_attempts > 1) is re-enqueued after a decorrelated-jitter
// backoff when it fails with kKernelError / kResourceExhausted — subject
// to the server's global RetryBudget token bucket, each coalesced member
// retrying independently. The Brownout controller watches queue-delay p99
// and deadline-miss ratio from completed jobs and steps the degradation
// ladder; at L1+ the dispatcher scales each opted-in request's accuracy
// knobs (within its DegradePolicy floors) before coalescing, restores
// them at completion, and marks the result kDegraded with the applied
// knobs; at the top level it sheds requests below the configured priority
// with kResourceExhausted before dispatch.
//
// Steady state is allocation-free: with jobs, queue, and group scratch
// warm, the dispatcher loop performs zero heap allocations per request
// (tests/test_serve.cpp proves it with a counting operator new).

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "finbench/engine/engine.hpp"
#include "finbench/engine/group.hpp"
#include "finbench/engine/request.hpp"
#include "finbench/obs/histogram.hpp"
#include "finbench/resilience/brownout.hpp"
#include "finbench/resilience/retry.hpp"
#include "finbench/robust/status.hpp"
#include "finbench/serve/queue.hpp"

namespace finbench::serve {

struct ServerConfig {
  // Submission ring slots (rounded up to a power of two). A full ring
  // sheds with kResourceExhausted.
  std::size_t queue_capacity = 1024;

  // Admission byte cap: total workload bytes queued or executing. 0
  // disables the byte gate (the ring still bounds request count).
  std::size_t max_inflight_bytes = std::size_t{256} << 20;

  // Coalescing: group fusable queued requests into one fused batch. Off
  // prices every request individually (the latency bench's baseline).
  bool coalesce = true;
  std::size_t max_batch_items = std::size_t{1} << 20;  // options per fused batch
  std::size_t max_batch_requests = 256;                // members per fused batch

  // Extra OpenMetrics labels on the serve.* histograms, e.g.
  // `mode="coalesced",load="500"` — the latency bench uses this to keep
  // per-load-point quantiles apart in one run report.
  std::string histogram_labels;

  // Brownout controller thresholds and hysteresis. Degradation itself is
  // strictly opt-in per request (PricingRequest::degrade); with every
  // request at the default policy the ladder may move but touches nothing.
  resilience::BrownoutConfig brownout{};

  // Global retry budget: tokens earned per first-attempt dispatch and the
  // bucket burst. One retry spends one token, so total attempts under a
  // 100%-failure outage are bounded by primaries * (1 + tokens) + burst.
  double retry_tokens_per_request = 0.1;
  double retry_burst = 8.0;

  // Engine to price on; nullptr = Engine::shared() (the process pool).
  engine::Engine* engine = nullptr;
};

// One caller-owned unit of work. Reusable: once done() flips, the caller
// may read the result, reuse the portfolio, and resubmit. Must stay alive
// and untouched between submit() and done().
class PricingJob {
 public:
  engine::PricingRequest request;  // outputs land in its portfolio arrays
  engine::PricingResult result;    // per-request outcome after completion

  // Set by the server at completion.
  double queue_seconds = 0.0;   // submit → dispatch
  double total_seconds = 0.0;   // submit → complete
  std::size_t batch_size = 0;   // fused group size (1 = priced alone)

  // Optional completion hook, invoked on the dispatcher thread *before*
  // done() flips (so the job is still exclusively the server's).
  using DoneFn = void (*)(void* ctx, PricingJob& job);
  DoneFn on_done = nullptr;
  void* on_done_ctx = nullptr;

  bool done() const { return state_.load(std::memory_order_acquire) == kDone; }

 private:
  friend class Server;
  static constexpr int kIdle = 0, kQueued = 1, kDone = 2;
  std::atomic<int> state_{kIdle};
  std::uint64_t submit_ns_ = 0;
  std::size_t bytes_ = 0;

  // Serve-layer retry state (dispatcher-owned; reset on every submit).
  int attempts_ = 1;            // dispatches so far, including the first
  std::uint64_t retry_ns_ = 0;  // not-before time of the pending retry
  double backoff_s_ = 0.0;      // previous backoff (decorrelated jitter)
  std::uint64_t rng_state_ = 0; // job-local jitter stream

  // Brownout state: original knobs saved across a degraded dispatch.
  std::size_t saved_npath_ = 0;
  int saved_steps_ = 0;
  int degrade_level_ = 0;       // ladder level applied (0 = untouched)
  bool degraded_ = false;
};

class Server {
 public:
  explicit Server(ServerConfig cfg = {});
  ~Server();  // stop() implied

  // Spawn the dispatcher thread. Jobs may be submitted before start();
  // they sit in the ring until the dispatcher drains it.
  void start();

  // Drain the queue, finish in-flight work, join the dispatcher.
  // Idempotent. Submissions after stop() are shed.
  void stop();

  // Thread-safe, non-blocking, allocation-free on the accept path.
  //   kOk                 accepted — the job completes asynchronously
  //   kResourceExhausted  shed by admission control (ring full / byte
  //                       cap / server stopped); the job is untouched
  //                       and may be resubmitted later
  robust::Status submit(PricingJob& job);

  // Block until job.done().
  void wait(const PricingJob& job);

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed_queue = 0;     // ring full
    std::uint64_t shed_bytes = 0;     // byte cap
    std::uint64_t expired_in_queue = 0;
    std::uint64_t batches = 0;        // price_group calls
    std::uint64_t coalesced = 0;      // members of batches with size > 1
    std::uint64_t max_batch = 0;      // largest fused group so far
    std::uint64_t retries = 0;        // re-dispatches performed
    std::uint64_t retry_denied = 0;   // retries refused by the budget
    std::uint64_t brownout_shed = 0;  // priority sheds at the top level
    int brownout_level = 0;           // ladder level at the stats() call
  };
  Stats stats() const;

  // Brownout controller telemetry (level, transitions, last p99/miss).
  resilience::Brownout::Snapshot brownout_snapshot() const { return brownout_.snapshot(); }

  const ServerConfig& config() const { return cfg_; }

 private:
  void run_dispatcher();
  void process(std::uint64_t now_ns);
  // Post-dispatch routing: earn the primary's budget tokens, retry when
  // the outcome and policy allow it, otherwise complete.
  void finish(PricingJob& job, std::uint64_t end_ns, std::size_t batch_size);
  bool maybe_retry(PricingJob& job, std::uint64_t end_ns);
  static void restore_knobs(PricingJob& job);
  // Move due (or, when flushing, all) retries into pending_; returns the
  // earliest not-before time still waiting (0 when none).
  std::uint64_t collect_due_retries(std::uint64_t now_ns, bool flush);
  void complete(PricingJob& job, std::uint64_t end_ns, std::size_t batch_size);
  void signal_done();

  ServerConfig cfg_;
  engine::Engine* engine_;
  BoundedMpscQueue<PricingJob> queue_;
  engine::GroupScratch group_scratch_;

  std::thread dispatcher_;
  std::atomic<bool> accepting_{false};
  std::atomic<bool> stop_{false};
  bool started_ = false;

  std::atomic<std::size_t> inflight_bytes_{0};

  // Dispatcher wake-up handshake (submit only touches the mutex when the
  // dispatcher has declared itself idle).
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<bool> idle_sleeping_{false};

  // Completion signaling for wait().
  std::mutex done_mu_;
  std::condition_variable done_cv_;

  // Dispatcher-private working sets (capacity reused across rounds).
  std::vector<PricingJob*> pending_;
  std::vector<std::uint8_t> claimed_;
  std::vector<PricingJob*> members_;
  std::vector<engine::GroupJob> group_jobs_;

  // Resilience: jobs waiting out a retry backoff (dispatcher-private),
  // the global retry budget, and the brownout controller.
  std::vector<PricingJob*> retryq_;
  resilience::RetryBudget retry_budget_;
  resilience::Brownout brownout_;

  // Cached telemetry handles (resolved once in the constructor).
  obs::Histogram* hist_request_ = nullptr;  // serve.request.seconds
  obs::Histogram* hist_queue_ = nullptr;    // serve.queue.seconds
  obs::Histogram* hist_batch_ = nullptr;    // serve.batch.size

  // Per-server stats (obs counters are process-global; these are local).
  std::atomic<std::uint64_t> n_submitted_{0}, n_completed_{0}, n_shed_queue_{0},
      n_shed_bytes_{0}, n_expired_{0}, n_batches_{0}, n_coalesced_{0}, n_max_batch_{0},
      n_retries_{0}, n_retry_denied_{0}, n_brownout_shed_{0};
};

}  // namespace finbench::serve
