// finbench/serve/queue.hpp
//
// The bounded lock-free submission queue of serve::Server: a fixed ring
// of pointer cells with per-cell sequence numbers (Vyukov's bounded MPMC
// design, used here multi-producer / single-consumer). Producers claim a
// cell with one CAS on the tail and publish with one release store; the
// single consumer pops with plain loads/stores on its own head cursor.
// A full ring fails the push immediately — that failure IS the admission
// signal (the server turns it into Status::kResourceExhausted) — so the
// queue can never grow, allocate, or block a submitting thread.
//
// The queue stores raw pointers and never owns what they point at; the
// element type is only a tag. Capacity is rounded up to a power of two.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "finbench/arch/aligned.hpp"

namespace finbench::serve {

template <class T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (std::size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  // Multi-producer push. False when the ring is full — nothing is
  // retried, nothing blocks: the caller sheds.
  bool try_push(T* item) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.seq.load(std::memory_order_acquire);
      const auto diff =
          static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
          cell.item = item;
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // a full lap behind: ring is full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  // Single-consumer pop; nullptr when empty. Must only ever be called
  // from one thread (the dispatcher).
  T* try_pop() {
    const std::size_t pos = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos + 1) < 0) {
      return nullptr;
    }
    T* item = cell.item;
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return item;
  }

  std::size_t capacity() const { return mask_ + 1; }

  // Racy size estimate (monitoring / idle checks only).
  std::size_t approx_size() const {
    const std::size_t t = tail_.load(std::memory_order_acquire);
    const std::size_t h = head_.load(std::memory_order_acquire);
    return t >= h ? t - h : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> seq{0};
    T* item = nullptr;
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_ = 0;
  alignas(arch::kCacheLineBytes) std::atomic<std::size_t> tail_{0};  // producers
  alignas(arch::kCacheLineBytes) std::atomic<std::size_t> head_{0};  // consumer
};

}  // namespace finbench::serve
