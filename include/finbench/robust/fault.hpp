// finbench/robust/fault.hpp
//
// Deterministic, seed-keyed fault injection. Every guard / fallback /
// deadline path in the engine is exercisable on demand, in tests and in
// CI, instead of waiting for production to produce the failure:
//
//   poison    input poisoning — selected options get a NaN/Inf/negative
//             field (applied to the *workload* by the harness that owns
//             it: pricectl --inject, tests)
//   corrupt   forced non-finite kernel outputs — selected outputs are
//             overwritten with NaN/Inf after the kernel ran, before the
//             guard pass (engine-side)
//   throw     injected kernel exceptions — selected chunks throw
//             InjectedKernelFault from inside the chunk body (engine-side)
//   slow      artificially slow chunks — selected chunks sleep before
//             executing, the deterministic way to exercise deadlines
//             (engine-side)
//
// Decisions are pure functions of (seed, site, index) via splitmix64, so
// a plan reproduces exactly across runs, thread counts, and schedules.
// Plans parse from a compact spec string (pricectl --inject):
//
//   "seed=7,poison=0.01,corrupt=0.002,throw=0.1,slow=0.05,slow_ms=30"

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>

#include "finbench/core/portfolio.hpp"
#include "finbench/robust/status.hpp"

namespace finbench::robust {

// The exception injected kernels throw; distinct so tests and logs can
// tell injected faults from real ones.
class InjectedKernelFault : public std::runtime_error {
 public:
  explicit InjectedKernelFault(const std::string& what) : std::runtime_error(what) {}
};

struct FaultPlan {
  std::uint64_t seed = 1;
  double poison = 0.0;    // fraction of options whose inputs get poisoned
  double corrupt = 0.0;   // fraction of outputs forced non-finite
  double throw_rate = 0.0;  // fraction of chunks that throw
  double slow = 0.0;        // fraction of chunks that sleep
  double slow_ms = 20.0;    // sleep per slow chunk

  bool any() const {
    return poison > 0.0 || corrupt > 0.0 || throw_rate > 0.0 || slow > 0.0;
  }
  // Engine-side injection only (poisoning is workload-side).
  bool any_engine_side() const { return corrupt > 0.0 || throw_rate > 0.0 || slow > 0.0; }

  // Deterministic decision: does fault `site` hit `index` at `rate`?
  // site disambiguates the streams (0 = poison, 1 = corrupt, 2 = throw,
  // 3 = slow) so e.g. poisoned options and corrupted outputs differ.
  bool hits(std::uint32_t site, std::uint64_t index, double rate) const;

  // Spec-string round trip. parse accepts the format above (unknown keys
  // and malformed numbers are errors, not silent zeros).
  static Expected<FaultPlan> parse(std::string_view spec);
  std::string to_spec() const;
};

// Poison the inputs of a workload view in place per plan.poison: the hit
// options rotate through NaN spot, +Inf strike, negative expiry, NaN vol
// (specs layouts), denormal spot. Mutates BS-layout and specs spans alike
// — callers own the workload (pricectl builds its own portfolio; tests
// poison copies). Returns the number of poisoned options and bumps
// "robust.inject.poisoned". kSpecs requires a *mutable* span, so this
// overload takes the spec array directly.
std::size_t inject_input_faults(std::span<core::OptionSpec> specs, const FaultPlan& plan);
std::size_t inject_input_faults(const core::PortfolioView& bs_view, const FaultPlan& plan);

}  // namespace finbench::robust
