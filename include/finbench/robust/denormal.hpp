// finbench/robust/denormal.hpp
//
// Per-thread denormal policy. Subnormal doubles make SSE/AVX arithmetic
// take microcode assists (~100x slowdown per op), and whether a worker
// thread flushes them is per-thread MXCSR state — so a pool where some
// threads flush and some don't produces timing *and* bitwise result
// differences depending on which participant ran a chunk. The pool
// therefore installs one policy on every worker at startup and mirrors it
// onto the caller for the duration of its participation, and the run
// report records which policy was active.

#pragma once

#include <cstdint>
#include <string_view>

namespace finbench::robust {

// Install flush-to-zero + denormals-are-zero on the calling thread.
// No-op (returns false) on targets without SSE MXCSR.
bool install_denormal_ftz() noexcept;

// Save / restore the calling thread's full floating-point environment
// word (MXCSR on x86). Used to scope the pool policy around the caller's
// participation without leaking it into user code.
std::uint32_t save_fp_state() noexcept;
void restore_fp_state(std::uint32_t state) noexcept;

// The policy string recorded in the run report: "ftz+daz" when
// install_denormal_ftz is effective on this target, "ieee" otherwise.
std::string_view denormal_mode_string() noexcept;

}  // namespace finbench::robust
