// finbench/robust/status.hpp
//
// The error taxonomy of the robust pricing path: a Status carries a coarse
// machine-readable code plus a human-readable message, and Expected<T>
// carries either a value or the Status explaining its absence. The engine
// reports workload, registry, layout, deadline, and kernel problems as
// Status codes on the PricingResult instead of throwing — a malformed
// request degrades one pricing, never the process.
//
// Code semantics (docs/robustness.md has the full contract):
//
//   kOk                clean run, full results
//   kDegraded          full results, but something had to bend: options
//                      were clamped/skipped by the sanitizer, or a chunk
//                      was quarantined and re-priced through the fallback
//                      chain — per-option / per-chunk detail rides on the
//                      result
//   kInvalidArgument   the request itself is malformed (empty workload,
//                      non-convertible layout)
//   kInvalidInput      the workload data failed sanitization under the
//                      kReject policy (per-option mask says which/why)
//   kNotFound          unknown kernel id
//   kDeadlineExceeded  the deadline/cancel token expired mid-run: partial
//                      results, per-chunk status says what completed
//   kResourceExhausted the request was shed by admission control before
//                      any pricing happened (serve::Server queue-depth or
//                      in-flight byte caps) — nothing ran, resubmit later
//   kKernelError       a kernel failed (threw, or produced guarded-out
//                      garbage) and the fallback chain could not repair it
//
// ok() is true for kOk and kDegraded: both deliver a usable full result.

#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace finbench::robust {

enum class StatusCode {
  kOk = 0,
  kDegraded,
  kInvalidArgument,
  kInvalidInput,
  kNotFound,
  kDeadlineExceeded,
  kResourceExhausted,
  kKernelError,
};

constexpr std::string_view to_string(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kDegraded: return "degraded";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kInvalidInput: return "invalid_input";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kKernelError: return "kernel_error";
  }
  return "?";
}

class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  // A default-constructed Status is kOk with no message.
  static Status degraded(std::string msg) { return {StatusCode::kDegraded, std::move(msg)}; }
  static Status invalid_argument(std::string msg) {
    return {StatusCode::kInvalidArgument, std::move(msg)};
  }
  static Status invalid_input(std::string msg) {
    return {StatusCode::kInvalidInput, std::move(msg)};
  }
  static Status not_found(std::string msg) { return {StatusCode::kNotFound, std::move(msg)}; }
  static Status deadline_exceeded(std::string msg) {
    return {StatusCode::kDeadlineExceeded, std::move(msg)};
  }
  static Status resource_exhausted(std::string msg) {
    return {StatusCode::kResourceExhausted, std::move(msg)};
  }
  static Status kernel_error(std::string msg) {
    return {StatusCode::kKernelError, std::move(msg)};
  }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Usable full result (possibly via degradation). Partial or absent
  // results — every other code — are not ok.
  bool ok() const { return code_ == StatusCode::kOk || code_ == StatusCode::kDegraded; }
  bool degraded() const { return code_ == StatusCode::kDegraded; }

  // Reuse-friendly reset: clears without releasing message capacity, so a
  // steady-state re-priced result performs no heap traffic.
  void reset() {
    code_ = StatusCode::kOk;
    message_.clear();
  }
  void set(StatusCode code, std::string_view message) {
    code_ = code;
    message_.assign(message);
  }

  std::string to_string() const {
    std::string s{robust::to_string(code_)};
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Expected<T>: a value or the Status explaining why there is none. Small
// and deliberately boring — no exceptions, no heap beyond what T needs.
template <class T>
class Expected {
 public:
  Expected(T value) : value_(std::move(value)), has_value_(true) {}  // NOLINT
  Expected(Status status) : status_(std::move(status)) {}            // NOLINT

  bool has_value() const { return has_value_; }
  explicit operator bool() const { return has_value_; }

  const T& value() const { return value_; }
  T& value() { return value_; }
  const T& operator*() const { return value_; }
  const T* operator->() const { return &value_; }

  // Status of a failed Expected; Status::ok() when a value is present.
  const Status& status() const { return status_; }

  T value_or(T fallback) const { return has_value_ ? value_ : std::move(fallback); }

 private:
  T value_{};
  Status status_{};
  bool has_value_ = false;
};

}  // namespace finbench::robust
