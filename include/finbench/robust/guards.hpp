// finbench/robust/guards.hpp
//
// Post-kernel output guardrails. After a kernel (or one chunk of it) has
// run, the engine scans what it produced:
//
//   kFinite  every output must be a finite double/float — the cheap scan
//            that catches a poisoned lane, a diverged solver, or an
//            injected fault (the engine's default)
//   kFull    kFinite plus no-arbitrage bounds for European vanilla
//            outputs: intrinsic-style lower bounds and the spot/strike
//            upper bounds (call <= S e^{-qT}, put <= K e^{-rT}), with a
//            relative slack for discretization error
//   kOff     trust the kernel
//
// A failing chunk is quarantined and re-priced through the variant's
// fallback chain (engine.cpp); a failing Black–Scholes option is repaired
// by the scalar closed form — the chain's terminal reference. Guard events
// land in the "robust.guard.*" counters and per-chunk statuses.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

#include "finbench/core/option.hpp"
#include "finbench/core/portfolio.hpp"

namespace finbench::robust {

enum class GuardMode { kOff, kFinite, kFull };

constexpr std::string_view to_string(GuardMode m) {
  switch (m) {
    case GuardMode::kOff: return "off";
    case GuardMode::kFinite: return "finite";
    case GuardMode::kFull: return "full";
  }
  return "?";
}

struct GuardPolicy {
  GuardMode mode = GuardMode::kFinite;
  // Relative slack on the kFull no-arbitrage bounds (lattice/PDE
  // discretization legitimately sags slightly below the hard bound).
  double bound_slack = 5e-3;
  // kFull bound checks only apply to deterministic European vanilla
  // pricers; statistical estimators (Monte Carlo) get kFinite regardless,
  // since a finite-sample mean can legally poke past the bounds.
  bool bounds_enabled(bool statistical) const {
    return mode == GuardMode::kFull && !statistical;
  }
};

// Number of guard violations among values[i] for specs[i + offset_unused],
// honoring the sanitizer mask (masked-out options are exempt: their NaN is
// deliberate). specs may be empty (paths workloads) — then only finiteness
// is checked. Returns the violation count; `first` (when non-null)
// receives the index of the first violation relative to `values`.
std::size_t guard_specs_range(std::span<const core::OptionSpec> specs,
                              std::span<const double> values, const GuardPolicy& policy,
                              bool statistical, std::span<const std::uint8_t> mask,
                              std::size_t mask_offset, std::size_t* first = nullptr);

// --- Black–Scholes layout access --------------------------------------------
//
// The BS guard/repair path needs per-option field access across every BS
// layout (AOS, SOA, f32 SOA, lane-blocked AoSoA). These helpers are the
// one place that layout fan-out lives.

struct BsElem {
  double spot = 0.0, strike = 0.0, years = 0.0;
  double call = 0.0, put = 0.0;
  double rate = 0.0, vol = 0.0, dividend = 0.0;
};

// True when `view` is one of the BS batch layouts these helpers handle.
bool is_bs_layout(const core::PortfolioView& view);

BsElem bs_elem(const core::PortfolioView& view, std::size_t i);
void bs_store_outputs(const core::PortfolioView& view, std::size_t i, double call, double put);
void bs_store_inputs(const core::PortfolioView& view, std::size_t i, double spot, double strike,
                     double years);

// Guard the outputs of a whole BS batch view and repair every violating
// option in place with the scalar Black–Scholes closed form (the fallback
// chain's terminal reference). Masked options are exempt. Returns the
// number of repaired options. `f32` outputs are checked and repaired at
// float precision.
std::size_t guard_and_repair_bs(const core::PortfolioView& view, const GuardPolicy& policy,
                                std::span<const std::uint8_t> mask);

}  // namespace finbench::robust
