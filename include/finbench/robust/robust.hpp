// finbench/robust/robust.hpp — umbrella header for the robustness layer.
//
// finbench::robust is the input-guard / fault-tolerance subsystem of the
// pricing engine: a Status error taxonomy, a workload sanitizer, output
// guardrails with fallback repricing, cooperative deadlines, a
// deterministic fault-injection harness, and the pool's denormal policy.
// docs/robustness.md is the narrative contract.

#pragma once

#include "finbench/robust/deadline.hpp"
#include "finbench/robust/denormal.hpp"
#include "finbench/robust/fault.hpp"
#include "finbench/robust/guards.hpp"
#include "finbench/robust/sanitize.hpp"
#include "finbench/robust/status.hpp"
