// finbench/robust/deadline.hpp
//
// Cooperative per-request deadlines and cancellation. A CancelToken is a
// cheap poll-only object: the engine arms one per request (from
// PricingRequest::deadline_seconds and/or the caller's own token) and the
// thread pool polls it at every chunk boundary — an expired token makes
// the remaining chunks complete as "not run" instead of executing, so a
// runaway request returns partial results with per-chunk status in at most
// one chunk's worth of extra time per participant. Nothing is ever
// interrupted mid-kernel: cancellation is cooperative by design (kernels
// stay simple, and a chunk is the engine's unit of accounting anyway).

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace finbench::robust {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Explicit cancellation (e.g. a client hung up). Thread-safe.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept { return cancelled_.load(std::memory_order_relaxed); }

  // Arm a deadline `seconds` from now (steady clock). seconds <= 0 clears.
  void set_deadline_after(double seconds) noexcept {
    if (seconds <= 0.0) {
      deadline_ns_.store(0, std::memory_order_relaxed);
      return;
    }
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const std::int64_t ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() +
        static_cast<std::int64_t>(seconds * 1e9);
    deadline_ns_.store(ns, std::memory_order_relaxed);
  }

  // Chain to a caller-owned token: this token also reports expired when
  // the parent does. Set before the run starts; not thread-safe to change
  // while polled.
  void set_parent(const CancelToken* parent) noexcept { parent_ = parent; }

  // The poll the pool makes at chunk boundaries: cancelled, past deadline,
  // or parent expired. A handful of relaxed loads and (when a deadline is
  // armed) one steady_clock read — cheap enough for per-chunk use.
  bool expired() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d != 0) {
      const auto now = std::chrono::steady_clock::now().time_since_epoch();
      if (std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() >= d) return true;
    }
    return parent_ != nullptr && parent_->expired();
  }

  // Re-arm for the next request (keeps the parent link).
  void reset() noexcept {
    cancelled_.store(false, std::memory_order_relaxed);
    deadline_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  // 0 = no deadline
  const CancelToken* parent_ = nullptr;
};

}  // namespace finbench::robust
