// finbench/robust/sanitize.hpp
//
// The workload sanitizer: one scan over a core::PortfolioView that flags
// per-option input faults (non-finite fields, non-positive spot / strike /
// vol / expiry, denormal and absurd magnitudes) and applies the request's
// policy:
//
//   kOff    trust the workload (the raw-benchmark mode; garbage in,
//           garbage out, exactly as a direct kernel call behaves)
//   kReject any fault fails the whole request with kInvalidInput and a
//           per-option fault mask — nothing is priced
//   kClamp  finite-but-out-of-domain fields are clamped into the sane
//           envelope (and counted); non-finite fields cannot be clamped
//           and demote the option to skipped
//   kSkip   faulty options are masked out: they price as a benign
//           placeholder (so SIMD lanes and int casts stay well-defined)
//           and their outputs are forced to quiet NaN afterwards
//
// The scan mutates BS-layout data in place under kClamp/kSkip (the spans
// are mutable precisely because kernels write through them); kSpecs
// workloads are immutable through their view, so the engine prices a
// sanitized arena copy instead. Fault counts flow into the obs counters
// "robust.sanitize.*" and the run report's `robust` object.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "finbench/core/option.hpp"
#include "finbench/core/portfolio.hpp"

namespace finbench::robust {

enum class SanitizePolicy { kOff, kReject, kClamp, kSkip };

constexpr std::string_view to_string(SanitizePolicy p) {
  switch (p) {
    case SanitizePolicy::kOff: return "off";
    case SanitizePolicy::kReject: return "reject";
    case SanitizePolicy::kClamp: return "clamp";
    case SanitizePolicy::kSkip: return "skip";
  }
  return "?";
}

// Per-option fault bits (OR-ed into the mask).
enum OptionFault : std::uint8_t {
  kFaultNone = 0,
  kFaultNonFinite = 1u << 0,  // NaN / Inf in any field
  kFaultDomain = 1u << 1,     // non-positive spot/strike/vol/expiry, |rate| > 1
  kFaultMagnitude = 1u << 2,  // denormal or absurd (> 1e15) magnitude
  kFaultClamped = 1u << 4,    // sanitizer repaired the option in place
  kFaultSkipped = 1u << 5,    // sanitizer masked the option out entirely
};

// The sane envelope clamped values land in. Wide on purpose: the
// sanitizer polices representability, not market plausibility.
struct SanitizeEnvelope {
  double min_positive = 1e-12;  // spot/strike/vol/years floor
  double max_magnitude = 1e15;  // spot/strike ceiling
  double max_vol = 10.0;        // 1000% vol
  double max_years = 200.0;
  double max_abs_rate = 1.0;    // +-100% rates
};

struct SanitizeReport {
  std::size_t scanned = 0;
  std::size_t faulty = 0;    // options with any fault bit
  std::size_t clamped = 0;   // repaired in place / in the copy
  std::size_t skipped = 0;   // masked out (includes non-finite under kClamp)
  // One byte of OptionFault bits per option; empty when no fault was
  // found (the common case allocates nothing).
  std::vector<std::uint8_t> mask;

  bool clean() const { return faulty == 0; }
  void reset() {
    scanned = faulty = clamped = skipped = 0;
    mask.clear();
  }
};

// Scan (and under kClamp/kSkip repair in place) a mutable-span workload
// view. The view is taken by mutable reference because the repair of a
// faulty *shared* BS parameter (batch-wide rate/vol) lands on the view's
// scalar members — the engine passes its per-request working copy, so the
// caller's own view object is never touched (array data is, by design).
// kSpecs views are scanned but never mutated — use sanitize_specs for the
// policy-applying copy. Updates the "robust.sanitize.*" counters.
void sanitize(core::PortfolioView& view, SanitizePolicy policy, SanitizeReport& out,
              const SanitizeEnvelope& env = {});

// Policy application for kSpecs workloads: writes a sanitized copy of
// `src` into `dst` (same length; pre-carved from the request arena).
// Clamped options are repaired, skipped options are replaced by a benign
// placeholder; `out.mask` says which is which.
void sanitize_specs(std::span<const core::OptionSpec> src, std::span<core::OptionSpec> dst,
                    SanitizePolicy policy, SanitizeReport& out,
                    const SanitizeEnvelope& env = {});

// Fault bits for one spec (no mutation, no counters) — the scan primitive.
std::uint8_t classify(const core::OptionSpec& o, const SanitizeEnvelope& env = {});

}  // namespace finbench::robust
