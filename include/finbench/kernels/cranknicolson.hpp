// finbench/kernels/cranknicolson.hpp
//
// Kernel 5: Crank–Nicolson finite-difference pricing of American options
// with a projected Gauss–Seidel SOR (PSOR) implicit solver (paper
// Sec. IV-E, Fig. 7/8, Lis. 6/7).
//
// The Black–Scholes PDE is reduced to the heat equation u_tau = u_xx via
// the standard transform x = ln(S/K), tau = sigma^2 (T-t)/2,
// V = K u e^{-(q-1)x/2 - (q+1)^2 tau/4} with q = 2r/sigma^2. Crank–Nicolson
// with mesh ratio alpha = dtau/dx^2 gives, per time step,
//
//   explicit half:  B_j = (1-alpha) U_j + alpha/2 (U_{j+1} + U_{j-1})
//   implicit half:  (1+alpha) u_j - alpha/2 (u_{j-1} + u_{j+1}) = B_j
//
// solved by PSOR with the early-exercise obstacle G_j = transformed payoff:
//
//   y     = (B_j + alpha/2 (u_{j-1} + u_{j+1})) / (1 + alpha)
//   u_j  <- max(G_j, u_j + omega (y - u_j))
//
// The GSOR recurrence has dependences (k, j) <- (k, j-1), (k-1, j+1)
// (iteration k, grid point j), so points with equal t = 2k + j are
// independent (Fig. 7). The SIMD variants run W consecutive convergence
// iterations as SIMD lanes along that wavefront, checking convergence
// every W iterations — the transformation the paper notes a compiler
// cannot legally perform.
//
// Variants (Fig. 8's bars):
//   reference       — scalar Lis. 6/7, convergence checked every iteration
//   reference_blocked — scalar, but convergence checked every W iterations;
//                     produces iteration-identical results to the wavefront
//                     variants (used for equivalence testing)
//   wavefront       — SIMD lanes along the t = 2k + j diagonal; U/B/G
//                     accessed with stride-2 gathers ("Manual SIMD" bar)
//   wavefront_split — parity-split (even/odd j) storage of U, B, G makes
//                     every wavefront access unit-stride ("Data structure
//                     transform" bar)
//
// European pricing via a Thomas tridiagonal solve of the same
// discretization is provided as the validation baseline (converges to the
// closed-form Black–Scholes price).

#pragma once

#include <atomic>
#include <span>
#include <utility>
#include <vector>

#include "finbench/core/option.hpp"
#include "finbench/vecmath/array_math.hpp"

namespace finbench::kernels::cn {

using vecmath::Width;

struct GridSpec {
  int num_prices = 257;       // spatial points (including boundaries)
  int num_steps = 1000;       // time steps
  double halfwidth = 0.0;     // x half-width; 0 => auto (5 sigma sqrt(T) + moneyness)
  double epsilon = 1e-12;     // PSOR convergence: sum of squared updates,
                              // relative to the squared payoff scale
  double omega0 = 1.0;        // initial SOR relaxation
  double domega = 0.05;       // relaxation adaptation step (Lis. 6)
};

struct SolveResult {
  double price = 0.0;
  long total_iterations = 0;  // PSOR iterations summed over all time steps
};

SolveResult price_reference(const core::OptionSpec& opt, const GridSpec& grid);
SolveResult price_reference_blocked(const core::OptionSpec& opt, const GridSpec& grid,
                                    int block);
SolveResult price_wavefront(const core::OptionSpec& opt, const GridSpec& grid,
                            Width w = Width::kAuto);
SolveResult price_wavefront_split(const core::OptionSpec& opt, const GridSpec& grid,
                                  Width w = Width::kAuto);

// Extension beyond the paper: two options' wavefronts interleaved in one
// loop. The wavefront's throughput limiter is the serial store->load
// dependence between consecutive steps of ONE solve; running two
// independent solves in lockstep doubles the instruction-level parallelism
// without touching the algorithm. Both options must use the same grid.
std::pair<SolveResult, SolveResult> price_wavefront_split_pair(const core::OptionSpec& a,
                                                               const core::OptionSpec& b,
                                                               const GridSpec& grid,
                                                               Width w = Width::kAuto);

// European baseline: same grid, Thomas tridiagonal solve, no obstacle.
double price_european_thomas(const core::OptionSpec& opt, const GridSpec& grid);

// Generalized theta-scheme European solve on the same transformed grid:
// theta = 0 explicit Euler (conditionally stable: needs alpha <= 1/2),
// theta = 1 fully implicit (O(dtau)), theta = 1/2 Crank–Nicolson
// (O(dtau^2)). Exposed to measure the stability/accuracy trade the paper's
// Sec. II summarizes ("the solution is then marched backwards").
// `rannacher` replaces the first two steps with fully implicit ones —
// the standard production damping for the payoff-kink oscillation that
// plain Crank–Nicolson carries into the greeks.
double price_european_theta(const core::OptionSpec& opt, const GridSpec& grid, double theta,
                            bool rannacher = false);

// The mesh ratio alpha = dtau/dx^2 the grid implies for this option (the
// explicit scheme's stability number).
double mesh_ratio(const core::OptionSpec& opt, const GridSpec& grid);

// Early-exercise boundary of an American put: out[k] is the critical spot
// S*(tau_k) at time-to-expiry tau_k = (k+1) * T / num_steps — exercise is
// optimal at or below it. Size num_steps. The boundary rises to the strike
// as expiry approaches (out is non-increasing in k, bounded by K).
std::vector<double> exercise_boundary(const core::OptionSpec& opt, const GridSpec& grid);

// Extension: Brennan–Schwartz direct solver for the American *put* — the
// linear-complementarity problem of each CN step solved exactly in O(M)
// with no iteration (valid because a vanilla put's exercise region is a
// single interval at low prices; Jaillet–Lamberton–Lapeyre 1990). The
// non-iterative baseline PSOR is measured against. Throws for calls.
SolveResult price_american_brennan_schwartz(const core::OptionSpec& opt, const GridSpec& grid);

// --- Pipelined GSOR sweeps: intra-option task parallelism --------------------
//
// The (k, j) <- (k, j-1), (k-1, j+1) dependence that the SIMD variants
// exploit diagonally also admits a coarser decomposition: each *whole
// convergence sweep* is one unit of work, and sweep k may process point j
// as soon as sweep k-1 has finished point j+1 (its read of u[j] is then in
// the past, and u[j+1] holds the sweep-(k-1) value the GSOR recurrence
// wants). A block of sweeps therefore pipelines over one shared in-place
// u array — each sweep is a task, synchronized only through its
// predecessor's monotonic progress index — and every point is computed by
// the identical expression and in the identical order as
// price_reference_blocked(block), so the result (price AND iteration
// count) is bitwise-equal to that flat scalar variant.
//
// The executor contract matters for deadlock freedom: sweeps handed to a
// WaveRunner must run either serially in index order, or concurrently
// such that sweep k's executor only ever waits on an *earlier-spawned*
// sweep (the engine's FIFO TaskGroup guarantees this; see
// finbench/engine/task_group.hpp).

// Hard cap on sweeps per pipelined block (engine TaskGroup capacity and
// stack arrays bound this).
inline constexpr int kMaxWaveBlock = 16;

// One convergence sweep of the pipelined block.
struct WaveSweep {
  double* u;            // shared in-place iterate
  const double* b;      // explicit half-step RHS
  const double* g;      // obstacle
  int m = 0;            // grid points
  double alpha = 0.0;   // mesh ratio
  double omega = 1.0;   // SOR relaxation
  double* err_out = nullptr;           // squared-update error of this sweep
  std::atomic<long>* progress = nullptr;       // published: last point done
  const std::atomic<long>* prev = nullptr;     // predecessor (null: sweep 0)
};

// Execute one sweep: waits (spinning) for `prev` to pass each point before
// touching it, publishes `progress` monotonically, and finishes by storing
// m so successors drain. Safe to call in index order on one thread.
void run_wave_sweep(const WaveSweep& s);

// Executes sweeps[0..n) subject to the contract above; all complete on
// return.
using WaveRunner = void (*)(void* ctx, WaveSweep* sweeps, int nsweeps);

// In-order serial runner (the flat fallback); ctx is unused.
void serial_wave_runner(void* ctx, WaveSweep* sweeps, int nsweeps);

// American PSOR solve with `block` pipelined sweeps per convergence check.
// Bitwise-equal to price_reference_blocked(opt, grid, block) for any
// conforming runner. block must be in [1, kMaxWaveBlock].
SolveResult price_wavefront_tasked(const core::OptionSpec& opt, const GridSpec& grid,
                                   int block, WaveRunner runner, void* ctx);

// Batch drivers (OpenMP across options), matching Fig. 8's setup.
enum class Variant {
  kReference,
  kWavefront,
  kWavefrontSplit,
  kWavefrontSplitPaired,  // options processed two at a time (ILP pairing)
};
void price_batch(std::span<const core::OptionSpec> opts, const GridSpec& grid, Variant v,
                 std::span<double> out, Width w = Width::kAuto);

// ~8 flops per PSOR point update + explicit step; used for rooflines.
inline double flops_per_option_estimate(const GridSpec& g, double avg_iters_per_step) {
  const double interior = g.num_prices - 2;
  return g.num_steps * interior * (8.0 * avg_iters_per_step + 6.0);
}

}  // namespace finbench::kernels::cn
