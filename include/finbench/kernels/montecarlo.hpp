// finbench/kernels/montecarlo.hpp
//
// Kernel 4: Monte Carlo European option pricing (paper Sec. IV-D, Lis. 5,
// Table II). Each option is priced by averaging the discounted payoff of
// npath geometric-Brownian terminal values:
//
//   S_T = S * exp((r - sigma^2/2) T + sigma sqrt(T) Z),  Z ~ N(0,1)
//
// Two RNG regimes, matching Table II's rows:
//   *stream*   — normals are pre-generated and streamed from memory; the
//                same array is reused for every option (compute-bound:
//                the exp dominates)
//   *computed* — normals are generated on the fly, a fresh set per option
//                (RNG-dominated)
//
// Variants:
//   reference — scalar inner loop, exactly Lis. 5
//   basic     — reference + "#pragma omp parallel for" over options and
//               "#pragma omp simd reduction" + unroll on the path loop (the
//               paper's point: basic pragmas get this kernel to peak)
//   optimized — explicit SIMD over paths with Vec classes + vecmath::exp,
//               selectable width; computed-RNG flavor interleaves
//               chunked Philox/ICDF generation with integration
//
// Unlike Lis. 5 (which sums raw payoffs), results are returned discounted,
// with the standard error of the estimate.

#pragma once

#include <cstdint>
#include <span>

#include "finbench/core/option.hpp"
#include "finbench/vecmath/array_math.hpp"

namespace finbench::core {
class ScratchPool;  // finbench/core/scratch_pool.hpp
}

namespace finbench::kernels::mc {

using vecmath::Width;

// Normals per cache-resident RNG chunk in the computed flavors — also the
// per-worker scratch slot size engines pre-carve so steady-state pricing
// never allocates (the kernels lease from `scratch` when provided and
// fall back to a local aligned buffer otherwise).
inline constexpr std::size_t kRngChunk = 4096;

struct McResult {
  double price = 0.0;      // discounted mean payoff
  double std_error = 0.0;  // standard error of the mean (discounted)
};

// ~10 flops + 1 exp (~20 flops) per path.
inline constexpr double kFlopsPerPath = 30.0;

// --- stream-RNG flavor: z.size() >= npath, shared across options ----------
void price_reference_stream(std::span<const core::OptionSpec> opts, std::span<const double> z,
                            std::size_t npath, std::span<McResult> out);
void price_basic_stream(std::span<const core::OptionSpec> opts, std::span<const double> z,
                        std::size_t npath, std::span<McResult> out);
void price_optimized_stream(std::span<const core::OptionSpec> opts, std::span<const double> z,
                            std::size_t npath, std::span<McResult> out, Width w = Width::kAuto);

// --- Path-block partials: intra-option task parallelism ---------------------
// Raw payoff moments of one option over the normal block z: v0 = sum of
// payoffs, v1 = sum of squared payoffs — the same accumulation
// integrate_paths performs, cut at a block boundary. Combining per-block
// partials in block order and finalizing yields a *deterministic* price
// for a fixed block split, but NOT one bitwise-equal to the flat
// single-sweep accumulation (the reduction tree differs); callers that
// need bitwise-stable output across task on/off must keep npath below the
// engine's task threshold or pin tasks off.
struct McMoments {
  double v0 = 0.0;
  double v1 = 0.0;
};
McMoments integrate_stream_partial(const core::OptionSpec& opt, std::span<const double> z,
                                   Width w = Width::kAuto);
McResult finalize_moments(const core::OptionSpec& opt, const McMoments& m, std::size_t npath);

// --- computed-RNG flavor: a fresh Philox substream per option --------------
// Option o draws from NormalStream(seed, stream_base + o), so a caller
// pricing a sub-range [b, e) of a larger portfolio passes stream_base = b
// and reproduces the whole-batch numbers exactly (the engine's chunked
// execution relies on this).
void price_reference_computed(std::span<const core::OptionSpec> opts, std::size_t npath,
                              std::uint64_t seed, std::span<McResult> out,
                              std::uint64_t stream_base = 0,
                              core::ScratchPool* scratch = nullptr);
void price_optimized_computed(std::span<const core::OptionSpec> opts, std::size_t npath,
                              std::uint64_t seed, std::span<McResult> out,
                              Width w = Width::kAuto, std::uint64_t stream_base = 0,
                              core::ScratchPool* scratch = nullptr);

// --- Variance reduction (extension; Glasserman ch. 4) -----------------------
// Antithetic pairs (+Z, -Z) halve the variance of monotone payoffs; the
// optional control variate regresses the payoff on the terminal stock
// (whose discounted mean S e^{-qT} is known exactly) and removes the
// correlated component. `npath` counts total paths (antithetic pairs use
// npath/2 draws). std_error reflects the reduced estimator.
void price_variance_reduced(std::span<const core::OptionSpec> opts, std::size_t npath,
                            std::uint64_t seed, std::span<McResult> out,
                            bool antithetic = true, bool control_variate = true,
                            std::uint64_t stream_base = 0,
                            core::ScratchPool* scratch = nullptr);

// --- Pathwise greeks (extension; Glasserman ch. 7) ---------------------------
// Unbiased delta and vega estimators from the same terminal draws as the
// price: for a call, d payoff/d S0 = 1{S_T > K} S_T / S0 and
// d payoff/d sigma = 1{S_T > K} S_T (ln(S_T/S0) - (r - q + sigma^2/2) T)/sigma.
// Gamma has no pathwise estimator (the payoff kink); it is returned via the
// likelihood-ratio-mixed estimator LRPW: gamma = e^{-rT} E[1{ITM} z /
// (S0 sigma sqrt(T))] style weight.
struct McGreeks {
  double price = 0.0;
  double delta = 0.0;
  double vega = 0.0;
  double gamma = 0.0;
  double delta_se = 0.0;  // standard errors of the estimators
  double vega_se = 0.0;
};

void greeks_pathwise(std::span<const core::OptionSpec> opts, std::size_t npath,
                     std::uint64_t seed, std::span<McGreeks> out);

}  // namespace finbench::kernels::mc
