// finbench/kernels/blackscholes.hpp
//
// Kernel 1: closed-form Black–Scholes European pricing (paper Sec. IV-A,
// Fig. 4). Prices `nopt` call/put pairs from 3 inputs per option (S, K, T)
// with batch-shared r and sigma — ~200 flops, 24 bytes read, 16 bytes
// written per option, so the optimized kernel is DRAM-bandwidth-bound.
//
// Variants (paper's stacked-bar levels):
//   reference    — scalar AOS loop, exactly Lis. 1 (cnd via libm erfc)
//   basic        — same AOS loop under "#pragma omp parallel for simd":
//                  the compiler vectorizes but every field access is a
//                  gather/scatter across `width` cache lines
//   intermediate — AOS->SOA + explicit SIMD across options (one option per
//                  lane, Vec classes), cnd -> erf substitution, and the
//                  put from call/put parity (Sec. IV-A2)
//   advanced_vml — SOA + VML-style array math: whole-array transcendental
//                  passes through temporaries. Matches the paper's
//                  "Advanced (Using VML)" bar; its larger cache footprint
//                  is the reason SVML-style fusion can win (Sec. IV-A3)
//   blocked      — AoSoA lane-blocks + register tiling: one block per
//                  register tile, ×2 unrolled, streaming stores — the
//                  paper's full "Advanced" data-path recipe (Sec. IV-A3)
//
// All SIMD variants take a Width so the 4-wide (SNB-EP-class) and 8-wide
// (KNC-class) paths can be measured separately.

#pragma once

#include "finbench/core/option.hpp"
#include "finbench/vecmath/array_math.hpp"

namespace finbench::core {
class ScratchPool;  // finbench/core/scratch_pool.hpp
}

namespace finbench::kernels::bs {

using vecmath::Width;

// Cost model constants used for roofline bounds (see DESIGN.md).
inline constexpr double kFlopsPerOption = 200.0;
inline constexpr double kBytesPerOption = 40.0;  // 24 in + 16 out

// All pricing entry points take non-owning views (pass-by-value: a view
// is a handful of span headers). The owning BsBatch* containers convert
// implicitly, so `price_intermediate(my_batch)` still reads naturally —
// but the same kernels now also price arena-backed converted portfolios
// (core::Portfolio / core::convert) with zero copies.
void price_reference(core::BsAosView batch);
void price_basic(core::BsAosView batch);
void price_intermediate(core::BsSoaView batch, Width w = Width::kAuto);

// The VML variant's chunk temporaries (d1/d2/xexp/qlog) come from the
// caller's scratch pool when one is supplied (one slot of 4 x kVmlChunk
// doubles per concurrent worker); a null pool falls back to per-call
// aligned allocation, preserving standalone use.
inline constexpr std::size_t kVmlChunk = 4096;
void price_advanced_vml(core::BsSoaView batch, Width w = Width::kAuto,
                        core::ScratchPool* scratch = nullptr);

// Register-tiled pricing straight off the blocked AoSoA layout: one
// lane-block sub-run per register tile, ×2 unrolled, streaming stores, no
// gathers. The `_sp` flavor computes in single precision over the same
// double storage (f64->f32 conversion stays in register), doubling the
// lanes per tile at ~1e-7 absolute accuracy.
void price_blocked(core::BsBlockedView batch, Width w = Width::kAuto);

// Fused AOS -> blocked -> AOS pipeline: transposes one lane-block at a
// time into a stack-resident tile (L1-hot), prices it in register, and
// writes call/put straight back into the AOS records. This is the honest
// "incl. conversion" form of the blocked kernel — the layout change
// composes with the tiling instead of costing a separate DRAM pass.
void price_blocked_from_aos(core::BsAosView batch, Width w = Width::kAuto);

// Single-precision variant of the intermediate kernel: one option per
// float lane (8 on AVX2, 16 on AVX-512). Accuracy ~1e-6 relative — the
// precision/lane-count trade Table I's SP peak rows quantify.
using WidthF = vecmath::WidthF;
void price_intermediate_sp(core::BsSoaFView batch, WidthF w = WidthF::kAuto);
void price_blocked_sp(core::BsBlockedView batch, WidthF w = WidthF::kAuto);

// SP twin of price_blocked_from_aos: the f64 AOS inputs narrow to f32 in
// register (cvtpd_ps on a stack-resident tile), price through the shared
// SP model, and widen back into the AOS records — the fused "incl.
// conversion" pipeline with twice the lanes per tile (8 on AVX2, 16 on
// AVX-512). Accuracy matches the other SP rows (~1e-7 absolute).
void price_blocked_from_aos_f32(core::BsAosView batch, WidthF w = WidthF::kAuto);

// --- Batch greeks (extension): the full sensitivity set, SIMD across
// options. Call and put greeks come from one d1/d2 evaluation per option
// (put values via parity relations), so the whole set costs barely more
// than pricing. Validated against core::black_scholes_greeks in tests.
struct GreeksBatchSoa {
  arch::AlignedVector<double> delta_call, delta_put;
  arch::AlignedVector<double> gamma;       // same for call and put
  arch::AlignedVector<double> vega;        // same for call and put
  arch::AlignedVector<double> theta_call, theta_put;
  arch::AlignedVector<double> rho_call, rho_put;

  std::size_t size() const { return gamma.size(); }
  void resize(std::size_t n) {
    delta_call.resize(n);
    delta_put.resize(n);
    gamma.resize(n);
    vega.resize(n);
    theta_call.resize(n);
    theta_put.resize(n);
    rho_call.resize(n);
    rho_put.resize(n);
  }
};

void greeks_intermediate(core::BsSoaCView batch, GreeksBatchSoa& out,
                         Width w = Width::kAuto);

// --- Batch implied volatility (extension): the model-calibration inner
// loop, SIMD across quotes. Safeguarded Newton (bisection fallback) with
// every lane iterating until its own convergence; quotes outside the
// arbitrage-free band come back as -1. batch.vol is ignored; batch.call /
// batch.put are not touched.
void implied_vol_intermediate(core::BsSoaCView batch,
                              std::span<const double> call_prices, std::span<double> vols_out,
                              Width w = Width::kAuto);

}  // namespace finbench::kernels::bs
