// finbench/kernels/lsmc.hpp
//
// Longstaff–Schwartz least-squares Monte Carlo for American options —
// the Monte Carlo answer to early exercise (paper Sec. II: "For the most
// complex options, Monte Carlo approaches are employed"; Glasserman 2004,
// the paper's ref [12], ch. 8). Extension beyond the paper's European MC
// kernel, validated against the binomial lattice in tests.
//
// Method: simulate GBM paths forward, then walk backward; at each
// exercise date, regress the discounted continuation value of in-the-money
// paths on polynomial basis functions of moneyness and exercise where the
// immediate payoff beats the regression estimate.

#pragma once

#include <cstdint>

#include "finbench/core/option.hpp"

namespace finbench::kernels::lsmc {

struct LsmcParams {
  std::size_t num_paths = 1 << 16;
  int num_steps = 50;        // exercise dates
  int basis_degree = 3;      // polynomial degree in moneyness (1..5)
  std::uint64_t seed = 0;
};

struct LsmcResult {
  double price = 0.0;
  double std_error = 0.0;  // of the (low-biased) pathwise estimate
};

LsmcResult price_american(const core::OptionSpec& opt, const LsmcParams& params = {});

}  // namespace finbench::kernels::lsmc
