// finbench/kernels/binomial.hpp
//
// Kernel 2: 1D binomial-tree option pricing (paper Sec. IV-B, Fig. 5).
// Cox–Ross–Rubinstein lattice with N time steps; the backward reduction
// costs ~3·N(N+1)/2 flops per option.
//
// Variants (paper's stacked-bar levels):
//   reference     — Lis. 2: per-option scalar reduction, inner j-loop
//   basic         — reference + pragmas: inner-loop autovectorization and
//                   OpenMP across options
//   intermediate  — SIMD across options: one option per lane (Vec classes);
//                   every access is aligned and full-width
//   advanced      — intermediate + the paper's novel register-tiling
//                   scheme (Lis. 3): a TS-deep tile lives in the register
//                   file, each Call value is read/written once per TS time
//                   steps instead of once per step
//   advanced_unrolled — advanced + manual unrolling of the tile loop (the
//                   Fig. 5 "Basic (Unrolled)" increment that helps in-order
//                   KNC cores)
//
// American exercise is supported by the reference and intermediate
// variants (the paper prices European; American is the natural extension
// and is used to validate Crank–Nicolson).

#pragma once

#include <span>

#include "finbench/core/option.hpp"
#include "finbench/vecmath/array_math.hpp"

namespace finbench::core {
class ScratchPool;  // finbench/core/scratch_pool.hpp
}

namespace finbench::kernels::binomial {

using vecmath::Width;

// ~3 flops per lattice node.
inline double flops_per_option(int steps) {
  return 3.0 * steps * (steps + 1) / 2.0;
}

// Per-worker lattice scratch each variant needs at width W (the widest
// shipped W is 8): engines size their scratch pool with this so repeated
// pricings never touch the heap.
inline std::size_t lattice_doubles(int steps, int width = 8) {
  return static_cast<std::size_t>(steps + 1) * static_cast<std::size_t>(width);
}

// Price a single option (any style); the building block of `reference`.
// The span overload reduces through caller-provided lattice storage of at
// least steps+1 doubles (no allocation); the plain overload allocates.
double price_one_reference(const core::OptionSpec& opt, int steps);
double price_one_reference(const core::OptionSpec& opt, int steps, std::span<double> lattice);

// Every batch variant leases its per-worker lattice from `scratch` when a
// pool with room is supplied; a null (or exhausted) pool falls back to a
// local aligned allocation, preserving standalone use.
void price_reference(std::span<const core::OptionSpec> opts, int steps, std::span<double> out,
                     core::ScratchPool* scratch = nullptr);
void price_basic(std::span<const core::OptionSpec> opts, int steps, std::span<double> out,
                 core::ScratchPool* scratch = nullptr);
void price_intermediate(std::span<const core::OptionSpec> opts, int steps, std::span<double> out,
                        Width w = Width::kAuto, core::ScratchPool* scratch = nullptr);
// European only (the tile carries no per-node early-exercise information).
void price_advanced(std::span<const core::OptionSpec> opts, int steps, std::span<double> out,
                    Width w = Width::kAuto, core::ScratchPool* scratch = nullptr);
void price_advanced_unrolled(std::span<const core::OptionSpec> opts, int steps,
                             std::span<double> out, Width w = Width::kAuto,
                             core::ScratchPool* scratch = nullptr);

// Ablation entry: register tiling with an explicit tile depth (one of
// 4, 8, 16, 32, 64; other values throw). The default variants use 16.
void price_advanced_tile(std::span<const core::OptionSpec> opts, int steps,
                         std::span<double> out, int tile_size, Width w = Width::kAuto,
                         core::ScratchPool* scratch = nullptr);

// --- Blocked-layout family (Layout::kBsBlocked AoSoA tiles) ------------------
// European CRR pricing straight off the blocked tiles: per-lane lattice
// parameters come from the blocked spot/strike/years fields plus the
// view-shared rate/vol/dividend, and both the call and put prices are
// written back into the tiles (fields 3 and 4) — no OptionSpec gather.
// Lanes whose block width is not a multiple of W fall back to scalar lanes.
void price_blocked(const core::BsBlockedView& view, int steps, Width w = Width::kAuto,
                   core::ScratchPool* scratch = nullptr);

// --- Shared CRR derivation (banded / blocked entry points) -------------------
namespace detail {
// The reference kernel's lattice coefficients, exposed so every other
// entry point derives bitwise-identical parameters from one definition.
struct CrrDerived {
  double pu_by_df;
  double pd_by_df;
  double up;
  double down;
};
// Throws std::invalid_argument when the risk-neutral probability leaves
// [0, 1], exactly like the batch kernels.
CrrDerived crr_derived(const core::OptionSpec& o, int steps);
double payoff_of(const core::OptionSpec& o, double s);
}  // namespace detail

// --- Banded decomposition: intra-option task parallelism ---------------------
//
// The backward induction `call[j] = pu*call[j+1] + pd*call[j]` (ascending
// j, in place) is a pure level map: every level-i value depends only on
// two completed level-(i+1) values. Grouping kBandLevels levels into one
// band pass over ping-pong src/dst lattices therefore splits each pass's
// output range into independent segments — the task-parallel unit a
// TaskGroup executes — while every output is still computed by the
// *identical* floating-point expression, so the result is bitwise-equal
// to price_one_reference no matter how many tasks ran (or none).
namespace banded {

// Engine-side threshold: European options at least this deep are worth
// decomposing into segment tasks (docs/engine.md, task parallelism).
inline constexpr int kMinTaskSteps = 512;
// Levels reduced per band pass. Adjacent segments of a pass recompute a
// levels-deep triangle of overlap ((nseg-1) * levels^2 / 2 extra updates
// per pass), so the redundant-work fraction is ~levels / (2 * kSegmentMin):
// 64-deep bands over 512-wide segments cost ~6% extra updates — the price
// of decomposing a loop-carried reduction into independent tasks.
inline constexpr int kBandLevels = 64;
// Minimum outputs per segment, and the segment cap per pass (sized to
// engine::TaskGroup::kMaxTasks).
inline constexpr std::size_t kSegmentMin = 512;
inline constexpr int kMaxSegments = 64;

struct Params {
  double pu_by_df;
  double pd_by_df;
};

// One independent slice of a band pass: produce dst[lo .. lo+count) from
// src[lo .. lo+count+levels-1], reducing `levels` levels.
struct Segment {
  const double* src;  // pass input lattice (immutable during the pass)
  double* dst;        // pass output lattice (disjoint slices per segment)
  std::size_t lo;     // first output index
  std::size_t count;  // outputs produced
  int levels;         // levels this pass reduces
  const Params* params;
};

// Work space reduce_segment needs: the first reduced level's row.
inline std::size_t work_doubles(const Segment& s) {
  return s.count + static_cast<std::size_t>(s.levels) - 1;
}

void reduce_segment(const Segment& s, std::span<double> work);

// Executes segs[0..nseg); every segment must be complete on return.
using SegmentRunner = void (*)(void* ctx, const Segment* segs, int nseg);

// In-order runner; ctx is a std::span<double>* work buffer of at least
// `steps` doubles (an upper bound on work_doubles of any segment).
void serial_segment_runner(void* ctx, const Segment* segs, int nseg);

// European-only banded backward induction. `lattice` holds the two
// ping-pong arrays: at least 2*(steps+1) doubles.
double price_one_banded(const core::OptionSpec& opt, int steps, std::span<double> lattice,
                        SegmentRunner runner, void* ctx);

}  // namespace banded

}  // namespace finbench::kernels::binomial
