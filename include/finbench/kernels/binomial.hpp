// finbench/kernels/binomial.hpp
//
// Kernel 2: 1D binomial-tree option pricing (paper Sec. IV-B, Fig. 5).
// Cox–Ross–Rubinstein lattice with N time steps; the backward reduction
// costs ~3·N(N+1)/2 flops per option.
//
// Variants (paper's stacked-bar levels):
//   reference     — Lis. 2: per-option scalar reduction, inner j-loop
//   basic         — reference + pragmas: inner-loop autovectorization and
//                   OpenMP across options
//   intermediate  — SIMD across options: one option per lane (Vec classes);
//                   every access is aligned and full-width
//   advanced      — intermediate + the paper's novel register-tiling
//                   scheme (Lis. 3): a TS-deep tile lives in the register
//                   file, each Call value is read/written once per TS time
//                   steps instead of once per step
//   advanced_unrolled — advanced + manual unrolling of the tile loop (the
//                   Fig. 5 "Basic (Unrolled)" increment that helps in-order
//                   KNC cores)
//
// American exercise is supported by the reference and intermediate
// variants (the paper prices European; American is the natural extension
// and is used to validate Crank–Nicolson).

#pragma once

#include <span>

#include "finbench/core/option.hpp"
#include "finbench/vecmath/array_math.hpp"

namespace finbench::core {
class ScratchPool;  // finbench/core/scratch_pool.hpp
}

namespace finbench::kernels::binomial {

using vecmath::Width;

// ~3 flops per lattice node.
inline double flops_per_option(int steps) {
  return 3.0 * steps * (steps + 1) / 2.0;
}

// Per-worker lattice scratch each variant needs at width W (the widest
// shipped W is 8): engines size their scratch pool with this so repeated
// pricings never touch the heap.
inline std::size_t lattice_doubles(int steps, int width = 8) {
  return static_cast<std::size_t>(steps + 1) * static_cast<std::size_t>(width);
}

// Price a single option (any style); the building block of `reference`.
// The span overload reduces through caller-provided lattice storage of at
// least steps+1 doubles (no allocation); the plain overload allocates.
double price_one_reference(const core::OptionSpec& opt, int steps);
double price_one_reference(const core::OptionSpec& opt, int steps, std::span<double> lattice);

// Every batch variant leases its per-worker lattice from `scratch` when a
// pool with room is supplied; a null (or exhausted) pool falls back to a
// local aligned allocation, preserving standalone use.
void price_reference(std::span<const core::OptionSpec> opts, int steps, std::span<double> out,
                     core::ScratchPool* scratch = nullptr);
void price_basic(std::span<const core::OptionSpec> opts, int steps, std::span<double> out,
                 core::ScratchPool* scratch = nullptr);
void price_intermediate(std::span<const core::OptionSpec> opts, int steps, std::span<double> out,
                        Width w = Width::kAuto, core::ScratchPool* scratch = nullptr);
// European only (the tile carries no per-node early-exercise information).
void price_advanced(std::span<const core::OptionSpec> opts, int steps, std::span<double> out,
                    Width w = Width::kAuto, core::ScratchPool* scratch = nullptr);
void price_advanced_unrolled(std::span<const core::OptionSpec> opts, int steps,
                             std::span<double> out, Width w = Width::kAuto,
                             core::ScratchPool* scratch = nullptr);

// Ablation entry: register tiling with an explicit tile depth (one of
// 4, 8, 16, 32, 64; other values throw). The default variants use 16.
void price_advanced_tile(std::span<const core::OptionSpec> opts, int steps,
                         std::span<double> out, int tile_size, Width w = Width::kAuto,
                         core::ScratchPool* scratch = nullptr);

}  // namespace finbench::kernels::binomial
