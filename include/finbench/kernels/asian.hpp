// finbench/kernels/asian.hpp
//
// Arithmetic- and geometric-average Asian options. The geometric average
// of lognormals is lognormal, so the geometric Asian has a closed form
// (Kemna–Vorst 1990) — which makes it both a validation target and the
// classic control variate for the arithmetic contract (Glasserman §4.2):
// the two payoffs are ~99% correlated, so regressing one on the other
// removes almost all Monte Carlo variance.
//
// Path generation goes through the Brownian-bridge engine so a
// quasi-random driver (Halton + bridge variance reordering) is a drop-in
// option.

#pragma once

#include <cstdint>

#include "finbench/core/option.hpp"
#include "finbench/kernels/montecarlo.hpp"

namespace finbench::kernels::asian {

struct AsianParams {
  int num_averaging_dates = 16;     // must be a power of two (bridge depth)
  std::size_t num_paths = 1 << 16;
  std::uint64_t seed = 0;
  bool control_variate = true;      // geometric closed form as control
  bool quasi_random = false;        // Halton + bridge instead of Philox
};

// Discrete geometric-average Asian call/put, closed form.
double geometric_closed_form(const core::OptionSpec& opt, int num_averaging_dates);

// Arithmetic-average Asian price by (Q)MC, optionally variance-reduced by
// the geometric control.
mc::McResult price_arithmetic(const core::OptionSpec& opt, const AsianParams& params = {});

}  // namespace finbench::kernels::asian
