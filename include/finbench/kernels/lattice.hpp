// finbench/kernels/lattice.hpp
//
// Lattice-method extensions beyond the paper's CRR binomial kernel
// (Fig. 1 groups "lattice methods" as a family; these are the other two
// standard members):
//
//   Leisen–Reimer binomial — Peizer–Pratt inversion places the lattice
//     nodes so the strike falls on a node; converges O(1/N^2) for
//     European options versus CRR's oscillating O(1/N). The practical
//     choice when lattice accuracy matters.
//
//   Trinomial tree (Boyle / Kamrad–Ritchken, lambda = sqrt(3)) — three
//     branches per node; equivalent to an explicit finite-difference
//     stencil, denser per step but smoother convergence than CRR.
//
// Both support American exercise; both are validated against analytic
// Black–Scholes (European) and CRR (American) in tests/test_lattice.cpp.

#pragma once

#include <span>

#include "finbench/core/option.hpp"

namespace finbench::kernels::lattice {

// Leisen–Reimer binomial price. `steps` is rounded up to the next odd
// number (the method is defined for odd step counts).
double price_leisen_reimer(const core::OptionSpec& opt, int steps);

// Trinomial-tree price with stretch parameter lambda = sqrt(3).
double price_trinomial(const core::OptionSpec& opt, int steps);

// Broadie–Detemple smoothed binomial: CRR lattice, but the last time step
// is valued with the one-period Black–Scholes closed form at every node
// (kills the payoff-kink sawtooth); `price_bbsr` adds two-point Richardson
// extrapolation (2 * BBS(N) - BBS(N/2)). The efficient-frontier lattice
// for American options.
double price_bbs(const core::OptionSpec& opt, int steps);
double price_bbsr(const core::OptionSpec& opt, int steps);

// Bermudan option on the CRR lattice: early exercise is allowed only at
// `num_exercise_dates` equally spaced dates (including expiry). With one
// date this is the European price; as dates -> steps it converges to the
// American price — the interpolation property the tests assert.
double price_bermudan(const core::OptionSpec& opt, int steps, int num_exercise_dates);

// Greeks straight off the CRR lattice (works for American exercise, where
// no closed form exists): delta and gamma from the level-1/2 node values,
// theta from the recombining center node two steps in.
struct LatticeGreeks {
  double price = 0.0;
  double delta = 0.0;
  double gamma = 0.0;
  double theta = 0.0;  // per year
};

LatticeGreeks greeks_crr(const core::OptionSpec& opt, int steps);

// Geske–Johnson: approximate the American price by Richardson
// extrapolation over Bermudan prices with 1, 2, and 3 exercise dates —
// three cheap lattice solves instead of a dense one. Classic, and a
// useful cross-check on the dense-lattice American value.
double price_geske_johnson(const core::OptionSpec& opt, int steps);

// Batch drivers (OpenMP across options).
void price_leisen_reimer_batch(std::span<const core::OptionSpec> opts, int steps,
                               std::span<double> out);
void price_trinomial_batch(std::span<const core::OptionSpec> opts, int steps,
                           std::span<double> out);

}  // namespace finbench::kernels::lattice
