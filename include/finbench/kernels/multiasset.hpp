// finbench/kernels/multiasset.hpp
//
// Multi-asset option pricing over correlated geometric Brownian motions —
// the natural scaling direction the paper notes for Monte Carlo ("for the
// most complex options, Monte Carlo approaches are employed", Sec. II:
// lattice/FD cost grows exponentially with the number of underlyings).
// Correlation is imposed by the Cholesky factor of the correlation matrix
// (core/linalg.hpp).
//
// Validation targets:
//   - Margrabe's closed form for the exchange option max(S1 - S2, 0)
//   - degeneration to single-asset Black-Scholes (one asset, or perfectly
//     correlated identical assets)

#pragma once

#include <cstdint>
#include <vector>

#include "finbench/core/option.hpp"
#include "finbench/kernels/montecarlo.hpp"

namespace finbench::kernels::multiasset {

struct BasketSpec {
  std::vector<double> spots;
  std::vector<double> vols;
  std::vector<double> weights;       // basket = sum w_i S_i(T)
  std::vector<double> correlation;   // row-major n x n
  double strike = 100.0;
  double years = 1.0;
  double rate = 0.05;
  core::OptionType type = core::OptionType::kCall;

  std::size_t num_assets() const { return spots.size(); }
};

struct McParams {
  std::size_t num_paths = 1 << 16;
  std::uint64_t seed = 0;
};

// European basket option on the weighted terminal sum. Throws on
// inconsistent dimensions or a non-PD correlation matrix.
mc::McResult price_basket_mc(const BasketSpec& spec, const McParams& params = {});

// Margrabe (1978): European option to exchange asset 2 for asset 1,
// payoff max(S1(T) - S2(T), 0). Rate-independent.
double margrabe_exchange(double s1, double s2, double vol1, double vol2, double rho,
                         double years);

// The same exchange option by Monte Carlo (basket engine with weights
// {+1, -1} and strike 0) — the cross-check for the correlated-path driver.
mc::McResult price_exchange_mc(double s1, double s2, double vol1, double vol2, double rho,
                               double years, double rate, const McParams& params = {});

}  // namespace finbench::kernels::multiasset
