// finbench/kernels/merton.hpp
//
// Merton (1976) jump-diffusion — lognormal diffusion plus compound-Poisson
// lognormal jumps. Extension of the model family: the closed form is a
// Poisson-weighted series of Black–Scholes prices, which makes it a
// self-validating pair with the Monte Carlo engine (and a second source of
// genuine volatility smiles alongside Heston).
//
//   dS/S = (r - q - lambda kbar) dt + sigma dW + (J - 1) dN,
//   ln J ~ N(jump_mean, jump_vol^2),  kbar = E[J] - 1.

#pragma once

#include <cstdint>

#include "finbench/core/option.hpp"
#include "finbench/kernels/montecarlo.hpp"

namespace finbench::kernels::merton {

struct JumpParams {
  double intensity = 0.5;    // lambda: expected jumps per year
  double jump_mean = -0.1;   // mean of ln J (negative = crash risk)
  double jump_vol = 0.25;    // std of ln J
};

// Series closed form (European): sum over the jump count, each term a
// Black–Scholes price with jump-adjusted rate and volatility. `max_terms`
// bounds the series; the Poisson tail makes ~40 terms exact to double
// precision for lambda*T < 10.
double price_series(const core::OptionSpec& opt, const JumpParams& jumps, int max_terms = 60);

struct SimParams {
  std::size_t num_paths = 1 << 16;
  std::uint64_t seed = 0;
};

// Exact terminal-distribution Monte Carlo (no time discretization: the
// jump count, jump sizes, and diffusion are all sampled exactly).
mc::McResult price_mc(const core::OptionSpec& opt, const JumpParams& jumps,
                      const SimParams& sim = {});

}  // namespace finbench::kernels::merton
