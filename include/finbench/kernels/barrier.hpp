// finbench/kernels/barrier.hpp
//
// Barrier (knock-out) option pricing — the Brownian bridge's second
// classic application (Glasserman 2004 §6.4, the paper's ref [12]):
// between two simulated points, the probability that the underlying
// crossed a barrier has a closed form,
//
//   P(cross) = exp(-2 ln(S_i/H) ln(S_{i+1}/H) / (sigma^2 dt)),
//
// so coarse discrete simulation can price a *continuously* monitored
// barrier without bias. Without the correction, discrete monitoring
// systematically overprices knock-outs (crossings between dates are
// missed) — the tests quantify exactly that.
//
// A Reiner–Rubinstein closed form for the continuously monitored
// down-and-out call provides the validation target.

#pragma once

#include <cstdint>

#include "finbench/core/option.hpp"

namespace finbench::kernels::barrier {

enum class BarrierType {
  kDownAndOut,  // knocked out if S touches the barrier from above
  kUpAndOut,    // knocked out if S touches the barrier from below
};

struct BarrierSpec {
  core::OptionSpec option;          // underlying vanilla payoff (European)
  double barrier = 80.0;            // barrier level H
  BarrierType type = BarrierType::kDownAndOut;
};

struct McParams {
  std::size_t num_paths = 1 << 16;
  int num_steps = 16;               // simulation dates
  std::uint64_t seed = 0;
  bool bridge_correction = true;    // apply the crossing-probability weight
};

struct McPrice {
  double price = 0.0;
  double std_error = 0.0;
};

// Monte Carlo price. With bridge_correction the estimate targets the
// continuously monitored contract; without it, the discretely monitored
// one (biased high relative to continuous for knock-outs).
McPrice price_mc(const BarrierSpec& spec, const McParams& params = {});

// Continuously monitored down-and-out call, closed form (requires
// H <= min(S, K); throws otherwise).
double down_and_out_call(double spot, double strike, double barrier, double years, double rate,
                         double vol);

}  // namespace finbench::kernels::barrier
