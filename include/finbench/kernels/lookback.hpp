// finbench/kernels/lookback.hpp
//
// Floating-strike lookback options — the third classic Brownian-bridge
// application in this library (after QMC variance reordering and barrier
// crossing probabilities): between two simulated points, the *minimum* of
// the log-price has an exact sampleable distribution,
//
//   m ~ (x_a + x_b - sqrt((x_b - x_a)^2 - 2 sigma^2 dt ln U)) / 2,
//
// so a coarse simulation can price the continuously monitored contract
// without the discrete-monitoring bias (Glasserman §6.4).
//
// The floating-strike lookback call pays S_T - min_t S_t. The
// Goldman–Sosin–Gatto closed form (continuous monitoring) is the
// validation target.

#pragma once

#include <cstdint>

#include "finbench/core/option.hpp"
#include "finbench/kernels/montecarlo.hpp"

namespace finbench::kernels::lookback {

struct McParams {
  std::size_t num_paths = 1 << 16;
  int num_steps = 16;
  std::uint64_t seed = 0;
  bool bridge_minimum = true;  // sample the within-step minimum exactly
};

// Continuously monitored floating-strike lookback call, observation
// starting now (running minimum = spot). Requires rate != dividend.
double floating_call_closed_form(double spot, double years, double rate, double dividend,
                                 double vol);

// Monte Carlo price of the same contract; with bridge_minimum = false the
// estimate targets discrete monitoring at num_steps dates (biased low
// versus continuous — the bias the tests measure).
mc::McResult price_floating_call_mc(double spot, double years, double rate, double dividend,
                                    double vol, const McParams& params = {});

}  // namespace finbench::kernels::lookback
