// finbench/kernels/heston.hpp
//
// Heston stochastic-volatility Monte Carlo — the model-calibration-grade
// workload the paper's introduction motivates ("increasingly sophisticated
// mathematical and statistical methods"). Extension beyond the paper's
// constant-volatility kernels; exercises the RNG substrate with two
// correlated streams per path.
//
//   dS = r S dt + sqrt(v) S dW_s
//   dv = kappa (theta - v) dt + xi sqrt(v) dW_v,   d<W_s, W_v> = rho dt
//
// Discretization: full-truncation Euler (Lord, Koekkoek & van Dijk 2010)
// — the standard bias-robust scheme when v can touch zero.

#pragma once

#include <cstdint>

#include "finbench/core/option.hpp"
#include "finbench/kernels/montecarlo.hpp"

namespace finbench::kernels::heston {

struct HestonParams {
  double kappa = 2.0;   // mean-reversion speed of variance
  double theta = 0.04;  // long-run variance
  double xi = 0.3;      // volatility of variance
  double rho = -0.7;    // spot/variance correlation
  double v0 = 0.04;     // initial variance
};

struct SimParams {
  std::size_t num_paths = 1 << 16;
  int num_steps = 64;
  std::uint64_t seed = 0;
};

// European call and put estimated from the same paths (the spec's `vol`
// field is ignored; the variance process replaces it).
struct HestonPrice {
  mc::McResult call;
  mc::McResult put;
};

HestonPrice price_european(const core::OptionSpec& opt, const HestonParams& model,
                           const SimParams& sim = {});

// Semi-analytic price via the characteristic function (Heston 1993 in the
// trap-free Albrecher et al. formulation), integrated with composite
// Gauss–Legendre quadrature. Accurate to ~1e-8 for ordinary parameters —
// the golden reference the Monte Carlo engine is validated against.
struct AnalyticPrice {
  double call = 0.0;
  double put = 0.0;  // from put-call parity
};

AnalyticPrice price_analytic(const core::OptionSpec& opt, const HestonParams& model);

// American exercise under Heston via Longstaff–Schwartz on the simulated
// (S, v) paths — the regression basis includes the variance state, which
// the constant-vol LSMC cannot see. Validated against the xi -> 0 limit
// (constant-vol American) and the European analytic floor.
mc::McResult price_american_lsmc(const core::OptionSpec& opt, const HestonParams& model,
                                 const SimParams& sim = {});

// Two-dimensional finite differences: the Heston PDE on an (S, v) grid,
// marched backward with the Douglas ADI splitting (theta = 1/2; In 't
// Hout & Foulon 2010). The mixed S-v derivative is treated explicitly;
// each directional operator is a tridiagonal solve. European exercise.
// Third, independent pricing route — validated against the
// characteristic-function pricer in tests.
struct FdParams {
  int num_s = 101;        // S-nodes (including boundaries)
  int num_v = 51;         // v-nodes
  int num_steps = 50;     // time steps
  double s_max_mult = 4.0;  // S_max = mult * max(spot, strike)
  double v_max = 1.0;       // variance-grid ceiling (>= 5 theta advised)
};

// European (opt.style == kEuropean) or American (kAmerican; priced with
// the explicit-projection variant: u <- max(u, payoff) after each Douglas
// step — first-order accurate in dt, validated against the (S, v)-basis
// LSMC in tests).
double price_fd(const core::OptionSpec& opt, const HestonParams& model,
                const FdParams& fd = {});

// Price plus spot-greeks read off the final FD grid (central differences
// at the valuation node) — free once the solve is done, and they work for
// American exercise where no closed form exists.
struct FdGreeks {
  double price = 0.0;
  double delta = 0.0;
  double gamma = 0.0;
};
FdGreeks price_fd_greeks(const core::OptionSpec& opt, const HestonParams& model,
                         const FdParams& fd = {});

}  // namespace finbench::kernels::heston
