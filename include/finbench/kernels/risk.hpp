// finbench/kernels/risk.hpp
//
// Portfolio risk engine: aggregate greeks and spot-ladder revaluation for
// a book of vanilla positions, built on the SIMD batch pricing and greeks
// kernels — the "risk management" half of the workloads the paper's
// introduction motivates (STAC risk benchmarks).

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "finbench/core/option.hpp"

namespace finbench::kernels::risk {

struct Position {
  core::OptionSpec option;  // European vanilla (priced in closed form)
  double quantity = 1.0;    // signed; negative = short
};

struct PortfolioGreeks {
  double value = 0.0;
  double delta = 0.0;
  double gamma = 0.0;
  double vega = 0.0;
  double theta = 0.0;
  double rho = 0.0;
};

// Aggregate book value and greeks. All positions must share the same
// underlying (the spot shifts below move one underlying); rate/vol may
// differ per position.
PortfolioGreeks aggregate(std::span<const Position> book);

// Spot ladder: full revaluation of the book at multiplicative spot shifts
// (e.g. {0.8, 0.9, 1.0, 1.1, 1.2}), returning the P&L versus the unshifted
// value. Revaluation goes through the closed form (positions carry
// per-position rates/vols, so the shared-parameter SIMD batch kernel does
// not apply directly).
std::vector<double> spot_ladder(std::span<const Position> book,
                                std::span<const double> spot_multipliers);

// Parallel vega ladder: P&L for additive vol shifts (e.g. ±1, ±5 vol pts).
std::vector<double> vol_ladder(std::span<const Position> book,
                               std::span<const double> vol_shifts);

}  // namespace finbench::kernels::risk
