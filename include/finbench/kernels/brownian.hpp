// finbench/kernels/brownian.hpp
//
// Kernel 3: Brownian-bridge path construction (paper Sec. IV-C, Fig. 6,
// Lis. 4). A depth-D bridge builds a (2^D + 1)-point Brownian path on a
// time grid by recursive midpoint refinement, consuming 2^D normal
// deviates per path: one for the terminal point, then 2^d conditional
// midpoints at each level d.
//
// Level-d midpoint between known points (t_l, v_l) and (t_r, v_r):
//   v_m = w_l * v_l + w_r * v_r + sig * Z
//   w_l = (t_r-t_m)/(t_r-t_l), w_r = (t_m-t_l)/(t_r-t_l),
//   sig = sqrt((t_m-t_l)(t_r-t_m)/(t_r-t_l))            [Glasserman 2004]
//
// The unconditional law of the result is standard Brownian motion:
// Cov(v(t_i), v(t_j)) = min(t_i, t_j) — the property tests key on this.
//
// Variants (paper's stacked-bar levels, Fig. 6):
//   reference / basic — Lis. 4 per-path scalar construction; basic adds
//       OpenMP across paths + simd pragmas (all the compiler can do: the
//       outer loop does not autovectorize because of how normals are
//       consumed across iterations)
//   intermediate — SIMD across paths: W paths per lane; normals must be
//       supplied lane-blocked (see lane_block_normals)
//   advanced_interleaved — normals are generated on the fly in LLC-sized
//       chunks and consumed from cache, removing the DRAM stream of
//       pre-generated normals
//   advanced_fused — additionally the constructed path is consumed
//       immediately (arithmetic path average, an Asian-payoff style
//       reduction) and never written to DRAM ("cache-to-cache")
//
// Output layout for constructed paths is point-major: out[c * nsim + s]
// (point c of simulation s), identical across variants.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "finbench/arch/aligned.hpp"
#include "finbench/rng/normal.hpp"
#include "finbench/vecmath/array_math.hpp"

namespace finbench::kernels::brownian {

using vecmath::Width;

// Precomputed interpolation weights for every level of one bridge.
class BridgeSchedule {
 public:
  // Uniform grid on [0, total_time] with 2^depth steps.
  static BridgeSchedule uniform(int depth, double total_time);
  // Arbitrary increasing grid; times.size() must be 2^depth + 1 and
  // times[0] is the (known) starting point of the path.
  static BridgeSchedule from_times(std::span<const double> times);

  int depth() const { return depth_; }
  std::size_t num_points() const { return (std::size_t{1} << depth_) + 1; }
  std::size_t normals_per_path() const { return std::size_t{1} << depth_; }
  double terminal_sig() const { return terminal_sig_; }
  const std::vector<double>& times() const { return times_; }

  // Level-d arrays, c in [0, 2^d).
  const double* w_l(int d) const { return w_l_.data() + offset(d); }
  const double* w_r(int d) const { return w_r_.data() + offset(d); }
  const double* sig(int d) const { return sig_.data() + offset(d); }

 private:
  static std::size_t offset(int d) { return (std::size_t{1} << d) - 1; }
  int depth_ = 0;
  double terminal_sig_ = 0.0;
  std::vector<double> times_;
  std::vector<double> w_l_, w_r_, sig_;
};

// Reorder per-path normal streams into the lane-blocked layout consumed by
// the SIMD variants: z[s * perPath + i] -> out[g * perPath * W + i * W + l]
// with s = g * W + l. Paths beyond the last full group keep per-path layout.
arch::AlignedVector<double> lane_block_normals(std::span<const double> z, std::size_t nsim,
                                               std::size_t per_path, int width);

// Scalar Lis. 4, one path at a time; z holds nsim * normals_per_path values.
void construct_reference(const BridgeSchedule& sched, std::span<const double> z,
                         std::size_t nsim, std::span<double> out);
// + OpenMP across paths and simd pragmas on the per-level loop.
void construct_basic(const BridgeSchedule& sched, std::span<const double> z, std::size_t nsim,
                     std::span<double> out);
// SIMD across paths; z must be lane-blocked for width `w`.
void construct_intermediate(const BridgeSchedule& sched, std::span<const double> z,
                            std::size_t nsim, std::span<double> out, Width w = Width::kAuto);
// Generates its own normals (Philox/ICDF) in cache-resident chunks.
void construct_advanced_interleaved(const BridgeSchedule& sched, std::uint64_t seed,
                                    std::size_t nsim, std::span<double> out,
                                    Width w = Width::kAuto);
// Fused consumer: returns per-path arithmetic average of the path points
// (excluding the pinned start); paths never touch DRAM.
void construct_advanced_fused(const BridgeSchedule& sched, std::uint64_t seed, std::size_t nsim,
                              std::span<double> path_average_out, Width w = Width::kAuto);

// Cost model: ~5 flops per constructed midpoint (2 mul + 2 fma-ish),
// 2^depth midpoints per path.
inline double flops_per_path(int depth) { return 5.0 * static_cast<double>(1ULL << depth); }

}  // namespace finbench::kernels::brownian
