// finbench/core/workload.hpp
//
// Deterministic random workload generators. Parameter ranges follow the
// common financial-benchmark convention the paper's kernels assume (spot
// and strike of the same magnitude, expiries from months to years,
// moderate vols) so that every kernel's numerical path — deep in/out of
// the money, short/long dated — is exercised.

#pragma once

#include <cstdint>
#include <vector>

#include "finbench/core/option.hpp"

namespace finbench::core {

struct WorkloadParams {
  double spot_min = 10.0, spot_max = 200.0;
  double strike_min = 10.0, strike_max = 200.0;
  double years_min = 0.25, years_max = 5.0;
  double rate = 0.05;   // shared across the batch (as in Lis. 1)
  double vol = 0.25;    // shared across the batch
};

// Batch workloads for the Black–Scholes kernel (shared r, sigma).
//
// Coupling guarantee: there is exactly ONE generator — the AOS-ordered
// Philox draw. make_bs_workload_soa(n, seed) is defined as
// to_soa(make_bs_workload_aos(n, seed)) and is therefore bitwise-equal to
// it field-for-field (asserted in tests/test_portfolio.cpp), as is every
// layout produced by core::Portfolio::bs(n, layout, seed). Layout choice
// never changes the workload.
BsBatchAos make_bs_workload_aos(std::size_t n, std::uint64_t seed = 0,
                                const WorkloadParams& p = {});
BsBatchSoa make_bs_workload_soa(std::size_t n, std::uint64_t seed = 0,
                                const WorkloadParams& p = {});

// Heterogeneous single-option workloads (per-option r and sigma) for the
// lattice / PDE / Monte Carlo kernels.
struct SingleOptionWorkloadParams {
  double spot_min = 50.0, spot_max = 150.0;
  double strike_min = 50.0, strike_max = 150.0;
  double years_min = 0.25, years_max = 3.0;
  double rate_min = 0.01, rate_max = 0.08;
  double vol_min = 0.10, vol_max = 0.60;
  OptionType type = OptionType::kPut;
  ExerciseStyle style = ExerciseStyle::kEuropean;
};

std::vector<OptionSpec> make_option_workload(std::size_t n, std::uint64_t seed = 0,
                                             const SingleOptionWorkloadParams& p = {});

}  // namespace finbench::core
