// finbench/core/scratch_pool.hpp
//
// Fixed-capacity pool of equally-sized, cache-line-aligned double slices
// carved from a core::Arena. Kernels that need per-worker scratch (the
// binomial lattice, Monte Carlo normal chunks, the VML-style temporaries)
// lease a slice for the duration of one parallel region instead of
// allocating: the engine sizes the pool once at negotiation time and every
// steady-state repetition after that is heap-free
// (tests/test_engine_alloc.cpp).
//
// Claim/release is a lock-free bitmask rather than an omp_get_thread_num()
// index because the two execution modes see different thread identities:
// inside a kernel's own `#pragma omp parallel` region thread numbers are
// dense, but under the engine's chunked scheduler every pool worker pins
// its OpenMP ICV to one thread and *all* of them report thread 0 while
// calling kernels concurrently. A bitmask hands out distinct slices either
// way. Exhaustion (more concurrent workers than slots) is not an error:
// claim() returns an empty lease and the caller falls back to a local
// allocation, trading the zero-alloc guarantee for correctness.

#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

#include "finbench/core/portfolio.hpp"

namespace finbench::core {

class ScratchPool {
 public:
  static constexpr int kMaxSlots = 64;  // one bitmask word

  ScratchPool() = default;
  ScratchPool(const ScratchPool&) = delete;
  ScratchPool& operator=(const ScratchPool&) = delete;

  // (Re)carve `slots` slices of `slot_doubles` doubles each from `arena`.
  // No-op when the pool is already at least that large, so per-repetition
  // calls settle into zero work; growing abandons the old slices (the
  // arena is monotonic) and re-carves. Not thread-safe: call before the
  // pool is handed to concurrent workers, never while leases are out.
  void reserve(Arena& arena, std::size_t slot_doubles, int slots) {
    if (slots > kMaxSlots) slots = kMaxSlots;
    if (slots < 1) slots = 1;
    if (base_ != nullptr && slot_doubles_ >= slot_doubles && slots_ >= slots) return;
    slot_doubles_ = align_up(slot_doubles > slot_doubles_ ? slot_doubles : slot_doubles_);
    if (slots < slots_) slots = slots_;
    base_ = arena.make_span<double>(slot_doubles_ * static_cast<std::size_t>(slots)).data();
    slots_ = slots;
    free_.store(slots == kMaxSlots ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << slots) - 1,
                std::memory_order_relaxed);
  }

  bool ready(std::size_t slot_doubles) const {
    return base_ != nullptr && slot_doubles_ >= slot_doubles;
  }
  std::size_t slot_doubles() const { return slot_doubles_; }
  int slots() const { return slots_; }

  // RAII lease on one slice; empty when the pool is unsized, too small for
  // the request, or exhausted. data()/span() are valid until release.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& o) noexcept : pool_(o.pool_), slot_(o.slot_) { o.pool_ = nullptr; }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        release();
        pool_ = o.pool_;
        slot_ = o.slot_;
        o.pool_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    explicit operator bool() const { return pool_ != nullptr; }
    double* data() const {
      return pool_ ? pool_->base_ + static_cast<std::size_t>(slot_) * pool_->slot_doubles_
                   : nullptr;
    }
    std::span<double> span() const {
      return pool_ ? std::span<double>{data(), pool_->slot_doubles_} : std::span<double>{};
    }

    void release() {
      if (pool_ != nullptr) {
        pool_->free_.fetch_or(std::uint64_t{1} << slot_, std::memory_order_release);
        pool_ = nullptr;
      }
    }

   private:
    friend class ScratchPool;
    Lease(ScratchPool* p, int slot) : pool_(p), slot_(slot) {}
    ScratchPool* pool_ = nullptr;
    int slot_ = 0;
  };

  // Lease a slice of at least `min_doubles`; empty lease on any miss.
  Lease claim(std::size_t min_doubles) {
    if (base_ == nullptr || slot_doubles_ < min_doubles) return {};
    std::uint64_t m = free_.load(std::memory_order_relaxed);
    while (m != 0) {
      const int slot = std::countr_zero(m);
      if (free_.compare_exchange_weak(m, m & ~(std::uint64_t{1} << slot),
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        return Lease(this, slot);
      }
    }
    return {};
  }

 private:
  // Keep every slice on its own cache line so concurrent workers never
  // false-share slot boundaries.
  static std::size_t align_up(std::size_t doubles) {
    constexpr std::size_t kLine = arch::kCacheLineBytes / sizeof(double);
    return (doubles + kLine - 1) / kLine * kLine;
  }

  double* base_ = nullptr;
  std::size_t slot_doubles_ = 0;
  int slots_ = 0;
  std::atomic<std::uint64_t> free_{0};
};

}  // namespace finbench::core
