// finbench/core/linalg.hpp
//
// Minimal dense linear algebra for the multi-asset extensions: just enough
// to factor a correlation matrix and correlate normal draws. Row-major
// storage, no external dependencies.

#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace finbench::core {

// Lower-triangular Cholesky factor L of a symmetric positive-definite
// matrix A (row-major, n x n): A = L L^T. Returns nullopt if A is not
// positive definite (within a small tolerance).
std::optional<std::vector<double>> cholesky(std::span<const double> a, std::size_t n);

// y = L z for lower-triangular L (row-major, n x n).
void lower_tri_matvec(std::span<const double> l, std::size_t n, std::span<const double> z,
                      std::span<double> y);

// Validate a correlation matrix: symmetric, unit diagonal, entries in
// [-1, 1]. (Positive definiteness is checked by cholesky().)
bool is_correlation_matrix(std::span<const double> a, std::size_t n, double tol = 1e-12);

}  // namespace finbench::core
