// finbench/core/optlevel.hpp
//
// The paper's optimization taxonomy (Sec. III-B): every kernel variant in
// the library is tagged with the level that produced it, and the benchmark
// harness reports results as the same incremental stack the paper's
// figures use.

#pragma once

#include <string_view>

namespace finbench::core {

enum class OptLevel {
  kReference,     // naively-written C/C++ (the paper's starting point)
  kBasic,         // compiler-only: pragmas (unroll / simd / omp)
  kIntermediate,  // code changes: outer-loop SIMD via Vec classes, prefetch
  kAdvanced,      // algorithmic restructuring: AOS->SOA, tiling, fusion
};

constexpr std::string_view to_string(OptLevel level) {
  switch (level) {
    case OptLevel::kReference: return "Reference";
    case OptLevel::kBasic: return "Basic";
    case OptLevel::kIntermediate: return "Intermediate";
    case OptLevel::kAdvanced: return "Advanced";
  }
  return "?";
}

}  // namespace finbench::core
