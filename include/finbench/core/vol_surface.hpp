// finbench/core/vol_surface.hpp
//
// Implied-volatility surface container: the natural output of the
// calibration workloads (batch implied vol) and input to everything else.
// Interpolation follows the market-standard scheme — linear in *total
// variance* w = vol^2 * T across expiries (which preserves calendar
// consistency when the input grid has it) and linear in log-strike across
// the smile. Extrapolation clamps to the boundary.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace finbench::core {

class VolSurface {
 public:
  // Rectangular quote grid: vols[e * strikes.size() + k] is the implied
  // vol at (expiries[e], strikes[k]). Both axes strictly increasing and
  // positive. Throws std::invalid_argument on malformed input.
  static VolSurface from_grid(std::span<const double> strikes,
                              std::span<const double> expiries, std::span<const double> vols);

  // Interpolated implied vol at (strike, expiry).
  double vol(double strike, double expiry) const;

  // Total variance vol^2 * expiry at a point (the interpolation variable).
  double total_variance(double strike, double expiry) const;

  // True when total variance is non-decreasing in expiry at every grid
  // strike — the no-calendar-arbitrage condition interpolation preserves.
  bool calendar_arbitrage_free() const;

  std::size_t num_strikes() const { return strikes_.size(); }
  std::size_t num_expiries() const { return expiries_.size(); }

 private:
  std::vector<double> strikes_;      // stored as log-strike for interpolation
  std::vector<double> log_strikes_;
  std::vector<double> expiries_;
  std::vector<double> total_var_;    // w = vol^2 * T, row-major [expiry][strike]
};

}  // namespace finbench::core
