// finbench/core/quadrature.hpp
//
// Gauss–Legendre quadrature — the numerical-integration substrate for the
// semi-analytic characteristic-function pricers (Heston). Nodes/weights
// are computed at construction by Newton iteration on the Legendre
// polynomials (no tables).

#pragma once

#include <cstddef>
#include <vector>

namespace finbench::core {

class GaussLegendre {
 public:
  // n-point rule on [-1, 1]; n >= 1.
  explicit GaussLegendre(int n);

  int points() const { return static_cast<int>(nodes_.size()); }
  const std::vector<double>& nodes() const { return nodes_; }
  const std::vector<double>& weights() const { return weights_; }

  // Integrate f over [a, b] with this rule.
  template <class F>
  double integrate(F&& f, double a, double b) const {
    const double half = 0.5 * (b - a);
    const double mid = 0.5 * (a + b);
    double acc = 0.0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      acc += weights_[i] * f(mid + half * nodes_[i]);
    }
    return half * acc;
  }

  // Composite rule: [a, b] split into `panels` equal panels.
  template <class F>
  double integrate_panels(F&& f, double a, double b, int panels) const {
    double acc = 0.0;
    const double w = (b - a) / panels;
    for (int p = 0; p < panels; ++p) {
      acc += integrate(f, a + p * w, a + (p + 1) * w);
    }
    return acc;
  }

 private:
  std::vector<double> nodes_;
  std::vector<double> weights_;
};

}  // namespace finbench::core
