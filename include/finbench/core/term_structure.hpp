// finbench/core/term_structure.hpp
//
// Piecewise-constant term structures for rates and volatilities. Under
// Black–Scholes dynamics, only the *integrals* matter: a European option
// under r(t), sigma(t) prices exactly like one under the equivalent
// constants r_eq = (1/T) int r dt and sigma_eq^2 = (1/T) int sigma^2 dt —
// the identity the tests pin and the pricing adapters exploit.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "finbench/core/analytic.hpp"
#include "finbench/core/option.hpp"

namespace finbench::core {

// Right-continuous step function: value(t) = values[i] for
// t in [times[i], times[i+1]), extended flat beyond the last knot.
// times[0] must be 0 and times strictly increasing.
class PiecewiseConstant {
 public:
  PiecewiseConstant(std::span<const double> times, std::span<const double> values);

  double value(double t) const;

  // int_0^t value(s) ds.
  double integral(double t) const;

  // int_0^t value(s)^2 ds (the accumulated variance when this is a vol).
  double integral_squared(double t) const;

  std::size_t num_segments() const { return times_.size(); }

 private:
  std::vector<double> times_;
  std::vector<double> values_;
  std::vector<double> cum_;     // integral up to each knot
  std::vector<double> cum_sq_;  // integral of square up to each knot
};

// Term-structure-aware European pricing: collapses r(t), sigma(t) to their
// option-equivalent constants and prices with the closed form. Exact for
// European options (no approximation involved).
struct TermStructures {
  PiecewiseConstant rate;
  PiecewiseConstant vol;
};

BsPrice black_scholes_term(const OptionSpec& shape, const TermStructures& ts);

// The equivalent constants themselves (useful for feeding any other
// pricer: lattice, PDE, MC).
struct EquivalentConstants {
  double rate;
  double vol;
};
EquivalentConstants equivalent_constants(const TermStructures& ts, double years);

}  // namespace finbench::core
