// finbench/core/analytic.hpp
//
// Closed-form Black–Scholes (the paper's Eq. 1 solved for European options),
// the full greek set, and implied volatility. These scalar, libm-accurate
// routines are the golden reference every other kernel is validated against:
// binomial and Crank–Nicolson European prices converge to them, and Monte
// Carlo estimates must cover them within confidence bounds.

#pragma once

#include "finbench/core/option.hpp"

namespace finbench::core {

struct BsPrice {
  double call = 0.0;
  double put = 0.0;
};

// European call+put under Black–Scholes with continuous dividend yield q.
// Handles the T -> 0 and vol -> 0 limits (returns discounted intrinsic
// value of the forward).
BsPrice black_scholes(double spot, double strike, double years, double rate, double vol,
                      double dividend = 0.0);

inline double black_scholes_price(const OptionSpec& o) {
  const BsPrice p = black_scholes(o.spot, o.strike, o.years, o.rate, o.vol, o.dividend);
  return o.type == OptionType::kCall ? p.call : p.put;
}

struct BsGreeks {
  double delta = 0.0;  // dV/dS
  double gamma = 0.0;  // d2V/dS2
  double vega = 0.0;   // dV/dsigma (per unit vol)
  double theta = 0.0;  // dV/dt (per year, calendar decay)
  double rho = 0.0;    // dV/dr
};

BsGreeks black_scholes_greeks(const OptionSpec& o);

// Implied volatility: Newton iteration on vega with bisection safeguarding.
// Returns a negative value if `price` is outside the arbitrage-free range.
double implied_volatility(const OptionSpec& o, double price);

// Digital (binary) option closed forms: cash-or-nothing pays 1 at expiry
// if in the money; asset-or-nothing pays S(T). The building blocks of the
// vanilla formula itself (call = asset_call - K * cash_call).
struct BsDigital {
  double cash_call = 0.0;
  double cash_put = 0.0;
  double asset_call = 0.0;
  double asset_put = 0.0;
};

BsDigital black_scholes_digital(double spot, double strike, double years, double rate,
                                double vol);

}  // namespace finbench::core
