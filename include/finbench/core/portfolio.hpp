// finbench/core/portfolio.hpp
//
// The unified, layout-tagged workload model. A Portfolio is one owning
// container for a pricing workload in exactly one memory layout — the
// paper's whole "advanced" optimization level is a data-layout
// transformation (AOS→SOA, lane blocking; Sec. III), so layout is a
// first-class, tagged, *measured* property of the workload rather than a
// per-kernel container choice. A PortfolioView is the cheap non-owning
// form every kernel adapter and the engine consume; conversions between
// layouts run through a caller-supplied Arena and report their cost
// (seconds, bytes) so "SOA incl. conversion" can be an honest benchmark
// row instead of an assumption.
//
// Layout tags:
//   kSpecs      heterogeneous OptionSpec records (lattice / PDE / MC)
//   kBsAos      Black–Scholes array-of-structures (the reference layout)
//   kBsSoa      Black–Scholes structure-of-arrays (unit-stride SIMD)
//   kBsSoaF     single-precision SOA (twice the lanes, half the bytes)
//   kBsBlocked  lane-blocked AoSoA: W-option blocks, each field a W-vector
//               (native layout of the blackscholes.blocked.* register-tiled
//               kernels)
//   kPaths      a path-construction job (a count, no per-item data)
//
// Lifetime rules: a PortfolioView never owns memory. Views obtained from
// a Portfolio are valid until the Portfolio is destroyed or moved-from;
// views produced by convert() are valid until the Arena they were built
// in is reset() or destroyed. See docs/portfolio.md.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "finbench/arch/aligned.hpp"
#include "finbench/core/option.hpp"
#include "finbench/core/workload.hpp"

namespace finbench::core {

enum class Layout { kSpecs, kBsAos, kBsSoa, kBsSoaF, kBsBlocked, kPaths };

constexpr std::string_view to_string(Layout l) {
  switch (l) {
    case Layout::kSpecs: return "specs";
    case Layout::kBsAos: return "bs_aos";
    case Layout::kBsSoa: return "bs_soa";
    case Layout::kBsSoaF: return "bs_soa_f";
    case Layout::kBsBlocked: return "bs_blocked";
    case Layout::kPaths: return "paths";
  }
  return "?";
}

// --- Arena ------------------------------------------------------------------
//
// A 64-byte-aligned monotonic bump allocator. allocate() carves from
// committed blocks; reset() rewinds to the start while *keeping* the
// blocks, so a steady-state reset/allocate cycle of the same sizes
// performs zero heap allocations — the property the engine relies on for
// per-request conversion scratch (tests/test_engine_alloc.cpp proves it
// with a counting operator new). Not thread-safe; one arena per request.

class Arena {
 public:
  Arena() = default;
  explicit Arena(std::size_t initial_bytes) {
    if (initial_bytes > 0) grow(initial_bytes);
  }
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // 64-byte-aligned storage for `bytes`; valid until reset()/destruction.
  void* allocate(std::size_t bytes);

  // Typed convenience: an aligned span of n trivially-copyable Ts. The
  // memory is uninitialized; every conversion writes all of it.
  template <class T>
  std::span<T> make_span(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (n == 0) return {};
    return {static_cast<T*>(allocate(n * sizeof(T))), n};
  }

  // Rewind to empty, keeping the committed blocks for reuse. Invalidates
  // every span handed out since construction or the previous reset.
  void reset();

  std::size_t bytes_in_use() const { return in_use_; }
  std::size_t bytes_reserved() const { return reserved_; }

 private:
  struct Free {
    void operator()(std::byte* p) const {
      ::operator delete(p, std::align_val_t{arch::kCacheLineBytes});
    }
  };
  struct Block {
    std::unique_ptr<std::byte, Free> mem;
    std::size_t size = 0;
  };

  Block& grow(std::size_t at_least);

  std::vector<Block> blocks_;
  std::size_t current_ = 0;  // block being bumped
  std::size_t offset_ = 0;   // within blocks_[current_]
  std::size_t in_use_ = 0;
  std::size_t reserved_ = 0;
};

// --- PortfolioView ----------------------------------------------------------
//
// The tagged non-owning workload: exactly the member matching `layout` is
// populated. Spans are mutable because kernels write outputs (call/put)
// back into the workload arrays. Copying a view is O(1) and never copies
// option data.

struct PortfolioView {
  Layout layout = Layout::kSpecs;
  std::span<const OptionSpec> specs{};  // kSpecs
  BsAosView aos{};                      // kBsAos
  BsSoaView soa{};                      // kBsSoa
  BsSoaFView sp{};                      // kBsSoaF
  BsBlockedView blocked{};              // kBsBlocked
  std::size_t npaths = 0;               // kPaths

  std::size_t size() const {
    switch (layout) {
      case Layout::kSpecs: return specs.size();
      case Layout::kBsAos: return aos.size();
      case Layout::kBsSoa: return soa.size();
      case Layout::kBsSoaF: return sp.size();
      case Layout::kBsBlocked: return blocked.size();
      case Layout::kPaths: return npaths;
    }
    return 0;
  }
  bool empty() const { return size() == 0; }
};

// View constructors, one per workload form.
inline PortfolioView view_of(std::span<const OptionSpec> specs) {
  PortfolioView v;
  v.layout = Layout::kSpecs;
  v.specs = specs;
  return v;
}
inline PortfolioView view_of(BsBatchAos& b) {
  PortfolioView v;
  v.layout = Layout::kBsAos;
  v.aos = b.view();
  return v;
}
inline PortfolioView view_of(BsBatchSoa& b) {
  PortfolioView v;
  v.layout = Layout::kBsSoa;
  v.soa = b.view();
  return v;
}
inline PortfolioView view_of(BsBatchSoaF& b) {
  PortfolioView v;
  v.layout = Layout::kBsSoaF;
  v.sp = b.view();
  return v;
}
inline PortfolioView paths_view(std::size_t npaths) {
  PortfolioView v;
  v.layout = Layout::kPaths;
  v.npaths = npaths;
  return v;
}

// --- Layout conversion ------------------------------------------------------

struct ConvertStats {
  double seconds = 0.0;     // wall time of the conversion pass
  std::size_t bytes = 0;    // bytes written into the target layout
};

// True when src_layout can be converted to `target` (any ordered pair of
// the Black–Scholes batch layouts; the identity is trivially negotiable).
bool convertible(Layout src, Layout target);

// Convert `src` into `target` layout with storage carved from `a`,
// carrying inputs *and* current outputs. Returns a view over arena
// memory; valid until a.reset(). Throws std::invalid_argument when
// !convertible(src.layout, target). The identity conversion returns src
// unchanged (zero cost, no arena traffic).
PortfolioView convert(const PortfolioView& src, Layout target, Arena& a,
                      ConvertStats* stats = nullptr);

// Copy the outputs (call/put) of `from` into `to` (any Black–Scholes
// layout pair of equal size). The engine uses this to land a negotiated
// layout's prices back in the caller's arrays. Returns bytes copied.
std::size_t copy_outputs(const PortfolioView& from, const PortfolioView& to);

// --- Portfolio --------------------------------------------------------------
//
// The owning form: one arena holding the workload in one layout. All
// layouts of one (n, seed) derive from a single AOS-ordered Philox draw,
// so Portfolio::bs(n, kBsSoa, seed) is bitwise-equal to converting
// Portfolio::bs(n, kBsAos, seed) — asserted in tests/test_portfolio.cpp.

class Portfolio {
 public:
  Portfolio() = default;
  Portfolio(Portfolio&&) noexcept = default;
  Portfolio& operator=(Portfolio&&) noexcept = default;
  Portfolio(const Portfolio&) = delete;
  Portfolio& operator=(const Portfolio&) = delete;

  // Black–Scholes batch workload in any BS layout (kBsAos, kBsSoa,
  // kBsSoaF, kBsBlocked), drawn by the single shared generator.
  static Portfolio bs(std::size_t n, Layout layout, std::uint64_t seed = 0,
                      const WorkloadParams& p = {});

  // Heterogeneous OptionSpec workload (lattice / PDE / MC kernels).
  static Portfolio specs(std::size_t n, std::uint64_t seed = 0,
                         const SingleOptionWorkloadParams& p = {});
  static Portfolio specs(std::span<const OptionSpec> copy_from);

  // A path-construction job of n paths (no per-item data).
  static Portfolio paths(std::size_t n);

  Layout layout() const { return view_.layout; }
  std::size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }

  // Non-owning view over this portfolio's storage (mutable outputs).
  const PortfolioView& view() { return view_; }
  operator const PortfolioView&() { return view_; }

  // Deep copy into a new Portfolio in `target` layout (inputs + outputs).
  Portfolio converted(Layout target, ConvertStats* stats = nullptr) const;

  std::size_t arena_bytes() const { return arena_.bytes_in_use(); }

 private:
  Arena arena_;
  PortfolioView view_;
};

}  // namespace finbench::core
