// finbench/core/io.hpp
//
// CSV import/export for option workloads — the glue a downstream user
// needs to run the kernels on their own quote files. Format (header
// required, columns in any order, '#' comments ignored):
//
//   spot,strike,years,rate,vol,type,style[,dividend]
//   100,105,1.0,0.05,0.2,call,european,0.0
//
// `type` is call|put; `style` is european|american; dividend defaults 0.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "finbench/core/option.hpp"

namespace finbench::core {

// Parse a CSV stream/file into option specs. Throws std::runtime_error
// with a line number on malformed input.
std::vector<OptionSpec> read_options_csv(std::istream& in);
std::vector<OptionSpec> read_options_csv_file(const std::string& path);

// Write specs (with an optional per-option price column).
void write_options_csv(std::ostream& out, std::span<const OptionSpec> opts,
                       std::span<const double> prices = {});
void write_options_csv_file(const std::string& path, std::span<const OptionSpec> opts,
                            std::span<const double> prices = {});

}  // namespace finbench::core
