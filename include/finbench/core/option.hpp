// finbench/core/option.hpp
//
// Core option vocabulary shared by every kernel: single-option specs, the
// Black–Scholes batch layouts whose contrast drives the paper's Fig. 4
// experiment (AOS — the "reference data" layout costing a gather per SIMD
// access — versus SOA — the SIMD-friendly layout the advanced optimization
// converts to), and the non-owning *views* the kernels actually consume.
//
// Kernels take views (BsAosView / BsSoaView / BsSoaFView ...), never the
// owning containers: a view is two-pointer-per-field cheap, so the same
// kernel prices a heap-backed BsBatchSoa, an arena-backed converted
// portfolio (finbench/core/portfolio.hpp), or a caller's own arrays. The
// owning BsBatch* types remain as the convenient generator output and
// convert to views implicitly.

#pragma once

#include <cstddef>
#include <span>

#include "finbench/arch/aligned.hpp"

namespace finbench::core {

enum class OptionType { kCall, kPut };
enum class ExerciseStyle { kEuropean, kAmerican };

// A single vanilla option on one underlying. Throughout the library the
// risk-free rate r and volatility sigma are per-option unless a kernel
// states otherwise (the paper's Black–Scholes kernel shares r and sigma
// across the batch; see BsBatch*).
struct OptionSpec {
  double spot = 100.0;      // current underlying price S
  double strike = 100.0;    // strike price K
  double years = 1.0;       // time to expiry T (in years)
  double rate = 0.05;       // risk-free interest rate r
  double vol = 0.2;         // volatility sigma
  OptionType type = OptionType::kCall;
  ExerciseStyle style = ExerciseStyle::kEuropean;
  double dividend = 0.0;    // continuous dividend yield q (extension; the
                            // risk-neutral drift becomes r - q)
};

// --- Black–Scholes batch record (shared r, sigma, as in Lis. 1) -----------

// AOS: one record per option, outputs interleaved with inputs. This is the
// paper's reference layout; SIMD access requires gathering fields spread
// across `vector width` cache lines.
struct BsOptionAos {
  double spot;
  double strike;
  double years;
  double call;  // output
  double put;   // output
};

// --- Non-owning views (what kernels take) ----------------------------------

struct BsAosView {
  std::span<BsOptionAos> options{};
  double rate = 0.05;
  double vol = 0.2;
  double dividend = 0.0;

  std::size_t size() const { return options.size(); }
};

struct BsSoaView {
  std::span<double> spot{}, strike{}, years{};
  std::span<double> call{}, put{};  // outputs
  double rate = 0.05;
  double vol = 0.2;
  double dividend = 0.0;

  std::size_t size() const { return spot.size(); }
};

// Read-only SOA view for consumers that don't write prices (greeks,
// implied vol). Implicitly constructible from the mutable view.
struct BsSoaCView {
  std::span<const double> spot{}, strike{}, years{};
  double rate = 0.05;
  double vol = 0.2;
  double dividend = 0.0;

  BsSoaCView() = default;
  BsSoaCView(std::span<const double> s, std::span<const double> k, std::span<const double> t,
             double r, double v, double q)
      : spot(s), strike(k), years(t), rate(r), vol(v), dividend(q) {}
  BsSoaCView(const BsSoaView& v)  // NOLINT(google-explicit-constructor)
      : spot(v.spot), strike(v.strike), years(v.years),
        rate(v.rate), vol(v.vol), dividend(v.dividend) {}

  std::size_t size() const { return spot.size(); }
};

struct BsSoaFView {
  std::span<float> spot{}, strike{}, years{};
  std::span<float> call{}, put{};  // outputs
  float rate = 0.05f;
  float vol = 0.2f;

  std::size_t size() const { return spot.size(); }
};

// Lane-blocked AoSoA: options grouped into blocks of `block` lanes, each
// block storing its fields as contiguous `block`-vectors —
//   [spot×B | strike×B | years×B | call×B | put×B] per block
// so a register tile touches one cache-line run per field. Trailing lanes
// of the last block (n..ceil) are padded with the block's last option.
struct BsBlockedView {
  std::span<double> data{};  // ceil(n/block) * 5 * block doubles
  std::size_t n = 0;         // logical option count
  int block = 8;
  double rate = 0.05;
  double vol = 0.2;
  double dividend = 0.0;

  std::size_t size() const { return n; }
  std::size_t num_blocks() const {
    const std::size_t b = static_cast<std::size_t>(block);
    return b ? (n + b - 1) / b : 0;
  }
  // Field f (0=spot, 1=strike, 2=years, 3=call, 4=put) of block `blk`.
  double* field(std::size_t blk, int f) const {
    return data.data() + (blk * 5 + static_cast<std::size_t>(f)) * static_cast<std::size_t>(block);
  }
};

// --- Owning batch containers ------------------------------------------------

struct BsBatchAos {
  arch::AlignedVector<BsOptionAos> options;
  double rate = 0.05;
  double vol = 0.2;
  double dividend = 0.0;  // shared continuous yield (extension; 0 = paper setup)

  std::size_t size() const { return options.size(); }

  BsAosView view() { return {{options.data(), options.size()}, rate, vol, dividend}; }
  operator BsAosView() { return view(); }  // NOLINT(google-explicit-constructor)
};

// SOA: one contiguous array per field — unit-stride SIMD loads and
// streaming stores. The paper's AOS->SOA conversion (Fig. 4, intermediate).
struct BsBatchSoa {
  arch::AlignedVector<double> spot;
  arch::AlignedVector<double> strike;
  arch::AlignedVector<double> years;
  arch::AlignedVector<double> call;  // output
  arch::AlignedVector<double> put;   // output
  double rate = 0.05;
  double vol = 0.2;
  double dividend = 0.0;  // shared continuous yield (extension; 0 = paper setup)

  std::size_t size() const { return spot.size(); }
  void resize(std::size_t n) {
    spot.resize(n);
    strike.resize(n);
    years.resize(n);
    call.resize(n);
    put.resize(n);
  }

  BsSoaView view() {
    return {{spot.data(), spot.size()},   {strike.data(), strike.size()},
            {years.data(), years.size()}, {call.data(), call.size()},
            {put.data(), put.size()},     rate,
            vol,                          dividend};
  }
  BsSoaCView cview() const {
    return {{spot.data(), spot.size()},
            {strike.data(), strike.size()},
            {years.data(), years.size()},
            rate,
            vol,
            dividend};
  }
  operator BsSoaView() { return view(); }         // NOLINT(google-explicit-constructor)
  operator BsSoaCView() const { return cview(); }  // NOLINT(google-explicit-constructor)
};

// Layout conversions (the "advanced" optimization's data restructuring).
// finbench/core/portfolio.hpp has the arena-backed, cost-reporting form.
BsBatchSoa to_soa(const BsBatchAos& aos);
BsBatchAos to_aos(const BsBatchSoa& soa);

// Single-precision SOA batch for the SP kernel variants (Table I quotes
// separate SP peaks; SP doubles the SIMD lane count).
struct BsBatchSoaF {
  arch::AlignedVector<float> spot;
  arch::AlignedVector<float> strike;
  arch::AlignedVector<float> years;
  arch::AlignedVector<float> call;  // output
  arch::AlignedVector<float> put;   // output
  float rate = 0.05f;
  float vol = 0.2f;

  std::size_t size() const { return spot.size(); }
  void resize(std::size_t n) {
    spot.resize(n);
    strike.resize(n);
    years.resize(n);
    call.resize(n);
    put.resize(n);
  }

  BsSoaFView view() {
    return {{spot.data(), spot.size()},   {strike.data(), strike.size()},
            {years.data(), years.size()}, {call.data(), call.size()},
            {put.data(), put.size()},     rate,
            vol};
  }
  operator BsSoaFView() { return view(); }  // NOLINT(google-explicit-constructor)
};

// Narrowing conversion for SP experiments.
BsBatchSoaF to_single(const BsBatchSoa& soa);

}  // namespace finbench::core
