// finbench/core/option.hpp
//
// Core option vocabulary shared by every kernel: single-option specs, and
// the two batch layouts whose contrast drives the paper's Black–Scholes
// experiment (Fig. 4) — array-of-structures (the "reference data" layout,
// which costs a gather per SIMD access) versus structure-of-arrays (the
// SIMD-friendly layout the advanced optimization converts to).

#pragma once

#include <cstddef>
#include <span>

#include "finbench/arch/aligned.hpp"

namespace finbench::core {

enum class OptionType { kCall, kPut };
enum class ExerciseStyle { kEuropean, kAmerican };

// A single vanilla option on one underlying. Throughout the library the
// risk-free rate r and volatility sigma are per-option unless a kernel
// states otherwise (the paper's Black–Scholes kernel shares r and sigma
// across the batch; see BsBatch*).
struct OptionSpec {
  double spot = 100.0;      // current underlying price S
  double strike = 100.0;    // strike price K
  double years = 1.0;       // time to expiry T (in years)
  double rate = 0.05;       // risk-free interest rate r
  double vol = 0.2;         // volatility sigma
  OptionType type = OptionType::kCall;
  ExerciseStyle style = ExerciseStyle::kEuropean;
  double dividend = 0.0;    // continuous dividend yield q (extension; the
                            // risk-neutral drift becomes r - q)
};

// --- Black–Scholes batch layouts (shared r, sigma, as in Lis. 1) ----------

// AOS: one record per option, outputs interleaved with inputs. This is the
// paper's reference layout; SIMD access requires gathering fields spread
// across `vector width` cache lines.
struct BsOptionAos {
  double spot;
  double strike;
  double years;
  double call;  // output
  double put;   // output
};

struct BsBatchAos {
  arch::AlignedVector<BsOptionAos> options;
  double rate = 0.05;
  double vol = 0.2;
  double dividend = 0.0;  // shared continuous yield (extension; 0 = paper setup)

  std::size_t size() const { return options.size(); }
};

// SOA: one contiguous array per field — unit-stride SIMD loads and
// streaming stores. The paper's AOS->SOA conversion (Fig. 4, intermediate).
struct BsBatchSoa {
  arch::AlignedVector<double> spot;
  arch::AlignedVector<double> strike;
  arch::AlignedVector<double> years;
  arch::AlignedVector<double> call;  // output
  arch::AlignedVector<double> put;   // output
  double rate = 0.05;
  double vol = 0.2;
  double dividend = 0.0;  // shared continuous yield (extension; 0 = paper setup)

  std::size_t size() const { return spot.size(); }
  void resize(std::size_t n) {
    spot.resize(n);
    strike.resize(n);
    years.resize(n);
    call.resize(n);
    put.resize(n);
  }
};

// Layout conversions (the "advanced" optimization's data restructuring).
BsBatchSoa to_soa(const BsBatchAos& aos);
BsBatchAos to_aos(const BsBatchSoa& soa);

// Single-precision SOA batch for the SP kernel variants (Table I quotes
// separate SP peaks; SP doubles the SIMD lane count).
struct BsBatchSoaF {
  arch::AlignedVector<float> spot;
  arch::AlignedVector<float> strike;
  arch::AlignedVector<float> years;
  arch::AlignedVector<float> call;  // output
  arch::AlignedVector<float> put;   // output
  float rate = 0.05f;
  float vol = 0.2f;

  std::size_t size() const { return spot.size(); }
  void resize(std::size_t n) {
    spot.resize(n);
    strike.resize(n);
    years.resize(n);
    call.resize(n);
    put.resize(n);
  }
};

// Narrowing conversion for SP experiments.
BsBatchSoaF to_single(const BsBatchSoa& soa);

}  // namespace finbench::core
