// finbench/resilience/brownout.hpp
//
// Brownout: load-shaped accuracy degradation for the serve dispatcher.
//
// When the rolling queue-delay p99 or the deadline-miss ratio crosses the
// configured thresholds, the dispatcher steps down a ladder instead of
// letting every request miss its deadline:
//
//   L0  normal           requests run with their own knobs
//   L1  mild degrade     accuracy knobs (MC path counts, lattice steps)
//                        scaled to max(0.5, declared floor)
//   L2  floor degrade    knobs scaled to the request's declared floor
//                        (DegradePolicy::min_*_fraction)
//   L3  floor + shed     additionally, requests whose priority is below
//                        BrownoutConfig::shed_below_priority are rejected
//                        with kResourceExhausted before dispatch
//
// Degradation is strictly opt-in per request: the default DegradePolicy
// declares floors of 1.0 (no reduction allowed) and priority 0 (never
// shed under the default shed_below_priority of 0), so a request that
// never heard of brownout is never touched. Cheaper *variants* come for
// free: scaled knobs form a new TuneKey, and the tuner's race picks the
// cheapest variant that wins at the degraded accuracy.
//
// Hysteresis — the no-flapping contract: stepping down requires the
// overload signal plus `dwell_seconds` since the last transition;
// stepping up requires `up_healthy_evals` consecutive healthy evaluation
// windows *and* `up_dwell_seconds` at the current level, against a
// healthier threshold (step_up_fraction * queue_p99_seconds) than the one
// that stepped down. Every transition bumps the resilience.brownout.*
// metrics, sets the resilience.brownout.level gauge, and writes a flight-
// recorder event ("brownout" against kernel id "serve.brownout").
//
// Threading: on_complete()/evaluate() are dispatcher-thread-only and
// allocation-free in steady state (fixed rings, no heap); level() and
// snapshot() are safe from any thread (atomics only). Time is injected
// into evaluate() so tests drive the ladder deterministically.

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace finbench::resilience {

// Rides on PricingRequest: how far the serve layer may degrade this
// request when browned out. Defaults forbid everything.
struct DegradePolicy {
  double min_npath_fraction = 1.0;  // MC paths may drop to this fraction
  double min_steps_fraction = 1.0;  // lattice/PDE steps may drop to this
  int priority = 0;                 // < shed_below_priority is shed at L3
};

struct BrownoutConfig {
  bool enabled = true;
  double queue_p99_seconds = 0.050;  // step-down threshold on queue delay p99
  double miss_ratio = 0.10;          // ... or on deadline-miss fraction
  double step_up_fraction = 0.5;     // healthy when p99 < fraction * threshold
  double sample_horizon_seconds = 0.5;  // only delays this recent count
  double eval_interval_seconds = 0.020;
  double dwell_seconds = 0.100;      // min spacing between step-downs
  double up_dwell_seconds = 0.300;   // min time at a level before stepping up
  int up_healthy_evals = 3;          // consecutive healthy windows to step up
  int max_level = 3;
  std::size_t min_samples = 16;      // completions per window before signals count
  int shed_below_priority = 0;       // L3 sheds priority < this (default: none)
};

class Brownout {
 public:
  Brownout();
  explicit Brownout(const BrownoutConfig& cfg);

  void configure(const BrownoutConfig& cfg);
  const BrownoutConfig& config() const { return cfg_; }

  // Current ladder level; any thread.
  int level() const { return level_.load(std::memory_order_relaxed); }

  // Dispatcher thread: one completed job's queue delay + whether it
  // missed its deadline, stamped with the same clock evaluate() gets —
  // only samples inside sample_horizon_seconds count, so the ladder
  // steps back up on fresh evidence instead of overload-era history.
  void on_complete(double queue_seconds, bool deadline_miss, double now_seconds);

  // Dispatcher thread: maybe transition. `now_seconds` is any monotonic
  // clock (tests inject their own). Cheap no-op between eval intervals.
  // Returns the level after evaluation.
  int evaluate(double now_seconds);

  // Should a request with this priority be shed at the current level?
  bool shed(int priority) const {
    return cfg_.enabled && level() >= cfg_.max_level && priority < cfg_.shed_below_priority;
  }

  // Scale `npath`/`steps` in place per `policy` at the current level.
  // Returns true when anything changed (the serve layer then marks the
  // result kDegraded and records the applied knobs).
  bool apply(const DegradePolicy& policy, std::size_t& npath, int& steps) const;

  struct Snapshot {
    int level = 0;
    std::uint64_t transitions = 0;
    std::uint64_t sheds = 0;
    double queue_p99_seconds = 0.0;  // last evaluated window
    double miss_ratio = 0.0;
  };
  Snapshot snapshot() const;

  void note_shed() { sheds_.fetch_add(1, std::memory_order_relaxed); }

  // Back to L0 with empty windows (tests, scenario boundaries).
  void reset();

 private:
  void transition(int to, double now);

  BrownoutConfig cfg_{};
  std::atomic<int> level_{0};
  std::atomic<std::uint64_t> transitions_{0};
  std::atomic<std::uint64_t> sheds_{0};
  std::atomic<double> last_p99_{0.0};
  std::atomic<double> last_miss_{0.0};

  // Dispatcher-thread state (no locks: single writer).
  static constexpr std::size_t kRing = 256;
  std::array<double, kRing> delays_{};   // rolling queue delays
  std::array<double, kRing> stamps_{};   // completion time of each sample
  std::array<double, kRing> scratch_{};  // percentile workspace
  std::size_t ring_pos_ = 0;
  std::size_t ring_count_ = 0;
  std::uint64_t window_completed_ = 0;  // since last evaluation
  std::uint64_t window_missed_ = 0;
  double last_eval_ = -1.0e300;
  double last_transition_ = -1.0e300;
  int healthy_evals_ = 0;
};

}  // namespace finbench::resilience
