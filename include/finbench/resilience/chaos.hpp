// finbench/resilience/chaos.hpp
//
// Variant-scoped chaos faults: the poison the chaos harness feeds the
// breakers.
//
// PR 4's robust::FaultPlan rides on one *request* and deliberately does
// not trip breakers (a test injecting a fault into its own request is not
// evidence the variant is sick). The chaos harness needs the opposite: a
// fault attached to a *variant*, hitting every request the tuner routes
// to it, exactly like a miscompiled kernel or a bad core would — so
// breakers trip, tune::resolve substitutes the fallback chain, and
// availability recovers while the poison is still active.
//
// set_variant_fault() binds a FaultPlan (throw_rate / slow / slow_ms — the
// engine-side sites) to a variant id; the engine consults maybe_inject()
// right before each chunk of that variant runs. Decisions are the same
// deterministic splitmix64 streams as request-level plans, keyed on
// (plan.seed, site, request_id * K + chunk), so a seed-keyed schedule
// replays exactly.
//
// The no-chaos cost is one relaxed atomic load per chunk (chaos_active()),
// zero when no fault was ever installed.

#pragma once

#include <cstdint>
#include <string_view>

#include "finbench/robust/fault.hpp"

namespace finbench::resilience {

// Bind/replace the fault plan for one variant. Only the engine-side
// sites (throw_rate, slow, corrupt is ignored here) are honoured.
void set_variant_fault(std::string_view variant_id, const robust::FaultPlan& plan);

void clear_variant_fault(std::string_view variant_id);
void clear_variant_faults();

// One relaxed load: any variant fault installed?
bool chaos_active();

// The engine's per-chunk hook. May sleep (slow site) and/or throw
// robust::InjectedKernelFault (throw site) per the variant's plan; a
// variant with no plan returns immediately. Call only when
// chaos_active() is true.
void maybe_inject(const char* variant_id, std::uint64_t request_id, std::uint64_t chunk);

}  // namespace finbench::resilience
