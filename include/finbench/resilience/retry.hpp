// finbench/resilience/retry.hpp
//
// Retry policy + global retry budget for the serve dispatcher.
//
// A PricingRequest opts in by setting retry.max_attempts > 1. The serve
// dispatcher re-enqueues a failed job after a decorrelated-jitter backoff
// — but only for statuses where a retry can plausibly help:
//
//   kKernelError        the variant (or its chain) failed this time; a
//                       retry may land on a different variant once the
//                       breaker trips
//   kResourceExhausted  shed under pressure; pressure passes
//
// Never retried: kInvalidInput / kInvalidArgument / kNotFound (the request
// is wrong, not unlucky), kDeadlineExceeded (the budget is gone),
// kOk / kDegraded (done). Retries of coalesced groups are per *member*:
// each job carries its own attempt counter and backoff state, so one bad
// member doesn't re-price its whole former group.
//
// The RetryBudget is the anti-amplification guard: a token bucket that
// earns `tokens_per_request` per first-attempt dispatch and spends one
// token per retry. Under a 100%-failure outage, total attempts are
// bounded by primaries * (1 + tokens_per_request) + burst — the retry
// layer can never turn an outage into a self-inflicted DDoS.

#pragma once

#include <cstdint>
#include <mutex>

namespace finbench::resilience {

// Rides on PricingRequest. Default = disabled (single attempt).
struct RetryPolicy {
  int max_attempts = 1;               // total dispatches, including the first
  double base_backoff_seconds = 0.001;
  double max_backoff_seconds = 0.100;

  bool enabled() const { return max_attempts > 1; }
};

// Decorrelated jitter (the "DecorrelatedJitter" scheme from the AWS
// architecture blog): next = min(cap, uniform(base, prev * 3)). `state`
// is a splitmix64 stream the caller owns, so a job's backoff sequence is
// a pure function of its seed — the chaos harness replays exactly.
double decorrelated_jitter(std::uint64_t& state, double base_seconds, double cap_seconds,
                           double prev_seconds);

// Global token bucket shared by every retry the dispatcher performs.
// Mutex-guarded: it is touched once per dispatch / retry decision on the
// dispatcher thread plus occasional stats() readers.
class RetryBudget {
 public:
  RetryBudget() = default;

  void configure(double tokens_per_request, double burst);

  // A first-attempt dispatch happened: earn tokens_per_request (clamped
  // to burst).
  void on_primary();

  // Spend one token for a retry; false (and no spend) when the bucket
  // has less than one token.
  bool try_acquire();

  double available() const;

 private:
  mutable std::mutex mu_;
  double tokens_ = 8.0;
  double per_request_ = 0.1;
  double burst_ = 8.0;
};

}  // namespace finbench::resilience
