// finbench/resilience/breaker.hpp
//
// Per-variant circuit breakers: the adaptive half of the robustness story.
// PR 4's fallback chain repairs *one* failing pricing; a breaker notices a
// variant that keeps failing and takes it out of rotation so the fallback
// chain stops being the hot path.
//
// Each registry variant gets a Breaker keyed by its stable id. The engine
// records one Outcome per pricing that executed the variant (ok, kernel
// error, quarantine/fallback repair, deadline miss); the tuner consults
// the breaker before handing out a plan:
//
//   closed     normal operation. record() maintains a sliding window of
//              the last `window` outcomes; once `min_samples` are present
//              and the failure ratio reaches `trip_ratio`, the breaker
//              trips open.
//   open       allow() rejects without racing or dispatching — resolve()
//              substitutes the variant's fallback chain instead. After
//              the current backoff (open_seconds, doubling per re-trip up
//              to max_open_seconds) the breaker half-opens.
//   half-open  allow() grants exactly `probes` requests through to the
//              real variant. `probes` consecutive kOk outcomes close the
//              breaker (and reset the backoff); any failure re-opens it
//              with a doubled backoff.
//
// Transitions bump resilience.breaker.{open,half_open,close} and land in
// the flight recorder ("brk_open"/"brk_half"/"brk_close" against the
// variant id), so a post-mortem shows *when* traffic left a variant.
//
// Recording is skipped for requests carrying a robust::FaultPlan — those
// are deliberate test faults, not variant health. Chaos-harness variant
// faults (resilience/chaos.hpp) do count: that is the point of them.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace finbench::resilience {

enum class BreakerState : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

constexpr std::string_view to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "?";
}

// Outcome of one pricing through a variant, as the breaker scores it.
// Everything but kOk counts toward the trip ratio: a quarantined run burnt
// a fallback re-price and a deadline miss burnt the caller's budget even
// though both returned usable results.
enum class Outcome : int { kOk = 0, kError = 1, kQuarantine = 2, kDeadlineMiss = 3 };

struct BreakerConfig {
  std::size_t window = 32;       // sliding outcome window per variant
  std::size_t min_samples = 8;   // outcomes required before tripping
  double trip_ratio = 0.5;       // failure fraction that trips
  double open_seconds = 0.25;    // first backoff; doubles per re-trip
  double max_open_seconds = 8.0;
  int probes = 3;                // half-open probe budget / closes needed
};

class Breaker {
 public:
  Breaker(std::string id, const BreakerConfig& cfg);
  Breaker(const Breaker&) = delete;
  Breaker& operator=(const Breaker&) = delete;

  // May this request run the variant? Closed: one relaxed load, always
  // true. Open: false until the backoff elapses (then half-opens and the
  // call consumes the first probe). Half-open: consumes a probe, false
  // once the probe budget for this half-open period is spent.
  bool allow();

  // Non-consuming peek: would allow() pass right now? Used by the race to
  // filter candidates without burning half-open probes.
  bool available() const;

  // Score one pricing that actually executed the variant.
  void record(Outcome o);

  BreakerState state() const { return state_.load(std::memory_order_relaxed); }
  const std::string& id() const { return id_; }

  struct Snapshot {
    BreakerState state = BreakerState::kClosed;
    std::size_t window_samples = 0;
    std::size_t window_failures = 0;
    std::uint64_t trips = 0;
    std::uint64_t rejected = 0;
    double backoff_seconds = 0.0;  // next open period
  };
  Snapshot snapshot() const;

  // Back to closed with an empty window and the initial backoff (tests,
  // chaos harness scenario resets).
  void reset();

 private:
  void trip_locked(double now);
  void close_locked();
  void half_open_locked();
  double now_seconds() const;

  const std::string id_;
  const BreakerConfig cfg_;
  std::atomic<BreakerState> state_{BreakerState::kClosed};

  mutable std::mutex mu_;
  std::vector<std::uint8_t> win_;  // 1 = failure; cfg_.window slots
  std::size_t win_pos_ = 0;
  std::size_t win_count_ = 0;
  std::size_t win_failures_ = 0;
  double backoff_ = 0.0;     // current open period
  double reopen_at_ = 0.0;   // when the open state half-opens
  int probes_left_ = 0;      // half-open: allow() budget
  int probe_ok_ = 0;         // half-open: consecutive kOk outcomes
  std::uint64_t trips_ = 0;
  std::uint64_t rejected_ = 0;
};

// Process-wide variant-id -> Breaker map. Breaker handles are stable for
// the life of the process (unique_ptr values), so the engine caches the
// pointer next to its per-kernel histogram handles. Disabled (set_enabled
// false) every allow() passes and record() is a no-op — `pricectl
// --breaker off` and the chaos harness's control arm.
class BreakerRegistry {
 public:
  static BreakerRegistry& instance();

  Breaker& of(std::string_view variant_id);

  // allow()/record() through the enabled flag; allow() of an unknown id
  // creates its breaker (closed, so it passes).
  bool allow(std::string_view variant_id);
  void record(std::string_view variant_id, Outcome o);

  // Non-consuming: false only for an existing breaker that would reject.
  // Unknown ids are available without instantiating a breaker.
  bool available(std::string_view variant_id) const;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  // Config for breakers created after this call (existing ones keep
  // theirs; reset() to drop them).
  void set_config(const BreakerConfig& cfg);
  BreakerConfig config() const;

  std::vector<std::pair<std::string, Breaker::Snapshot>> snapshot() const;

  // Drop every breaker (tests, chaos scenario boundaries). Invalidate
  // no handles lightly: cached Breaker* become dangling, so the engine
  // re-resolves via the generation counter below.
  void reset();
  std::uint64_t generation() const { return generation_.load(std::memory_order_acquire); }

 private:
  BreakerRegistry() = default;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Breaker>> map_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> generation_{1};
  BreakerConfig cfg_{};
};

}  // namespace finbench::resilience
