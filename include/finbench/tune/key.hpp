// finbench/tune/key.hpp
//
// TuneKey — the call-parameter identity the empirical autotuner keys its
// plan cache on (docs/autotuning.md). Dispatch quality shifts with batch
// shape and hardware (the source paper's central finding), so the engine's
// `auto` mode does not name a variant; it names an *intent* — a kernel
// family plus the parameters that change which concrete variant, layout
// path, and schedule win:
//
//   family          canonical registry family ("bs", "binomial", ...)
//   layout          the layout the workload arrives in (negotiation cost
//                   is part of what the race measures, so an AOS batch and
//                   a blocked batch get separate plans)
//   size_bucket     floor(log2(n)) — one plan per power-of-two band; the
//                   winning variant flips across sizes, but per-exact-n
//                   plans would never hit
//   threads         engine pool size the plan was raced at
//   accuracy knobs  steps / steps_per_year / npath / bridge_depth /
//                   cn_num_prices — they change per-item cost and thus the
//                   schedule trade-off
//   pins            caller-pinned schedule / chunks_per_thread (a pinned
//                   request is a different tuning problem: the race only
//                   picks among configurations that honor the pin)
//   american        exercise style present in a kSpecs workload (excludes
//                   european_only candidates)
//
// Keys order strictly (std::tie over every field) so they can live in a
// std::map and serialize deterministically.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <tuple>

#include "finbench/core/portfolio.hpp"

namespace finbench::tune {

struct TuneKey {
  std::string family;  // canonical registry family: "bs", "binomial", ...
  core::Layout layout = core::Layout::kSpecs;
  int size_bucket = 0;  // floor(log2(n))
  int threads = 1;      // engine pool size

  // Accuracy knobs (PricingRequest fields that shift per-item cost).
  int steps = 0;
  int steps_per_year = 0;
  std::uint64_t npath = 0;
  int bridge_depth = 0;
  int cn_num_prices = 0;

  // Caller pins: -1 / 0 mean "unpinned — the plan decides".
  int pinned_schedule = -1;  // else static_cast<int>(arch::Schedule)
  int pinned_chunks = 0;     // else the pinned chunks_per_thread

  // Intra-option task mode pinned by the caller: -1 = auto (the race
  // decides, trying tasks on and off), 0 = forced off, 1 = forced on.
  int tasks = -1;

  bool american = false;  // kSpecs workload carries American exercise

  auto tie() const {
    return std::tie(family, layout, size_bucket, threads, steps, steps_per_year, npath,
                    bridge_depth, cn_num_prices, pinned_schedule, pinned_chunks, tasks,
                    american);
  }

  friend bool operator<(const TuneKey& a, const TuneKey& b) { return a.tie() < b.tie(); }
  friend bool operator==(const TuneKey& a, const TuneKey& b) { return a.tie() == b.tie(); }
  friend bool operator!=(const TuneKey& a, const TuneKey& b) { return !(a == b); }

  // Compact one-line rendering for --explain / error messages.
  std::string to_string() const;
};

// floor(log2(n)); -1 for n == 0. Two workloads in the same power-of-two
// band share a plan.
int size_bucket_of(std::size_t n);

// An auto-intent id is "<family>.auto" with exactly one dot — distinct
// from the three-part concrete ids, where ".auto" is a *width* ("widest
// compiled in"): "bs.auto" is an intent, "bs.intermediate.auto" a variant.
bool is_auto_id(std::string_view id);

// Canonical registry family of an auto id — accepts the registry families
// (bs, binomial, mc, brownian, cn) plus the spelled-out aliases
// blackscholes, montecarlo, cranknicolson. Empty when `id` is not an auto
// id or the family is unknown.
std::string_view auto_family(std::string_view id);

// Inverse of core::to_string(Layout) for cache-file parsing.
bool layout_from_string(std::string_view s, core::Layout& out);

}  // namespace finbench::tune
