// finbench/tune/tuner.hpp
//
// The empirical benchmarker behind `auto` dispatch: given a request whose
// kernel id names an intent ("blackscholes.auto"), race the registry's
// candidate variants — every variant of the family whose layout the
// workload matches or can negotiate to — through the real Engine::price
// path, then race the schedule/chunks_per_thread grid on the winning
// variant (chunked kSpecs execution only), and return the evidence as a
// RaceReport. resolve() is the cache-through entry the engine calls: hit
// the PlanCache, else race once and persist.
//
// Design points (docs/autotuning.md):
//
//  - Candidates race through Engine::price on a *copy* of the live request
//    (fresh Scratch, faults/deadline cleared), so what is measured is the
//    real dispatch path: negotiation + writeback, sanitization, chunking.
//    Losing candidates may scribble the workload's output arrays; the
//    winner's subsequent real run overwrites every output, so the caller
//    never observes race side effects.
//  - Timing is warm-up + best-of-reps of PricingResult::seconds — the same
//    discipline as bench::measure_variant, without leaving the engine.
//  - Load-imbalance telemetry (parallel.engine.<schedule>.imbalance, the
//    PR2 measurement) is sampled per configuration and used as the
//    tie-breaker between configurations within 3% of the best rate — and
//    recorded on the plan for --explain.
//  - A pinned schedule / chunks_per_thread restricts which configuration
//    may win, but the full grid still races: when the pinned best loses
//    the unconstrained best by >10%, RaceReport::pinned_losing is set and
//    the engine bumps engine.tune.pinned_losing once (the race runs once
//    per key by construction).
//  - The request's deadline does not govern the race: resolution is a
//    once-per-key warm-up cost, not part of the priced run.

#pragma once

#include <string_view>

#include "finbench/engine/engine.hpp"
#include "finbench/tune/cache.hpp"
#include "finbench/tune/key.hpp"
#include "finbench/tune/plan.hpp"

namespace finbench::tune {

// The TuneKey of `req` under canonical `family`, raced at `threads` pool
// size. Scans kSpecs workloads for American exercise.
TuneKey key_for(const engine::PricingRequest& req, std::string_view family, int threads);

struct RaceOptions {
  int reps = 2;           // timed repetitions per configuration (plus one warm-up)
  bool imbalance = true;  // sample parallel imbalance during the race
};

// Race every candidate configuration for `key` on the live workload of
// `req`. Never throws; a key with no runnable candidate returns a report
// whose winner is !valid().
RaceReport race(const engine::Engine& eng, const engine::PricingRequest& req,
                const TuneKey& key, const RaceOptions& opt = {});

struct Resolution {
  DispatchPlan plan;   // valid() false: no runnable candidate
  bool hit = false;    // served from PlanCache::instance()
  bool raced = false;  // a race ran (and its winner was persisted)
  // The plan's variant was swapped for a fallback-chain link because the
  // winner's circuit breaker is open (finbench/resilience). A substituted
  // plan is one-shot: it is never persisted and callers must not cache it
  // — the next resolution re-consults the breaker, which is how half-open
  // probes reach the real winner again.
  bool substituted = false;
};

// Cache-through resolution: PlanCache hit (validated against the registry
// — a plan naming a variant this build does not ship re-races instead of
// mis-dispatching), else race + put. Bumps engine.tune.{hit,miss,race,
// pinned_losing}. A hit whose winner is breaker-rejected substitutes the
// first allowed link of the winner's fallback chain (substituted = true,
// not persisted); an exhausted chain fails open to the winner.
Resolution resolve(const engine::Engine& eng, const engine::PricingRequest& req,
                   const TuneKey& key);

}  // namespace finbench::tune
