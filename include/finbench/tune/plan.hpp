// finbench/tune/plan.hpp
//
// DispatchPlan — what a TuneKey resolves to: the concrete registry variant
// to run plus the schedule and chunk granularity it should run under, with
// the measured throughput that justified the choice. RaceReport is the
// full evidence trail of one race (every candidate configuration and its
// rate), kept alongside the winner so `pricectl --explain` can answer
// "why this plan" even in a different process, from the cache file alone.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "finbench/arch/parallel.hpp"
#include "finbench/tune/key.hpp"

namespace finbench::tune {

constexpr std::string_view to_string(arch::Schedule s) {
  return s == arch::Schedule::kStatic ? "static" : "dynamic";
}

inline bool schedule_from_string(std::string_view s, arch::Schedule& out) {
  if (s == "static") {
    out = arch::Schedule::kStatic;
    return true;
  }
  if (s == "dynamic") {
    out = arch::Schedule::kDynamic;
    return true;
  }
  return false;
}

struct DispatchPlan {
  std::string variant_id;  // concrete registry id; empty = no plan
  arch::Schedule schedule = arch::Schedule::kDynamic;
  int chunks_per_thread = 8;
  bool tasks = false;  // intra-option fork-join tasks enabled

  // Race-time evidence: best measured throughput of this configuration and
  // the parallel.engine.<schedule>.imbalance mean observed while it ran
  // (0 = unmeasured / whole-batch execution).
  double items_per_sec = 0.0;
  double imbalance = 0.0;

  bool valid() const { return !variant_id.empty(); }
};

// One raced configuration: a (variant, schedule, chunks_per_thread) triple
// and what it measured. ok == false candidates carry the failure in `note`
// (e.g. a variant whose status came back not-ok on this workload).
struct CandidateResult {
  std::string id;
  arch::Schedule schedule = arch::Schedule::kDynamic;
  int chunks_per_thread = 8;
  bool tasks = false;  // raced with intra-option tasks enabled
  double items_per_sec = 0.0;
  double imbalance = 0.0;
  bool ok = false;
  std::string note;
};

struct RaceReport {
  TuneKey key;
  DispatchPlan winner;  // valid() false when no candidate priced cleanly
  std::vector<CandidateResult> candidates;
  double race_seconds = 0.0;

  // Unconstrained best rate across every configuration (ignoring pins).
  // When the caller pinned schedule/chunks and the pinned best loses to
  // this by more than 10%, pinned_losing is set and the engine bumps the
  // engine.tune.pinned_losing counter — the one-time "your pin costs you"
  // warning.
  double best_items_per_sec = 0.0;
  bool pinned_losing = false;

  // Candidates excluded because their circuit breaker was open when the
  // race ran (finbench/resilience). A race with exclusions produced a
  // degraded-era winner: resolve() uses it for the current pricing but
  // does not persist it, so the healthy-era field re-races later.
  // Transient — never serialized into the plan cache.
  int breaker_excluded = 0;
};

}  // namespace finbench::tune
