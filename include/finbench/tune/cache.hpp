// finbench/tune/cache.hpp
//
// PlanCache — the persistent variant-selection cache behind the engine's
// `auto` dispatch mode (docs/autotuning.md). In memory it is a strict-
// ordered map TuneKey -> RaceReport behind a mutex; on disk it is a JSON
// document (`finbench.tune_cache/v1`) fingerprinted by the host CPU
// (brand string, ISA flags, logical CPU count, hostname) so a cache raced
// on one machine never mis-dispatches another.
//
// File contract (the corrupt-cache satellite of docs/autotuning.md):
//
//   absent file            kOk, empty cache — first run races and persists
//   unparseable/truncated  kDegraded, empty cache — every key re-races
//   wrong schema           kDegraded, empty cache
//   foreign fingerprint    kDegraded, empty cache
//   malformed entries      kDegraded, good entries kept, bad ones skipped
//
// A rejected file bumps engine.tune.cache_rejected and never throws out of
// load(): a broken cache degrades to a re-race, it cannot crash dispatch.
// Writes are atomic: a temp file next to the target is renamed over it, so
// a reader never observes a half-written cache.
//
// The process-wide instance() consults the FINBENCH_TUNE_CACHE environment
// variable once; without it (and without set_path) the cache is memory-only
// — tests and libraries do not write surprise files.

#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "finbench/robust/status.hpp"
#include "finbench/tune/key.hpp"
#include "finbench/tune/plan.hpp"

namespace finbench::tune {

inline constexpr std::string_view kTuneCacheSchema = "finbench.tune_cache/v1";

// Environment identity a cache file is only valid for. Equality is exact:
// a different flag set, core count, or host re-races from scratch rather
// than trusting stale winners.
struct Fingerprint {
  std::string brand;  // cpuid brand string
  std::string host;   // gethostname()
  int logical_cpus = 0;
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  bool avx512dq = false;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) = default;
  std::string to_string() const;
};

Fingerprint host_fingerprint();

class PlanCache {
 public:
  PlanCache() = default;  // empty, memory-only

  // Process-wide cache. First access wires FINBENCH_TUNE_CACHE (if set)
  // through set_path().
  static PlanCache& instance();

  // Bind a cache file: loads it now (returning the load status — see the
  // file contract above) and persists every future put() to it. An empty
  // path unbinds the file without touching in-memory entries.
  robust::Status set_path(std::string path);
  std::string path() const;

  // Replace the in-memory entries with the file's contents. Degraded loads
  // leave whatever individual entries survived (none for a file-level
  // reject). Never throws.
  robust::Status load(const std::string& path);
  robust::Status last_load_status() const;

  // Write the current entries to `path` (atomically). The no-argument form
  // writes to the bound path; a cache without one succeeds as a no-op.
  bool save() const;
  bool save_as(const std::string& path) const;

  // Winner plan for a key; nullopt on a miss.
  std::optional<DispatchPlan> find(const TuneKey& key) const;

  // Full race evidence for a key (pricectl --explain).
  std::optional<RaceReport> explain(const TuneKey& key) const;

  // Install (or overwrite) a key's race outcome and persist if a path is
  // bound.
  void put(const TuneKey& key, const RaceReport& report);

  // Drop one key (pricectl --tune forces a re-race this way). Persists the
  // removal. Returns whether the key existed.
  bool erase(const TuneKey& key);

  // Drop every entry (keeps the bound path; does not rewrite the file).
  void clear();

  std::size_t size() const;

 private:
  robust::Status load_locked(const std::string& path);
  bool save_locked(const std::string& path) const;

  mutable std::mutex mu_;
  std::map<TuneKey, RaceReport> entries_;
  std::string path_;
  robust::Status load_status_;
};

}  // namespace finbench::tune
