// finbench/obs/obs.hpp — umbrella header for the observability layer:
// scoped-span tracing, the metrics registry, latency histograms, the
// per-chunk flight recorder, hardware perf counters, the structured JSON
// run report, and the OpenMetrics exporter. See docs/observability.md.

#pragma once

#include "finbench/obs/flight_recorder.hpp"
#include "finbench/obs/histogram.hpp"
#include "finbench/obs/json.hpp"
#include "finbench/obs/metrics.hpp"
#include "finbench/obs/openmetrics.hpp"
#include "finbench/obs/perf_counters.hpp"
#include "finbench/obs/run_report.hpp"
#include "finbench/obs/trace.hpp"
