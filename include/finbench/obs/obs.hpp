// finbench/obs/obs.hpp — umbrella header for the observability layer:
// scoped-span tracing, the metrics registry, hardware perf counters, and
// the structured JSON run report. See docs/observability.md.

#pragma once

#include "finbench/obs/json.hpp"
#include "finbench/obs/metrics.hpp"
#include "finbench/obs/perf_counters.hpp"
#include "finbench/obs/run_report.hpp"
#include "finbench/obs/trace.hpp"
