// finbench/obs/openmetrics.hpp
//
// OpenMetrics text exporter over the obs registries: counters (-> counter
// families with the required `_total` sample suffix), gauges (-> gauge),
// stats (-> summary: `_count` + `_sum`), and histograms (-> histogram:
// cumulative `_bucket{le="..."}` samples on a fixed seconds ladder, plus
// `_sum`/`_count`), ending with the mandatory `# EOF` terminator. Metric
// names are transliterated to the OpenMetrics charset (dots become
// underscores) under a `finbench_` prefix; registered histogram labels
// pass through verbatim with `le` appended.
//
// One function, no server: callers scrape on their own schedule —
// `pricectl --metrics PATH` for a one-shot scrape, `pricectl --watch MS`
// for a periodic live view, or any embedding that wants to serve the text
// over HTTP. Validated by tools/validate_openmetrics.py in CI.

#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

namespace finbench::obs {

// Render the current metrics + histogram registries as OpenMetrics text.
void write_openmetrics(std::ostream& out);

// Convenience: write_openmetrics to a file. False when it cannot be written.
bool write_openmetrics_file(const std::string& path);

// Transliterate a registry metric name to an OpenMetrics name:
// `finbench_` prefix, [a-zA-Z0-9_] charset, dots to underscores.
std::string openmetrics_name(std::string_view name);

}  // namespace finbench::obs
