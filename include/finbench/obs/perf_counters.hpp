// finbench/obs/perf_counters.hpp
//
// Hardware performance counters via perf_event_open(2): cycles,
// instructions, L1D loads/misses, and LLC references/misses, reported per
// measured region as IPC and miss rates.
//
// Containers and locked-down kernels routinely refuse the syscall
// (perf_event_paranoid, seccomp, missing CAP_PERFMON), so everything here
// degrades to a graceful no-op: perf_available() turns false,
// perf_unavailable_reason() says why, samples come back with valid=false,
// and the run report records {"available": false}.
//
// Events are opened once per process with inherit=1 *before* the OpenMP
// worker pool exists (bench::Options::parse calls perf_init()), so worker
// threads created afterwards are aggregated into the same counts. Counts
// are read as deltas around a region — the events free-run — and scaled by
// time_enabled/time_running to undo kernel multiplexing.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace finbench::obs {

struct PerfSample {
  bool valid = false;
  double cycles = 0.0;
  double instructions = 0.0;
  double l1d_loads = 0.0;
  double l1d_misses = 0.0;
  double llc_refs = 0.0;
  double llc_misses = 0.0;

  double ipc() const { return cycles > 0.0 ? instructions / cycles : 0.0; }
  double l1d_miss_rate() const { return l1d_loads > 0.0 ? l1d_misses / l1d_loads : 0.0; }
  double llc_miss_rate() const { return llc_refs > 0.0 ? llc_misses / llc_refs : 0.0; }

  PerfSample operator-(const PerfSample& rhs) const;
  PerfSample& operator+=(const PerfSample& rhs);
};

// Open the counters (idempotent). Call early — before the first parallel
// region — so inherited per-thread counts cover the OpenMP pool. Returns
// whether at least cycles+instructions opened.
bool perf_init();

bool perf_available();
// Empty string when available; otherwise e.g. "perf_event_open: Permission
// denied (kernel.perf_event_paranoid?)".
std::string perf_unavailable_reason();

// Instantaneous cumulative counts (multiplex-scaled). valid=false when the
// counters are unavailable.
PerfSample perf_read();

// RAII region sampler: reads at construction and destruction, accumulates
// the delta under `label` in the process-wide region table. No-op when the
// counters are unavailable.
class PerfRegion {
 public:
  explicit PerfRegion(std::string label);
  ~PerfRegion();
  PerfRegion(const PerfRegion&) = delete;
  PerfRegion& operator=(const PerfRegion&) = delete;

 private:
  std::string label_;
  PerfSample begin_;
};

struct PerfRegionRecord {
  std::string label;
  PerfSample sample;  // accumulated over every PerfRegion with this label
};

// Snapshot of the accumulated per-region samples, in first-seen order.
std::vector<PerfRegionRecord> perf_region_snapshot();
void reset_perf_regions();

}  // namespace finbench::obs
