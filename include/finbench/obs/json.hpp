// finbench/obs/json.hpp
//
// Minimal JSON support for the observability layer: a streaming writer
// (escaping, comma management, stable number formatting) used by the trace
// exporter and the run report, plus a small recursive-descent parser used
// to validate emitted documents in tests and tools. Neither aims to be a
// general-purpose JSON library; they exist so the repo has zero external
// dependencies for telemetry.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace finbench::obs::json {

// Streaming writer. Usage:
//
//   Writer w(out);
//   w.begin_object();
//   w.kv("schema", "finbench.run_report/v2");
//   w.key("rows"); w.begin_array(); ... w.end_array();
//   w.end_object();
//
// Non-finite doubles are emitted as null (JSON has no NaN/Inf).
class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void null();

  template <class T>
  void kv(std::string_view k, T&& v) {
    key(k);
    value(std::forward<T>(v));
  }
  void kv_null(std::string_view k) {
    key(k);
    null();
  }

 private:
  void separator();

  std::ostream& out_;
  // One entry per open container: true once the first element was written.
  std::vector<bool> has_elem_;
  bool pending_key_ = false;
};

// Escape `s` into a JSON string literal (no surrounding quotes).
std::string escape(std::string_view s);

// ---------------------------------------------------------------------------
// Parser (validation-grade: full JSON grammar, values held in a tree).
// ---------------------------------------------------------------------------

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_bool() const { return type == Type::kBool; }

  // Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
  // find() that throws std::runtime_error naming the missing key.
  const Value& at(std::string_view key) const;
};

// Parse a complete JSON document. Throws std::runtime_error with a byte
// offset on malformed input or trailing garbage.
Value parse(std::string_view text);

// Convenience: read a whole file and parse it.
Value parse_file(const std::string& path);

}  // namespace finbench::obs::json
