// finbench/obs/flight_recorder.hpp
//
// The per-chunk flight recorder: a bounded ring buffer of fixed-size
// records — one per chunk the engine executes (or skips) — kept cheap
// enough to run always-on. Each record carries the request id, the chunk's
// item range, the variant id, the worker that ran it, start/end ticks on
// the trace timebase, and the chunk's final robust status string.
//
// Writers claim a slot with one atomic ticket and fill it under a per-slot
// seqlock: record() never blocks, never allocates, and concurrent writers
// never corrupt each other's slots — a reader that races a writer skips
// the torn slot instead of reading half a record. The ring holds the last
// `capacity()` records; older ones are overwritten (a post-mortem wants
// the chunks *around* the failure, not the whole history).
//
// Dumps: write_flight_dump() renders the ring as JSON (oldest to newest)
// with an `unpriced_ranges` summary — the item ranges of the most recent
// request's deadline-skipped / never-run chunks, the exact data a
// deadline post-mortem needs. The engine triggers flight_auto_dump() on
// kDeadlineExceeded, kKernelError, and quarantine (fallback re-pricing);
// the first event *per distinct reason* per process writes a dump to a
// reason-suffixed path ("finbench_flight.deadline_exceeded.json"), so a
// quarantine dump never swallows a later deadline dump, while a long
// degraded run still serializes each story only once (re-arm everything
// with reset_flight_auto_dump()). On demand: pricectl --flight-dump.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace finbench::obs {

struct FlightRecord {
  std::uint64_t request_id = 0;
  std::uint32_t chunk = 0;       // chunk index within the request
  std::int32_t worker = -1;      // pool participant; -1 = not run on a worker
  std::uint64_t begin = 0;       // item range [begin, end)
  std::uint64_t end = 0;
  double start_us = 0.0;         // trace::now_us() timebase; 0 when never run
  double end_us = 0.0;
  char kernel_id[48] = {};       // variant id, truncated
  char status[12] = {};          // robust chunk outcome ("ok", "deadline", ...)

  void set_kernel(const char* id);
  void set_status(const char* s);
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  static constexpr std::size_t kDefaultCapacity = 4096;
  static constexpr std::size_t kMinCapacity = 16;

  // Append one record. Lock-free: one relaxed ticket fetch_add plus a
  // seqlocked payload copy into the claimed slot.
  void record(const FlightRecord& r);

  // Consistent copy of the ring, oldest record first. Slots torn by a
  // concurrent writer (or overwritten mid-read) are skipped.
  std::vector<FlightRecord> snapshot() const;

  std::size_t capacity() const { return slots_.size(); }
  std::uint64_t total_recorded() const { return head_.load(std::memory_order_relaxed); }

  // Drop every record (tests). Not safe against concurrent writers.
  void clear();

 private:
  struct Slot {
    // Seqlock: 2t+1 while ticket t's payload is being written, 2t+2 once
    // complete. A reader expecting ticket t accepts only 2t+2 before and
    // after its copy.
    std::atomic<std::uint64_t> seq{0};
    FlightRecord rec;
  };
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> head_{0};
};

// Process-wide recorder the engine records into. First use fixes the
// capacity (set_flight_capacity before any recording to change it).
FlightRecorder& flight_recorder();

// Replace the process recorder with a fresh one of `capacity` slots
// (tests). Existing records are discarded. Not safe against concurrent
// writers; the previous recorder is leaked so stale references stay valid.
void set_flight_capacity(std::size_t capacity);

// Where automatic dumps land (default "finbench_flight.json" in the CWD).
void set_flight_dump_path(std::string path);
std::string flight_dump_path();

// Write the process recorder as JSON to `path` with the given reason
// string. Returns false when the file cannot be written.
bool write_flight_dump(const std::string& path, const std::string& reason = "on_demand");

// Post-mortem trigger: the first call per distinct `reason` writes a dump
// to flight_dump_path() with ".<reason>" spliced in before the extension
// (returns whether this call wrote it; later calls with the same reason
// return false). At most 8 distinct reasons dump per arming period.
// Re-arm every reason with reset_flight_auto_dump().
bool flight_auto_dump(const char* reason);
void reset_flight_auto_dump();

}  // namespace finbench::obs
