// finbench/obs/histogram.hpp
//
// Lock-free log-bucketed latency histograms (HDR-style): fixed
// log-linear buckets over nanoseconds, per-thread sharded relaxed-atomic
// increments on the record path, merge-on-snapshot, and percentile
// queries (p50/p90/p99/p99.9) on the merged snapshot. Registered by name
// (plus an optional pre-formatted OpenMetrics label set) alongside the
// counter/gauge/stat registry; the run report's `histograms` section and
// obs::write_openmetrics render every registered instance.
//
// Bucketing: values below 2^kSubBits ns get exact unit buckets; above
// that, each power-of-two octave is split into 2^kSubBits sub-buckets,
// so the relative quantization error is bounded by 2^-kSubBits (~6.3%
// with kSubBits = 4) across the whole range. Values are clamped to
// [0, kMaxTrackableNs); anything longer lands in the top bucket.
//
// Hot-path idiom matches the counters — resolve the handle once, then
// record with relaxed atomics (one increment + one add + a rare CAS for
// the running min/max, all on this thread's shard):
//
//   static obs::Histogram& h = obs::histogram("engine.chunk.seconds");
//   h.record_seconds(t.seconds());
//
// Handles are valid for the process lifetime; reset_histograms() zeroes
// contents without invalidating them.

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace finbench::obs {

class Histogram {
 public:
  static constexpr int kSubBits = 4;                    // sub-buckets per octave = 16
  static constexpr int kSubBuckets = 1 << kSubBits;
  static constexpr int kMaxExponent = 41;               // top octave: [2^41, 2^42) ns
  static constexpr std::uint64_t kMaxTrackableNs =      // ~73.3 minutes
      std::uint64_t{1} << (kMaxExponent + 1);
  static constexpr int kBuckets =
      kSubBuckets + (kMaxExponent - kSubBits + 1) * kSubBuckets;  // 624
  static constexpr int kShards = 8;

  Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;
  ~Histogram();

  // Record one observation. Lock-free: relaxed increments on the calling
  // thread's shard; safe from any number of threads concurrently.
  void record_ns(std::uint64_t ns);
  void record_seconds(double seconds) {
    record_ns(seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(seconds * 1e9 + 0.5));
  }

  // Merged view of every shard at one point in time. Percentiles answer
  // from bucket midpoints, so they carry the bucketing's ~2^-kSubBits
  // relative error; count/sum are exact.
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    std::uint64_t min_ns = 0;  // 0 when count == 0
    std::uint64_t max_ns = 0;
    std::vector<std::uint64_t> buckets;  // kBuckets entries (empty when count == 0)

    // Quantile in seconds, q in [0, 1]; 0 when the snapshot is empty.
    double quantile(double q) const;
    double p50() const { return quantile(0.50); }
    double p90() const { return quantile(0.90); }
    double p99() const { return quantile(0.99); }
    double p999() const { return quantile(0.999); }
    double mean_seconds() const {
      return count > 0 ? 1e-9 * static_cast<double>(sum_ns) / static_cast<double>(count) : 0.0;
    }
    double sum_seconds() const { return 1e-9 * static_cast<double>(sum_ns); }

    // Accumulate another snapshot (same bucket layout) into this one —
    // the same operation snapshot() applies across shards.
    void merge(const Snapshot& other);

    // Cumulative count of observations <= `seconds` (bucket-granular:
    // whole buckets whose upper edge is <= the threshold).
    std::uint64_t cumulative_le(double seconds) const;
  };
  Snapshot snapshot() const;

  // Zero every shard (tests / scrape-and-reset loops). Not atomic with
  // respect to concurrent record() calls — counts racing the reset may
  // land on either side.
  void reset();

  // Bucket geometry (exposed for tests and the exporters).
  static int bucket_index(std::uint64_t ns);
  static std::uint64_t bucket_lower_ns(int index);
  static std::uint64_t bucket_upper_ns(int index);  // exclusive

 private:
  struct Shard;
  Shard* shards_;  // kShards cacheline-aligned shards
};

// Look up (creating on first use) a histogram by name. `labels`, when
// given, is a pre-formatted OpenMetrics label list without braces, e.g.
// `kernel="blackscholes.blocked.8",layout="bs_blocked"` — it becomes part
// of the registry key, the run report key, and the exported label set.
// References are stable for the process lifetime.
Histogram& histogram(std::string_view name);
Histogram& histogram(std::string_view name, std::string_view labels);

// Snapshot of every registered histogram, sorted by registry key.
struct HistogramEntry {
  std::string name;    // metric name, no labels
  std::string labels;  // label list without braces; empty when unlabeled
  Histogram::Snapshot snap;

  // Registry key: name or name{labels}.
  std::string key() const {
    return labels.empty() ? name : name + "{" + labels + "}";
  }
};
std::vector<HistogramEntry> snapshot_histograms();

// Zero every registered histogram (handles stay valid).
void reset_histograms();

// Test isolation: zero the whole observability state — metrics registry,
// histogram registry, measurement table, and the flight recorder — so a
// test stops observing values leaked by earlier test cases in the same
// binary. Registered handles stay valid (statics in library code keep
// working); only the recorded values are cleared. Defined in
// src/obs/histogram.cpp.
void reset_for_testing();

}  // namespace finbench::obs
