// finbench/obs/run_report.hpp
//
// The structured JSON run report (`--json PATH`): everything a later
// analysis needs to interpret one bench invocation without re-running it —
// the harness::Report rows (with roofline efficiency), host topology and
// machine model, effective thread count, git SHA, raw repetition
// statistics per measurement, the metrics registry, every registered
// latency histogram (count/sum, percentiles, sparse buckets), and
// hardware-counter samples per region. Schema "finbench.run_report/v2";
// documented in docs/observability.md and validated by
// tools/validate_report_json.py.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace finbench::harness {
class Report;
}

namespace finbench::obs {

// One bench measurement (one items_per_sec() call): repetition timing
// statistics under the label the binary gave it.
struct MeasurementRecord {
  std::string label;
  std::size_t items = 0;
  int reps = 0;
  double best_sec = 0.0;
  double mean_sec = 0.0;
  double stddev_sec = 0.0;

  double rel_stddev() const { return mean_sec > 0.0 ? stddev_sec / mean_sec : 0.0; }
  bool noisy() const { return rel_stddev() > 0.10; }
};

void record_measurement(MeasurementRecord rec);
std::vector<MeasurementRecord> measurement_snapshot();
void reset_measurements();

// Invocation context the Report itself does not carry.
struct RunContext {
  std::string binary;  // argv[0] basename
  bool full = false;
  int reps = 0;
  int threads = 0;     // effective OpenMP thread count

  // Portfolio-layout provenance: the layout the workload was presented in
  // ("aos", "soa", ... or "native" when every measurement used its
  // variant's native layout) and the one-time layout-conversion cost the
  // engine's negotiation paid, in seconds (0 when nothing was converted).
  std::string layout = "native";
  double convert_seconds = 0.0;

  // Denormal policy the thread pool installs on its participants
  // (robust::denormal_mode_string(): "ftz+daz" or "ieee"). Threaded
  // through the context because obs does not link against robust.
  std::string denormal_mode = "ieee";
};

// Best-effort repository HEAD SHA: walks up from the current directory to
// a .git and resolves HEAD -> ref. Empty string when not in a checkout.
std::string git_sha();

// Write the run report for `report` (plus the global measurement, metrics,
// and perf-region state) to `path`. Returns false if the file cannot be
// written.
bool write_run_report(const std::string& path, const harness::Report& report,
                      const RunContext& ctx);

}  // namespace finbench::obs
