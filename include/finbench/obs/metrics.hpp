// finbench/obs/metrics.hpp
//
// Process-wide named metrics: counters (monotonic, relaxed-atomic adds),
// gauges (last-value), and stats (count/sum/min/max/stddev summaries).
// Kernels record domain quantities ("mc.paths", "rng.normals"); the
// parallel runtime records per-thread wall times so load imbalance is
// visible; the run report (finbench/obs/run_report.hpp) snapshots the
// whole registry into JSON.
//
// Hot-path idiom — resolve the handle once, then add with a relaxed
// atomic:
//
//   static obs::Counter& paths = obs::counter("mc.paths");
//   paths.add(npath);
//
// Handles returned by counter()/gauge()/stat() are valid for the process
// lifetime.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace finbench::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// Streaming summary statistic. record() is thread-safe (per-stat spinlock);
// intended for per-region / per-thread observations, not per-item loops.
class Stat {
 public:
  void record(double x);

  struct Summary {
    std::uint64_t count = 0;
    double sum = 0.0, min = 0.0, max = 0.0, mean = 0.0, stddev = 0.0;
  };
  Summary summary() const;
  void reset();

 private:
  mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  std::uint64_t n_ = 0;
  double sum_ = 0.0, sumsq_ = 0.0, min_ = 0.0, max_ = 0.0;
};

// Look up (creating on first use) a metric by name. References are stable.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Stat& stat(std::string_view name);

// Snapshot of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Stat::Summary>> stats;
};
MetricsSnapshot snapshot_metrics();

// Zero every registered metric (tests).
void reset_metrics();

// ---------------------------------------------------------------------------
// Parallel-runtime hooks (implemented here, called from arch/parallel.hpp).
// ---------------------------------------------------------------------------

namespace detail {
extern std::atomic<bool> g_parallel_timing;
}

// Master switch for per-thread region timing in arch::parallel_for et al.
// Off by default; the bench harness enables it alongside --trace/--json.
void enable_parallel_timing(bool on = true);
inline bool parallel_timing_enabled() {
  return detail::g_parallel_timing.load(std::memory_order_relaxed);
}

// Record one parallel region's per-thread wall times (aggregated by the
// caller): updates "parallel.<site>.thread_seconds" and the imbalance stat
// "parallel.<site>.imbalance" (max/mean thread time; 1.0 = perfectly even).
void record_parallel_region(const char* site, int nthreads, double min_sec, double max_sec,
                            double sum_sec);

}  // namespace finbench::obs
