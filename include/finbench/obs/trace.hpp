// finbench/obs/trace.hpp
//
// Scoped-span tracing with per-thread ring buffers and Chrome trace_event
// export. Designed so an *instrumented but disabled* hot loop pays one
// relaxed atomic load and a predictable branch per span site:
//
//   void solve_step() {
//     FINBENCH_SPAN("cn.psor");      // ~free when tracing is off
//     ...
//   }
//
// When enabled (bench binaries: --trace PATH), each thread records
// fixed-size span records into its own ring buffer — no locks, no
// allocation on the hot path after the first span per thread — and
// trace::write_chrome_trace() renders everything as Chrome's
// `trace_event` JSON (load in chrome://tracing or https://ui.perfetto.dev).
//
// Span names are truncated to kMaxNameLen-1 bytes and copied into the
// record, so dynamically-built labels are safe.

#pragma once

#include <atomic>
#include <cstddef>
#include <string>

namespace finbench::obs::trace {

inline constexpr std::size_t kMaxNameLen = 48;

struct SpanRecord {
  char name[kMaxNameLen];
  double start_us;  // microseconds since process trace epoch
  double end_us;
};

namespace detail {
extern std::atomic<bool> g_enabled;
// Record a finished span on the calling thread's ring buffer.
void record(const char* name, double start_us, double end_us);
}  // namespace detail

// Microseconds since the trace epoch (steady clock; epoch is fixed at the
// first use of the tracer in the process).
double now_us();

// Globally enable/disable span recording. Cheap to toggle; spans opened
// while disabled are dropped even if tracing is re-enabled before they
// close.
void enable(bool on = true);
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

// Per-thread ring capacity in spans (default 1 << 14). Takes effect for
// buffers created after the call; call before enabling tracing.
void set_ring_capacity(std::size_t spans);

// Total spans recorded / overwritten-by-wraparound across all threads.
std::size_t recorded_spans();
std::size_t dropped_spans();

// Drop all recorded spans (buffers stay registered to their threads).
void clear();

// Write everything recorded so far as Chrome trace_event JSON. Returns
// false (and leaves no partial file behind a best-effort unlink) when the
// file cannot be opened.
bool write_chrome_trace(const std::string& path, const std::string& process_name = "finbench");

// RAII span. Prefer the FINBENCH_SPAN macro.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (!enabled()) return;
    name_ = name;
    start_us_ = now_us();
  }
  ~ScopedSpan() {
    if (name_) detail::record(name_, start_us_, now_us());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  double start_us_ = 0.0;
};

}  // namespace finbench::obs::trace

#define FINBENCH_SPAN_CONCAT2(a, b) a##b
#define FINBENCH_SPAN_CONCAT(a, b) FINBENCH_SPAN_CONCAT2(a, b)
// Opens a span covering the rest of the enclosing scope.
#define FINBENCH_SPAN(name) \
  ::finbench::obs::trace::ScopedSpan FINBENCH_SPAN_CONCAT(finbench_span_, __LINE__)(name)
