// finbench/rng/philox.hpp
//
// Philox4x32-10 counter-based generator (Salmon et al., SC 2011). Stands in
// for the MKL MT2203 stream family the paper uses for parallel Monte Carlo:
// every (key, counter) pair is an independent, splittable stream, which is
// exactly the property MT2203 provides — but with trivially cheap skip-ahead
// and no parameter tables. Validated against the Random123 known-answer
// vectors in tests.
//
// Because consecutive counters are independent, bulk generation is a pure
// data-parallel loop; generate() is written so the compiler can vectorize
// across counter blocks (each block yields four 32-bit words).

#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace finbench::rng {

class Philox4x32 {
 public:
  using counter_type = std::array<std::uint32_t, 4>;
  using key_type = std::array<std::uint32_t, 2>;

  static constexpr int kRounds = 10;

  Philox4x32() = default;
  explicit Philox4x32(std::uint64_t seed, std::uint64_t stream = 0) {
    key_[0] = static_cast<std::uint32_t>(seed);
    key_[1] = static_cast<std::uint32_t>(seed >> 32);
    counter_[2] = static_cast<std::uint32_t>(stream);
    counter_[3] = static_cast<std::uint32_t>(stream >> 32);
  }

  // Stateless block function: the core of the generator.
  static counter_type block(counter_type ctr, key_type key) {
    for (int r = 0; r < kRounds; ++r) {
      ctr = round_once(ctr, key);
      key[0] += 0x9E3779B9u;  // golden ratio
      key[1] += 0xBB67AE85u;  // sqrt(3) - 1
    }
    return ctr;
  }

  std::uint32_t next_u32() {
    if (have_ == 0) {
      buffer_ = block(counter_, key_);
      advance_counter();
      have_ = 4;
    }
    return buffer_[4 - have_--];
  }

  std::uint64_t next_u64() {
    const std::uint64_t lo = next_u32();
    const std::uint64_t hi = next_u32();
    return (hi << 32) | lo;
  }

  double next_u01() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  // Bulk generation of 32-bit words; data-parallel across counter blocks.
  void generate(std::span<std::uint32_t> out);

  // Bulk uniform doubles in [0, 1), 53-bit.
  void generate_u01(std::span<double> out);

  // Skip ahead n 4-word blocks (O(1) — the key property vs Mersenne).
  void skip_blocks(std::uint64_t n) {
    const std::uint64_t lo = counter_[0] + (n & 0xffffffffu);
    counter_[0] = static_cast<std::uint32_t>(lo);
    std::uint64_t carry = (lo >> 32) + (n >> 32);
    const std::uint64_t c1 = counter_[1] + carry;
    counter_[1] = static_cast<std::uint32_t>(c1);
    if (c1 >> 32) {  // rare double carry
      if (++counter_[2] == 0) ++counter_[3];
    }
    have_ = 0;
  }

  counter_type counter() const { return counter_; }
  key_type key() const { return key_; }

 private:
  static std::uint32_t mulhi(std::uint32_t a, std::uint32_t b) {
    return static_cast<std::uint32_t>((static_cast<std::uint64_t>(a) * b) >> 32);
  }
  static counter_type round_once(counter_type c, key_type k) {
    const std::uint32_t hi0 = mulhi(0xD2511F53u, c[0]);
    const std::uint32_t lo0 = 0xD2511F53u * c[0];
    const std::uint32_t hi1 = mulhi(0xCD9E8D57u, c[2]);
    const std::uint32_t lo1 = 0xCD9E8D57u * c[2];
    return {hi1 ^ c[1] ^ k[0], lo1, hi0 ^ c[3] ^ k[1], lo0};
  }
  void advance_counter() {
    if (++counter_[0] == 0 && ++counter_[1] == 0 && ++counter_[2] == 0) ++counter_[3];
  }

  counter_type counter_{};
  key_type key_{};
  counter_type buffer_{};
  int have_{0};
};

}  // namespace finbench::rng
