// finbench/rng/mt19937.hpp
//
// MT19937 Mersenne Twister (Matsumoto & Nishimura 1998 — the paper's
// reference [17] and the basis of the MKL generator it benchmarks).
// Implemented from the published recurrence; validated against
// std::mt19937 in tests (identical output for identical seeds).
//
// Note on the paper's "MT2203" variant: MKL uses a family of 6024 small
// Mersenne Twisters (period 2^2203) whose parameter tables come from the
// Dynamic Creator tool and are not reproducible offline. For independent
// parallel streams this library substitutes the counter-based Philox
// generator (see philox.hpp and DESIGN.md §1); MT19937 is provided as the
// canonical Mersenne-family generator.

#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace finbench::rng {

class Mt19937 {
 public:
  using result_type = std::uint32_t;
  static constexpr std::uint32_t kDefaultSeed = 5489u;

  explicit Mt19937(std::uint32_t seed = kDefaultSeed) { reseed(seed); }

  void reseed(std::uint32_t seed) {
    state_[0] = seed;
    for (std::uint32_t i = 1; i < kN; ++i) {
      state_[i] = 1812433253u * (state_[i - 1] ^ (state_[i - 1] >> 30)) + i;
    }
    index_ = kN;
  }

  std::uint32_t next_u32() {
    if (index_ >= kN) refill();
    std::uint32_t y = state_[index_++];
    y ^= y >> 11;
    y ^= (y << 7) & 0x9d2c5680u;
    y ^= (y << 15) & 0xefc60000u;
    y ^= y >> 18;
    return y;
  }

  std::uint64_t next_u64() {
    const std::uint64_t lo = next_u32();
    const std::uint64_t hi = next_u32();
    return (hi << 32) | lo;
  }

  // Bulk generation: refills whole blocks at a time so the tempering loop
  // is vectorizable by the compiler (the "basic" optimization level).
  void generate(std::span<std::uint32_t> out);

  // Uniform double in [0, 1) with 53 random bits.
  double next_u01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint32_t kN = 624;
  static constexpr std::uint32_t kM = 397;
  static constexpr std::uint32_t kMatrixA = 0x9908b0dfu;
  static constexpr std::uint32_t kUpperMask = 0x80000000u;
  static constexpr std::uint32_t kLowerMask = 0x7fffffffu;

  void refill();

  std::array<std::uint32_t, kN> state_{};
  std::uint32_t index_{kN};
};

}  // namespace finbench::rng
