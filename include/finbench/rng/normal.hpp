// finbench/rng/normal.hpp
//
// Normally-distributed random number generation — the library's substitute
// for the MKL VSL transforms the paper benchmarks in Table II ("normally-
// dist. DP RNG/sec"). Three methods:
//
//   kIcdf      — inverse-CDF transform of 53-bit uniforms via the vectorized
//                vecmath::inverse_cnd (the MKL default for Brownian-bridge
//                style consumers, which need one normal per uniform, in
//                order). Fully SIMD.
//   kBoxMuller — classic pairwise transform using vectorized log/sqrt/sincos.
//                Fully SIMD, ~2x cheaper than ICDF per normal.
//   kZiggurat  — Marsaglia–Tsang 128-layer rejection method. Scalar (the
//                rejection loop defeats SIMD) but cheapest per normal;
//                included as the scalar baseline for the Table II ablation.
//
// All methods consume the Philox4x32 counter generator so streams stay
// reproducible and splittable.

#pragma once

#include <cstddef>
#include <span>

#include "finbench/rng/philox.hpp"

namespace finbench::rng {

enum class NormalMethod { kIcdf, kBoxMuller, kZiggurat };

// Fill `out` with standard normal deviates drawn from `gen`.
void generate_normal(Philox4x32& gen, std::span<double> out,
                     NormalMethod method = NormalMethod::kIcdf);

// Fill `out` with uniforms on the open interval (0, 1) — never exactly 0 or
// 1, so inverse-CDF and log transforms are safe.
void generate_u01_open(Philox4x32& gen, std::span<double> out);

// A seeded, splittable stream of normal deviates: the object the pricing
// kernels consume. Each (seed, stream) pair is statistically independent.
class NormalStream {
 public:
  explicit NormalStream(std::uint64_t seed, std::uint64_t stream = 0,
                        NormalMethod method = NormalMethod::kIcdf)
      : gen_(seed, stream), method_(method) {}

  void fill(std::span<double> out) { generate_normal(gen_, out, method_); }

  Philox4x32& generator() { return gen_; }
  NormalMethod method() const { return method_; }

 private:
  Philox4x32 gen_;
  NormalMethod method_;
};

}  // namespace finbench::rng
