// finbench/rng/halton.hpp
//
// Halton low-discrepancy (quasi-random) sequences, with optional
// Cranley–Patterson rotation for randomization. Quasi-random numbers are
// the other half of the "RNG & QRNG" low-level technique family in the
// paper's Fig. 1 taxonomy, and the classical partner of the Brownian
// bridge: the bridge reorders a path's variance into the first few
// dimensions, which is exactly where a low-discrepancy sequence is most
// uniform (Glasserman 2004, ch. 5 — the paper's ref [12]).
//
// Dimension d uses the radical inverse in the d-th prime base. Plain
// Halton is deterministic; a nonzero rotation seed applies a per-dimension
// modular shift (preserves the low-discrepancy property, enables error
// estimation over independent randomizations).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace finbench::rng {

// Radical inverse of `index` in base `base` (the building block; exposed
// for testing and for custom sequence construction).
double radical_inverse(std::uint64_t index, unsigned base);

class Halton {
 public:
  // `dims` >= 1; rotation_seed == 0 means the plain (unrotated) sequence.
  explicit Halton(int dims, std::uint64_t rotation_seed = 0);

  int dims() const { return static_cast<int>(bases_.size()); }
  std::uint64_t index() const { return index_; }

  // Next point; out.size() must be >= dims(). Index 0 of the plain
  // sequence is the all-zeros point; generation starts at index 1 by
  // convention (skipping the degenerate origin).
  void next(std::span<double> out);

  // Fill `n` consecutive points, row-major: out[p * dims + d].
  void generate(std::span<double> out, std::size_t n);

  // Jump to an absolute index (points are a pure function of the index).
  void seek(std::uint64_t index) { index_ = index; }

 private:
  std::vector<unsigned> bases_;   // first `dims` primes
  std::vector<double> rotation_;  // per-dimension shift in [0,1)
  std::uint64_t index_ = 1;
};

}  // namespace finbench::rng
