// finbench/rng/splitmix64.hpp
//
// SplitMix64 (Steele, Lea, Flood 2014): a tiny 64-bit generator used here
// solely to expand user seeds into full generator states, so that nearby
// seeds produce unrelated streams.

#pragma once

#include <cstdint>

namespace finbench::rng {

class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

}  // namespace finbench::rng
