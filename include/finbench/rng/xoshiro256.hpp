// finbench/rng/xoshiro256.hpp
//
// xoshiro256++ (Blackman & Vigna 2019): a fast 64-bit generator with a
// 2^128 jump function for independent streams. Included as a third
// generator family so the RNG-sensitive benchmarks (Table II, Brownian
// bridge) can be cross-checked against structurally different generators.

#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "finbench/rng/splitmix64.hpp"

namespace finbench::rng {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  double next_u01() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  void generate_u01(std::span<double> out) {
    for (auto& x : out) x = next_u01();
  }

  // Advance 2^128 steps: partitions the period into independent streams.
  void jump() {
    static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                              0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc{};
    for (std::uint64_t j : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (j & (1ULL << b)) {
          for (int i = 0; i < 4; ++i) acc[i] ^= state_[i];
        }
        next_u64();
      }
    }
    state_ = acc;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace finbench::rng
