// implied_vol_surface: model-calibration workload. Generates synthetic
// market quotes from a parametric volatility smile, then recovers the
// implied-volatility surface by inverting Black–Scholes at every
// (strike, expiry) node — the "real-time model calibration" use case from
// the paper's introduction.

#include <cmath>
#include <cstdio>
#include <vector>

#include "finbench/core/analytic.hpp"

using namespace finbench;

namespace {

// A simple smile: base vol + skew + convexity in log-moneyness, with a
// term-structure decay.
double smile_vol(double spot, double strike, double years) {
  const double m = std::log(strike / spot);
  const double term = 1.0 + 0.3 * std::exp(-years);
  return (0.22 - 0.10 * m + 0.25 * m * m) * term / 1.3;
}

}  // namespace

int main() {
  const double spot = 100.0, rate = 0.02;
  const std::vector<double> strikes = {70, 80, 90, 95, 100, 105, 110, 120, 130};
  const std::vector<double> expiries = {0.25, 0.5, 1.0, 2.0};

  // Quote generation (the "market").
  std::printf("Synthetic market: S=%.0f r=%.2f, smile vol in [%.0f%%, %.0f%%]\n\n", spot, rate,
              100 * smile_vol(spot, 100, 2.0), 100 * smile_vol(spot, 70, 0.25));

  std::printf("Recovered implied-vol surface (%% per annum):\n%8s", "K\\T");
  for (double t : expiries) std::printf(" %7.2fy", t);
  std::printf("\n");

  double worst_abs_err = 0.0;
  for (double k : strikes) {
    std::printf("%8.0f", k);
    for (double t : expiries) {
      const double true_vol = smile_vol(spot, k, t);
      core::OptionSpec opt{spot, k, t, rate, true_vol, core::OptionType::kCall,
                           core::ExerciseStyle::kEuropean};
      const double quote = core::black_scholes_price(opt);  // the market quote
      const double iv = core::implied_volatility(opt, quote);
      worst_abs_err = std::max(worst_abs_err, std::fabs(iv - true_vol));
      std::printf(" %8.2f", 100.0 * iv);
    }
    std::printf("\n");
  }
  std::printf("\nWorst calibration error vs the generating smile: %.2e vol points\n",
              worst_abs_err);
  std::printf("(should be ~1e-8 or better: the inversion is exact to solver tolerance)\n");
  return 0;
}
