// american_pricer: price American puts with the two methods that support
// early exercise — the binomial lattice and the Crank–Nicolson PSOR solver
// — across a range of spots, and report the early-exercise premium over
// the European price plus the point where immediate exercise becomes
// optimal (where the American value pins to intrinsic).

#include <cmath>
#include <cstdio>

#include "finbench/core/analytic.hpp"
#include "finbench/kernels/binomial.hpp"
#include "finbench/kernels/cranknicolson.hpp"

using namespace finbench;

int main() {
  const double strike = 100.0, years = 1.0, rate = 0.06, vol = 0.25;

  kernels::cn::GridSpec grid;
  grid.num_prices = 513;
  grid.num_steps = 500;

  std::printf("American put: K=%.0f T=%.1f r=%.2f vol=%.2f\n", strike, years, rate, vol);
  std::printf("%8s %12s %12s %12s %12s %10s\n", "spot", "binomial", "crank-nic", "european",
              "am-premium", "intrinsic");

  double exercise_boundary = 0.0;
  for (double spot = 60.0; spot <= 140.0 + 1e-9; spot += 10.0) {
    core::OptionSpec opt{spot,  strike, years, rate, vol, core::OptionType::kPut,
                         core::ExerciseStyle::kAmerican};
    const double lattice = kernels::binomial::price_one_reference(opt, 2048);
    const double pde = kernels::cn::price_wavefront_split(opt, grid).price;

    core::OptionSpec euro = opt;
    euro.style = core::ExerciseStyle::kEuropean;
    const double european = core::black_scholes_price(euro);
    const double intrinsic = std::max(strike - spot, 0.0);

    std::printf("%8.1f %12.5f %12.5f %12.5f %12.5f %10.2f\n", spot, lattice, pde, european,
                lattice - european, intrinsic);
    if (exercise_boundary == 0.0 && lattice - intrinsic > 1e-4) {
      exercise_boundary = spot;  // first spot where holding beats exercising
    }
  }
  std::printf("\nImmediate exercise is optimal below roughly S = %.0f\n", exercise_boundary);
  std::printf("(binomial and Crank-Nicolson should agree to ~1e-3 relative)\n");

  // The full exercise boundary S*(t) from the PDE solver: the curve below
  // which the holder should exercise, as expiry approaches.
  core::OptionSpec probe{100, strike, years, rate, vol, core::OptionType::kPut,
                         core::ExerciseStyle::kAmerican};
  const auto boundary = kernels::cn::exercise_boundary(probe, grid);
  std::printf("\nExercise boundary S*(time to expiry):\n");
  for (double frac : {0.02, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    const std::size_t k =
        std::min(boundary.size() - 1,
                 static_cast<std::size_t>(frac * static_cast<double>(boundary.size())));
    std::printf("  tau = %4.2fy  S* = %7.2f\n",
                years * static_cast<double>(k + 1) / static_cast<double>(boundary.size()),
                boundary[k]);
  }
  std::printf("(S* rises to the strike as expiry approaches)\n");
  return 0;
}
