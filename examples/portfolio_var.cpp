// portfolio_var: one-day value-at-risk of an options book by full
// revaluation Monte Carlo. Simulates overnight moves of the underlying
// (GBM), reprices every position with the SIMD Black–Scholes kernel under
// each scenario, and reports the P&L distribution's VaR and expected
// shortfall — the risk-management workload class the paper's introduction
// motivates (STAC-style "risk management and pricing").

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "finbench/core/analytic.hpp"
#include "finbench/kernels/blackscholes.hpp"
#include "finbench/rng/normal.hpp"

using namespace finbench;

namespace {

struct Position {
  double strike;
  double years;
  core::OptionType type;
  double quantity;  // signed: negative = short
};

}  // namespace

int main() {
  const double spot = 100.0, rate = 0.03, vol = 0.25;
  const double horizon = 1.0 / 252.0;  // one trading day
  const std::size_t nscenarios = 100000;

  // A small book: long calls, short puts, a short straddle.
  const std::vector<Position> book = {
      {95.0, 0.50, core::OptionType::kCall, +100},
      {105.0, 0.50, core::OptionType::kCall, +50},
      {90.0, 0.25, core::OptionType::kPut, -80},
      {100.0, 1.00, core::OptionType::kCall, -40},
      {100.0, 1.00, core::OptionType::kPut, -40},
  };

  // Value today.
  double value_today = 0.0;
  for (const auto& p : book) {
    const core::BsPrice bs = core::black_scholes(spot, p.strike, p.years, rate, vol);
    value_today += p.quantity * (p.type == core::OptionType::kCall ? bs.call : bs.put);
  }

  // Simulate overnight spots: S' = S exp((r - vol^2/2) h + vol sqrt(h) Z).
  std::vector<double> z(nscenarios);
  rng::NormalStream stream(/*seed=*/2024);
  stream.fill(z);
  const double mu = (rate - 0.5 * vol * vol) * horizon;
  const double sig = vol * std::sqrt(horizon);

  // Batch-reprice: one SOA batch per position across all scenarios.
  std::vector<double> pnl(nscenarios, -value_today);
  core::BsBatchSoa batch;
  batch.rate = rate;
  batch.vol = vol;
  batch.resize(nscenarios);
  for (const auto& p : book) {
    for (std::size_t s = 0; s < nscenarios; ++s) {
      batch.spot[s] = spot * std::exp(mu + sig * z[s]);
      batch.strike[s] = p.strike;
      batch.years[s] = p.years - horizon;
    }
    kernels::bs::price_intermediate(batch);
    const bool call = p.type == core::OptionType::kCall;
    for (std::size_t s = 0; s < nscenarios; ++s) {
      pnl[s] += p.quantity * (call ? batch.call[s] : batch.put[s]);
    }
  }

  std::sort(pnl.begin(), pnl.end());
  auto quantile = [&](double q) { return pnl[static_cast<std::size_t>(q * (nscenarios - 1))]; };
  auto expected_shortfall = [&](double q) {
    const std::size_t k = static_cast<std::size_t>(q * nscenarios);
    double acc = 0.0;
    for (std::size_t i = 0; i < k; ++i) acc += pnl[i];
    return acc / static_cast<double>(k);
  };

  std::printf("Options book: %zu positions, value today = %.2f\n", book.size(), value_today);
  std::printf("1-day full-revaluation Monte Carlo, %zu scenarios:\n", nscenarios);
  std::printf("  mean P&L        %10.2f\n",
              std::accumulate(pnl.begin(), pnl.end(), 0.0) / static_cast<double>(nscenarios));
  std::printf("  95%% VaR         %10.2f\n", -quantile(0.05));
  std::printf("  99%% VaR         %10.2f\n", -quantile(0.01));
  std::printf("  99%% ES (CVaR)   %10.2f\n", -expected_shortfall(0.01));
  std::printf("  best / worst    %10.2f / %.2f\n", pnl.back(), pnl.front());
  return 0;
}
