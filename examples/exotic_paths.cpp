// exotic_paths: path-dependent pricing with the Brownian-bridge engine.
// Prices arithmetic- and geometric-average Asian calls by simulating full
// GBM paths through the bridge construction, and validates the geometric
// one against its closed form (the standard check for path-based Monte
// Carlo engines).

#include <cmath>
#include <cstdio>
#include <vector>

#include "finbench/core/analytic.hpp"
#include "finbench/kernels/barrier.hpp"
#include "finbench/kernels/brownian.hpp"
#include "finbench/kernels/lookback.hpp"

using namespace finbench;

namespace {

// Closed form for the geometric-average Asian call under discrete
// averaging over n equally spaced times (Kemna–Vorst style).
double geometric_asian_call(double s, double k, double t, double r, double vol, int n) {
  // Mean and variance of log of the geometric average of GBM at times
  // t_i = i t / n, i = 1..n.
  const double dt = t / n;
  double mu_sum = 0.0, var_sum = 0.0;
  for (int i = 1; i <= n; ++i) {
    mu_sum += (r - 0.5 * vol * vol) * i * dt;
  }
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= n; ++j) {
      var_sum += vol * vol * std::min(i, j) * dt;
    }
  }
  const double mu_g = std::log(s) + mu_sum / n;
  const double sig_g = std::sqrt(var_sum) / n;
  const double d1 = (mu_g - std::log(k) + sig_g * sig_g) / sig_g;
  const double d2 = d1 - sig_g;
  auto cnd = [](double x) { return 0.5 * std::erfc(-x * 0.7071067811865475244); };
  return std::exp(-r * t) * (std::exp(mu_g + 0.5 * sig_g * sig_g) * cnd(d1) - k * cnd(d2));
}

}  // namespace

int main() {
  const double spot = 100.0, strike = 100.0, years = 1.0, rate = 0.05, vol = 0.3;
  const int depth = 5;  // 32 averaging dates
  const std::size_t nsim = 1 << 18;

  const auto sched = kernels::brownian::BridgeSchedule::uniform(depth, years);
  const std::size_t np = sched.num_points();
  const int n_avg = static_cast<int>(np) - 1;

  std::vector<double> w(nsim * np);  // Brownian paths, point-major
  kernels::brownian::construct_advanced_interleaved(sched, /*seed=*/31, nsim, w);

  const double drift_dt = (rate - 0.5 * vol * vol) * years / n_avg;
  const double df = std::exp(-rate * years);

  double arith_sum = 0.0, arith_sum2 = 0.0, geo_sum = 0.0;
  for (std::size_t s = 0; s < nsim; ++s) {
    double avg = 0.0, log_avg = 0.0;
    for (int c = 1; c <= n_avg; ++c) {
      const double log_s = std::log(spot) + drift_dt * c + vol * w[c * nsim + s];
      avg += std::exp(log_s);
      log_avg += log_s;
    }
    avg /= n_avg;
    const double geo = std::exp(log_avg / n_avg);
    const double pay_a = std::max(avg - strike, 0.0);
    arith_sum += pay_a;
    arith_sum2 += pay_a * pay_a;
    geo_sum += std::max(geo - strike, 0.0);
  }
  const double n = static_cast<double>(nsim);
  const double arith = df * arith_sum / n;
  const double arith_se =
      df * std::sqrt((arith_sum2 / n - (arith_sum / n) * (arith_sum / n)) / n);
  const double geo = df * geo_sum / n;
  const double geo_exact = geometric_asian_call(spot, strike, years, rate, vol, n_avg);

  std::printf("Asian calls, %d averaging dates, %zu bridge paths:\n", n_avg, nsim);
  std::printf("  arithmetic-average MC : %.5f +/- %.5f\n", arith, arith_se);
  std::printf("  geometric-average  MC : %.5f\n", geo);
  std::printf("  geometric closed form : %.5f  (MC error %.5f)\n", geo_exact, geo - geo_exact);
  const core::BsPrice euro = core::black_scholes(spot, strike, years, rate, vol);
  std::printf("  vanilla European call : %.5f  (Asians are cheaper: averaging cuts vol)\n",
              euro.call);
  std::printf("  [%s] geometric MC within 4 standard errors of closed form\n",
              std::fabs(geo - geo_exact) < 4 * arith_se ? "PASS" : "FAIL");

  // --- The Brownian bridge trilogy on one page -----------------------------
  // 2) Barrier crossing probabilities: continuous monitoring from 16 steps.
  kernels::barrier::BarrierSpec bspec;
  bspec.option = {spot, strike, years, rate, vol, core::OptionType::kCall,
                  core::ExerciseStyle::kEuropean};
  bspec.barrier = 80.0;
  kernels::barrier::McParams bp;
  bp.num_paths = 1 << 16;
  bp.num_steps = 16;
  const auto dob = kernels::barrier::price_mc(bspec, bp);
  const double dob_exact =
      kernels::barrier::down_and_out_call(spot, strike, 80.0, years, rate, vol);
  std::printf("\nDown-and-out call (H=80), bridge-corrected 16-step MC:\n");
  std::printf("  MC %.5f +/- %.5f   closed form %.5f\n", dob.price, dob.std_error, dob_exact);

  // 3) Lookback minimum sampling: continuous minimum from 8 steps.
  kernels::lookback::McParams lp;
  lp.num_paths = 1 << 16;
  lp.num_steps = 8;
  const auto lb = kernels::lookback::price_floating_call_mc(spot, years, rate, 0.0, vol, lp);
  const double lb_exact =
      kernels::lookback::floating_call_closed_form(spot, years, rate, 0.0, vol);
  std::printf("\nFloating-strike lookback call, bridge-minimum 8-step MC:\n");
  std::printf("  MC %.5f +/- %.5f   closed form %.5f\n", lb.price, lb.std_error, lb_exact);
  std::printf("\n(three payoffs, one idea: conditional on two simulated points, the\n");
  std::printf(" Brownian path between them has known law — average, crossing, minimum)\n");
  return 0;
}
