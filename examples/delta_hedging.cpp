// delta_hedging: the Black–Scholes argument, simulated. Sell a call,
// delta-hedge it by trading the underlying at discrete rebalance dates,
// and look at the P&L distribution: continuous hedging would make it
// exactly zero; discrete hedging leaves a residual whose standard
// deviation shrinks like 1/sqrt(rebalances) — and whose mean is ~zero
// because the option was sold at its fair value. Exercises greeks, RNG,
// and path simulation together.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "finbench/core/analytic.hpp"
#include "finbench/rng/normal.hpp"

using namespace finbench;

namespace {

struct HedgeStats {
  double mean, sd, worst;
};

HedgeStats simulate(int rebalances, std::size_t npaths, std::uint64_t seed) {
  const double s0 = 100, strike = 100, years = 0.5, rate = 0.02, vol = 0.25;
  core::OptionSpec opt{s0, strike, years, rate, vol, core::OptionType::kCall,
                       core::ExerciseStyle::kEuropean};
  const double premium = core::black_scholes_price(opt);
  const double dt = years / rebalances;
  const double growth = std::exp(rate * dt);
  const double drift = (rate - 0.5 * vol * vol) * dt;
  const double sig_dt = vol * std::sqrt(dt);

  rng::NormalStream stream(seed);
  std::vector<double> z(rebalances);
  std::vector<double> pnl(npaths);

  for (std::size_t p = 0; p < npaths; ++p) {
    stream.fill(z);
    double s = s0;
    // Short one call: receive the premium, hold delta shares, rest in cash.
    core::OptionSpec state = opt;
    double delta = core::black_scholes_greeks(state).delta;
    double cash = premium - delta * s;
    for (int t = 1; t <= rebalances; ++t) {
      s *= std::exp(drift + sig_dt * z[t - 1]);
      cash *= growth;
      state.spot = s;
      state.years = years - t * dt;
      const double new_delta =
          t == rebalances ? (s > strike ? 1.0 : 0.0) : core::black_scholes_greeks(state).delta;
      cash -= (new_delta - delta) * s;  // rebalance
      delta = new_delta;
    }
    const double payoff = std::max(s - strike, 0.0);
    pnl[p] = cash + delta * s - payoff;
  }

  HedgeStats st{};
  st.mean = std::accumulate(pnl.begin(), pnl.end(), 0.0) / static_cast<double>(npaths);
  double var = 0;
  for (double x : pnl) var += (x - st.mean) * (x - st.mean);
  st.sd = std::sqrt(var / static_cast<double>(npaths));
  st.worst = *std::min_element(pnl.begin(), pnl.end());
  return st;
}

}  // namespace

int main() {
  const std::size_t npaths = 20000;
  std::printf("Delta-hedging a sold ATM call (S=K=100, T=0.5, vol=25%%), %zu paths:\n\n",
              npaths);
  std::printf("%12s %12s %12s %12s %16s\n", "rebalances", "mean P&L", "sd P&L", "worst",
              "sd * sqrt(N_reb)");
  double prev_sd = 0;
  for (int n : {4, 16, 64, 256}) {
    const HedgeStats st = simulate(n, npaths, 7);
    std::printf("%12d %12.4f %12.4f %12.4f %16.3f\n", n, st.mean, st.sd, st.worst,
                st.sd * std::sqrt(static_cast<double>(n)));
    prev_sd = st.sd;
  }
  (void)prev_sd;
  std::printf(
      "\nThe mean stays ~0 (the option was sold at fair value); the residual\n"
      "risk shrinks ~1/sqrt(rebalances) — the right-hand column is ~constant,\n"
      "which is the discrete-hedging error law. That residual is what the\n"
      "Black-Scholes replication argument makes exactly zero in the limit.\n");
  return 0;
}
