// rainbow_basket: multi-asset pricing with correlated Monte Carlo. Prices
// an equally-weighted three-asset basket call across the correlation range
// and cross-checks the two-asset engine against Margrabe's closed form —
// showing why correlation is the price of diversification.

#include <cstdio>

#include "finbench/core/analytic.hpp"
#include "finbench/kernels/multiasset.hpp"

using namespace finbench;
using namespace finbench::kernels;

int main() {
  // --- Margrabe cross-check -------------------------------------------------
  multiasset::McParams sim;
  sim.num_paths = 1 << 18;
  sim.seed = 1;
  std::printf("Exchange option max(S1 - S2, 0): S1=100 S2=95 vol1=0.3 vol2=0.2 T=1\n");
  std::printf("%8s %14s %14s %12s\n", "rho", "Monte Carlo", "Margrabe", "diff");
  for (double rho : {-0.8, -0.3, 0.0, 0.4, 0.9}) {
    const auto mc = multiasset::price_exchange_mc(100, 95, 0.3, 0.2, rho, 1.0, 0.05, sim);
    const double exact = multiasset::margrabe_exchange(100, 95, 0.3, 0.2, rho, 1.0);
    std::printf("%8.1f %14.5f %14.5f %12.5f\n", rho, mc.price, exact, mc.price - exact);
  }

  // --- Basket call vs correlation --------------------------------------------
  std::printf("\nEqually weighted 3-asset basket call, K=100, T=1, r=5%%:\n");
  std::printf("%8s %14s %16s\n", "rho", "basket call", "(+/- SE)");
  multiasset::BasketSpec basket;
  basket.spots = {34, 33, 33};
  basket.vols = {0.35, 0.25, 0.20};
  basket.weights = {1.0, 1.0, 1.0};
  basket.strike = 100.0;
  basket.years = 1.0;
  basket.rate = 0.05;
  for (double rho : {0.0, 0.25, 0.5, 0.75, 0.95}) {
    basket.correlation = {1, rho, rho, rho, 1, rho, rho, rho, 1};
    const auto mc = multiasset::price_basket_mc(basket, sim);
    std::printf("%8.2f %14.4f %16.4f\n", rho, mc.price, mc.std_error);
  }
  std::printf("\nHigher correlation -> less diversification -> the basket option\n");
  std::printf("costs more; at rho ~ 1 it approaches a single-asset option on the sum.\n");
  return 0;
}
