// pricer_cli: a command-line option pricer over the whole library — every
// numerical method behind one flag, so results can be cross-checked from
// the shell:
//
//   pricer_cli --method bs        --spot 100 --strike 105 --years 1 --vol 0.25
//   pricer_cli --method binomial  --style american --type put --steps 4096
//   pricer_cli --method lr        --steps 501
//   pricer_cli --method trinomial --steps 1000
//   pricer_cli --method cn        --style american --type put
//   pricer_cli --method mc        --paths 1048576
//   pricer_cli --method lsmc      --style american --type put
//   pricer_cli --method all       # run everything and tabulate
//
// Batch mode: price a CSV workload (core/io.hpp format) and write prices:
//   pricer_cli --csv-in quotes.csv --csv-out priced.csv [--steps N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "finbench/core/analytic.hpp"
#include "finbench/core/io.hpp"
#include "finbench/kernels/binomial.hpp"
#include "finbench/kernels/cranknicolson.hpp"
#include "finbench/kernels/lattice.hpp"
#include "finbench/kernels/heston.hpp"
#include "finbench/kernels/lsmc.hpp"
#include "finbench/kernels/merton.hpp"
#include "finbench/kernels/montecarlo.hpp"

using namespace finbench;

namespace {

struct Args {
  std::string method = "all";
  core::OptionSpec opt;
  int steps = 1024;
  std::size_t paths = 1 << 17;
  std::uint64_t seed = 0;
  std::string csv_in, csv_out;
};

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [--method bs|binomial|lr|trinomial|cn|mc|heston|merton|lsmc|all]\n"
      "          [--type call|put] [--style european|american]\n"
      "          [--spot S] [--strike K] [--years T] [--rate r] [--vol v]\n"
      "          [--steps N] [--paths N] [--seed N]\n",
      argv0);
  std::exit(2);
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    auto need = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--method")) a.method = need("--method");
    else if (!std::strcmp(argv[i], "--type")) {
      a.opt.type = std::strcmp(need("--type"), "put") ? core::OptionType::kCall
                                                      : core::OptionType::kPut;
    } else if (!std::strcmp(argv[i], "--style")) {
      a.opt.style = std::strcmp(need("--style"), "american") ? core::ExerciseStyle::kEuropean
                                                             : core::ExerciseStyle::kAmerican;
    } else if (!std::strcmp(argv[i], "--spot")) a.opt.spot = std::atof(need("--spot"));
    else if (!std::strcmp(argv[i], "--strike")) a.opt.strike = std::atof(need("--strike"));
    else if (!std::strcmp(argv[i], "--years")) a.opt.years = std::atof(need("--years"));
    else if (!std::strcmp(argv[i], "--rate")) a.opt.rate = std::atof(need("--rate"));
    else if (!std::strcmp(argv[i], "--vol")) a.opt.vol = std::atof(need("--vol"));
    else if (!std::strcmp(argv[i], "--steps")) a.steps = std::atoi(need("--steps"));
    else if (!std::strcmp(argv[i], "--paths")) a.paths = std::strtoull(need("--paths"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--seed")) a.seed = std::strtoull(need("--seed"), nullptr, 10);
    else if (!std::strcmp(argv[i], "--csv-in")) a.csv_in = need("--csv-in");
    else if (!std::strcmp(argv[i], "--csv-out")) a.csv_out = need("--csv-out");
    else usage(argv[0]);
  }
  return a;
}

void run_method(const std::string& m, const Args& a) {
  const core::OptionSpec& o = a.opt;
  const bool american = o.style == core::ExerciseStyle::kAmerican;
  try {
    if (m == "bs") {
      if (american) {
        std::printf("  %-10s %s\n", "bs", "(closed form is European-only; skipping)");
        return;
      }
      std::printf("  %-10s %.6f\n", "bs", core::black_scholes_price(o));
    } else if (m == "binomial") {
      std::printf("  %-10s %.6f  (CRR, %d steps)\n", "binomial",
                  kernels::binomial::price_one_reference(o, a.steps), a.steps);
    } else if (m == "lr") {
      std::printf("  %-10s %.6f  (Leisen-Reimer, %d steps)\n", "lr",
                  kernels::lattice::price_leisen_reimer(o, a.steps | 1), a.steps | 1);
    } else if (m == "trinomial") {
      std::printf("  %-10s %.6f  (%d steps)\n", "trinomial",
                  kernels::lattice::price_trinomial(o, a.steps), a.steps);
    } else if (m == "cn") {
      kernels::cn::GridSpec g;
      const auto r = kernels::cn::price_wavefront_split(o, g);
      std::printf("  %-10s %.6f  (257x1000 grid, %ld PSOR iterations)\n", "cn", r.price,
                  r.total_iterations);
    } else if (m == "mc") {
      if (american) {
        std::printf("  %-10s %s\n", "mc", "(European estimator; use lsmc for American)");
        return;
      }
      std::vector<kernels::mc::McResult> res(1);
      kernels::mc::price_optimized_computed(std::span(&o, 1), a.paths, a.seed, res);
      std::printf("  %-10s %.6f +/- %.6f  (%zu paths)\n", "mc", res[0].price,
                  res[0].std_error, a.paths);
    } else if (m == "heston") {
      if (american) {
        std::printf("  %-10s %s\n", "heston", "(analytic is European-only)");
        return;
      }
      kernels::heston::HestonParams hm;
      hm.v0 = o.vol * o.vol;
      hm.theta = o.vol * o.vol;
      const auto hp = kernels::heston::price_analytic(o, hm);
      std::printf("  %-10s %.6f  (CF integral; kappa=%.1f xi=%.1f rho=%.1f, v0=theta=vol^2)\n",
                  "heston", o.type == core::OptionType::kCall ? hp.call : hp.put, hm.kappa,
                  hm.xi, hm.rho);
    } else if (m == "merton") {
      if (american) {
        std::printf("  %-10s %s\n", "merton", "(series is European-only)");
        return;
      }
      std::printf("  %-10s %.6f  (jump series; lambda=0.5, mean=-0.1, jvol=0.25)\n", "merton",
                  kernels::merton::price_series(o, {}));
    } else if (m == "lsmc") {
      kernels::lsmc::LsmcParams p;
      p.num_paths = a.paths;
      p.seed = a.seed;
      const auto r = kernels::lsmc::price_american(o, p);
      std::printf("  %-10s %.6f +/- %.6f  (%zu paths x %d dates)\n", "lsmc", r.price,
                  r.std_error, p.num_paths, p.num_steps);
    } else {
      std::fprintf(stderr, "unknown method '%s'\n", m.c_str());
      std::exit(2);
    }
  } catch (const std::exception& e) {
    std::printf("  %-10s error: %s\n", m.c_str(), e.what());
  }
}

}  // namespace

int price_csv_batch(const Args& a) {
  const auto opts = core::read_options_csv_file(a.csv_in);
  std::vector<double> prices(opts.size());
  for (std::size_t i = 0; i < opts.size(); ++i) {
    const auto& o = opts[i];
    // Pick a sensible method per option: closed form for European, the
    // best lattice for American.
    prices[i] = o.style == core::ExerciseStyle::kEuropean
                    ? core::black_scholes_price(o)
                    : kernels::lattice::price_bbsr(o, a.steps);
  }
  core::write_options_csv_file(a.csv_out, opts, prices);
  std::printf("priced %zu options from %s -> %s\n", opts.size(), a.csv_in.c_str(),
              a.csv_out.c_str());
  return 0;
}

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);
  if (!a.csv_in.empty()) {
    if (a.csv_out.empty()) {
      std::fprintf(stderr, "--csv-in requires --csv-out\n");
      return 2;
    }
    return price_csv_batch(a);
  }
  std::printf("%s %s: S=%g K=%g T=%g r=%g vol=%g\n",
              a.opt.style == core::ExerciseStyle::kAmerican ? "american" : "european",
              a.opt.type == core::OptionType::kCall ? "call" : "put", a.opt.spot, a.opt.strike,
              a.opt.years, a.opt.rate, a.opt.vol);
  if (a.method == "all") {
    for (const char* m :
         {"bs", "binomial", "lr", "trinomial", "cn", "mc", "heston", "merton", "lsmc"}) {
      if (!std::strcmp(m, "lsmc") && a.opt.style == core::ExerciseStyle::kEuropean) continue;
      run_method(m, a);
    }
  } else {
    run_method(a.method, a);
  }
  return 0;
}
