// heston_smile: where volatility smiles come from. Prices a strike ladder
// under the Heston stochastic-volatility model (Monte Carlo), then inverts
// each price through the SIMD batch implied-vol kernel — reproducing the
// skewed smile that flat-vol Black–Scholes cannot generate. Exercises the
// whole stack end to end: RNG -> Heston MC -> batch implied vol.

#include <cstdio>
#include <vector>

#include "finbench/core/option.hpp"
#include "finbench/kernels/blackscholes.hpp"
#include "finbench/kernels/heston.hpp"

using namespace finbench;

int main() {
  const double spot = 100.0, years = 1.0, rate = 0.02;
  const std::vector<double> strikes = {70, 80, 90, 100, 110, 120, 140};

  kernels::heston::HestonParams model;
  model.kappa = 2.0;
  model.theta = 0.04;  // long-run vol 20%
  model.xi = 0.6;      // strong vol-of-vol -> pronounced smile
  model.rho = -0.7;    // equity-style negative correlation -> skew
  model.v0 = 0.04;

  kernels::heston::SimParams sim;
  sim.num_paths = 1 << 17;
  sim.num_steps = 64;

  std::printf("Heston model: kappa=%.1f theta=%.2f xi=%.1f rho=%.1f v0=%.2f\n", model.kappa,
              model.theta, model.xi, model.rho, model.v0);
  std::printf("S=%.0f T=%.1fy r=%.2f, %zu paths x %d steps\n\n", spot, years, rate,
              sim.num_paths, sim.num_steps);

  // Price the ladder twice: semi-analytic characteristic function and
  // Monte Carlo (each validating the other).
  core::BsBatchSoa quotes;
  quotes.rate = rate;
  quotes.resize(strikes.size());
  std::vector<double> prices(strikes.size()), errs(strikes.size()), exact(strikes.size());
  for (std::size_t i = 0; i < strikes.size(); ++i) {
    core::OptionSpec o{spot,  strikes[i], years, rate, 0.2, core::OptionType::kCall,
                       core::ExerciseStyle::kEuropean};
    const auto r = kernels::heston::price_european(o, model, sim);
    prices[i] = r.call.price;
    errs[i] = r.call.std_error;
    exact[i] = kernels::heston::price_analytic(o, model).call;
    quotes.spot[i] = spot;
    quotes.strike[i] = strikes[i];
    quotes.years[i] = years;
  }

  // Invert the analytic prices to Black–Scholes implied vols (SIMD kernel).
  std::vector<double> ivs(strikes.size());
  kernels::bs::implied_vol_intermediate(quotes, exact, ivs);

  std::printf("%8s %12s %12s %12s %14s\n", "strike", "MC px", "(+/- SE)", "analytic",
              "implied vol");
  for (std::size_t i = 0; i < strikes.size(); ++i) {
    std::printf("%8.0f %12.4f %12.4f %12.4f %13.2f%%\n", strikes[i], prices[i], errs[i],
                exact[i], 100.0 * ivs[i]);
  }

  const bool skewed = ivs.front() > ivs[3] && ivs[3] < 0.25;
  std::printf("\n[%s] negative rho produces the equity skew: low strikes price richer\n",
              skewed ? "PASS" : "FAIL");
  std::printf("(a flat line here would mean the market were Black-Scholes; it is not)\n");
  return 0;
}
