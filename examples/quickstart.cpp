// quickstart: price a batch of European options three ways — closed-form
// Black–Scholes, the SIMD batch kernel, and Monte Carlo — and read off the
// greeks. This is the 5-minute tour of the public API.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "finbench/core/analytic.hpp"
#include "finbench/core/workload.hpp"
#include "finbench/kernels/blackscholes.hpp"
#include "finbench/kernels/montecarlo.hpp"

using namespace finbench;

int main() {
  // --- One option, analytically -------------------------------------------
  core::OptionSpec option;
  option.spot = 100.0;
  option.strike = 105.0;
  option.years = 0.75;
  option.rate = 0.04;
  option.vol = 0.22;
  option.type = core::OptionType::kCall;

  const core::BsPrice price =
      core::black_scholes(option.spot, option.strike, option.years, option.rate, option.vol);
  const core::BsGreeks greeks = core::black_scholes_greeks(option);

  std::printf("Single option (S=%.0f K=%.0f T=%.2f r=%.2f vol=%.2f):\n", option.spot,
              option.strike, option.years, option.rate, option.vol);
  std::printf("  call %.6f   put %.6f\n", price.call, price.put);
  std::printf("  delta %.4f  gamma %.5f  vega %.4f  theta %.4f  rho %.4f\n", greeks.delta,
              greeks.gamma, greeks.vega, greeks.theta, greeks.rho);

  // --- A batch, through the SIMD kernel ------------------------------------
  core::BsBatchSoa batch = core::make_bs_workload_soa(1'000'000, /*seed=*/42);
  kernels::bs::price_intermediate(batch);  // widest SIMD path available
  double sum = 0.0;
  for (std::size_t i = 0; i < batch.size(); ++i) sum += batch.call[i];
  std::printf("\nPriced %zu options with the SIMD kernel; mean call = %.4f\n", batch.size(),
              sum / static_cast<double>(batch.size()));

  // --- The same option by Monte Carlo --------------------------------------
  std::vector<kernels::mc::McResult> mc(1);
  kernels::mc::price_optimized_computed(std::span(&option, 1), 1 << 18, /*seed=*/7, mc);
  std::printf("\nMonte Carlo (262144 paths): %.6f +/- %.6f  (analytic %.6f)\n", mc[0].price,
              mc[0].std_error, price.call);

  // --- Implied volatility roundtrip ----------------------------------------
  const double iv = core::implied_volatility(option, price.call);
  std::printf("Implied vol recovered from the analytic price: %.6f (true %.2f)\n", iv,
              option.vol);
  return 0;
}
