add_test([=[Umbrella.EveryModuleReachable]=]  /root/repo/build/tests/test_umbrella [==[--gtest_filter=Umbrella.EveryModuleReachable]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Umbrella.EveryModuleReachable]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_umbrella_TESTS Umbrella.EveryModuleReachable)
