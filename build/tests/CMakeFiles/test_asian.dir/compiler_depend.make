# Empty compiler generated dependencies file for test_asian.
# This may be replaced when dependencies are built.
