file(REMOVE_RECURSE
  "CMakeFiles/test_asian.dir/test_asian.cpp.o"
  "CMakeFiles/test_asian.dir/test_asian.cpp.o.d"
  "test_asian"
  "test_asian.pdb"
  "test_asian[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_asian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
