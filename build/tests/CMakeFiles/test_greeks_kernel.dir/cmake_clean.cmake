file(REMOVE_RECURSE
  "CMakeFiles/test_greeks_kernel.dir/test_greeks_kernel.cpp.o"
  "CMakeFiles/test_greeks_kernel.dir/test_greeks_kernel.cpp.o.d"
  "test_greeks_kernel"
  "test_greeks_kernel.pdb"
  "test_greeks_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_greeks_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
