# Empty compiler generated dependencies file for test_greeks_kernel.
# This may be replaced when dependencies are built.
