file(REMOVE_RECURSE
  "CMakeFiles/test_cranknicolson.dir/test_cranknicolson.cpp.o"
  "CMakeFiles/test_cranknicolson.dir/test_cranknicolson.cpp.o.d"
  "test_cranknicolson"
  "test_cranknicolson.pdb"
  "test_cranknicolson[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cranknicolson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
