# Empty compiler generated dependencies file for test_cranknicolson.
# This may be replaced when dependencies are built.
