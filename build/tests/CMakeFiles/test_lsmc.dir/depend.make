# Empty dependencies file for test_lsmc.
# This may be replaced when dependencies are built.
