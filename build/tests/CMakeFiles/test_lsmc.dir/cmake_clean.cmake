file(REMOVE_RECURSE
  "CMakeFiles/test_lsmc.dir/test_lsmc.cpp.o"
  "CMakeFiles/test_lsmc.dir/test_lsmc.cpp.o.d"
  "test_lsmc"
  "test_lsmc.pdb"
  "test_lsmc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
