# Empty compiler generated dependencies file for test_dividends.
# This may be replaced when dependencies are built.
