file(REMOVE_RECURSE
  "CMakeFiles/test_dividends.dir/test_dividends.cpp.o"
  "CMakeFiles/test_dividends.dir/test_dividends.cpp.o.d"
  "test_dividends"
  "test_dividends.pdb"
  "test_dividends[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dividends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
