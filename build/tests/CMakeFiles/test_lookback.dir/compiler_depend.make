# Empty compiler generated dependencies file for test_lookback.
# This may be replaced when dependencies are built.
