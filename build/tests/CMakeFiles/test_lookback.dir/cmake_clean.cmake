file(REMOVE_RECURSE
  "CMakeFiles/test_lookback.dir/test_lookback.cpp.o"
  "CMakeFiles/test_lookback.dir/test_lookback.cpp.o.d"
  "test_lookback"
  "test_lookback.pdb"
  "test_lookback[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lookback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
