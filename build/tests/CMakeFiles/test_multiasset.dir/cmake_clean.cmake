file(REMOVE_RECURSE
  "CMakeFiles/test_multiasset.dir/test_multiasset.cpp.o"
  "CMakeFiles/test_multiasset.dir/test_multiasset.cpp.o.d"
  "test_multiasset"
  "test_multiasset.pdb"
  "test_multiasset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiasset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
