# Empty compiler generated dependencies file for test_multiasset.
# This may be replaced when dependencies are built.
