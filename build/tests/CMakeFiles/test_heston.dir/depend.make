# Empty dependencies file for test_heston.
# This may be replaced when dependencies are built.
