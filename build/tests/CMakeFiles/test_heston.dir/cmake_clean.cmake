file(REMOVE_RECURSE
  "CMakeFiles/test_heston.dir/test_heston.cpp.o"
  "CMakeFiles/test_heston.dir/test_heston.cpp.o.d"
  "test_heston"
  "test_heston.pdb"
  "test_heston[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heston.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
