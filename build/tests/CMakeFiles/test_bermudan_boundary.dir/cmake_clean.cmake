file(REMOVE_RECURSE
  "CMakeFiles/test_bermudan_boundary.dir/test_bermudan_boundary.cpp.o"
  "CMakeFiles/test_bermudan_boundary.dir/test_bermudan_boundary.cpp.o.d"
  "test_bermudan_boundary"
  "test_bermudan_boundary.pdb"
  "test_bermudan_boundary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bermudan_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
