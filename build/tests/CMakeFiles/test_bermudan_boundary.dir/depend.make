# Empty dependencies file for test_bermudan_boundary.
# This may be replaced when dependencies are built.
