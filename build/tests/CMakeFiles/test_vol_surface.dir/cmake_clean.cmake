file(REMOVE_RECURSE
  "CMakeFiles/test_vol_surface.dir/test_vol_surface.cpp.o"
  "CMakeFiles/test_vol_surface.dir/test_vol_surface.cpp.o.d"
  "test_vol_surface"
  "test_vol_surface.pdb"
  "test_vol_surface[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vol_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
