# Empty dependencies file for test_vol_surface.
# This may be replaced when dependencies are built.
