# Empty compiler generated dependencies file for test_term_risk.
# This may be replaced when dependencies are built.
