file(REMOVE_RECURSE
  "CMakeFiles/test_term_risk.dir/test_term_risk.cpp.o"
  "CMakeFiles/test_term_risk.dir/test_term_risk.cpp.o.d"
  "test_term_risk"
  "test_term_risk.pdb"
  "test_term_risk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_term_risk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
