# Empty dependencies file for test_brownian.
# This may be replaced when dependencies are built.
