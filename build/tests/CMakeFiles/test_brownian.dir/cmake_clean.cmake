file(REMOVE_RECURSE
  "CMakeFiles/test_brownian.dir/test_brownian.cpp.o"
  "CMakeFiles/test_brownian.dir/test_brownian.cpp.o.d"
  "test_brownian"
  "test_brownian.pdb"
  "test_brownian[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_brownian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
