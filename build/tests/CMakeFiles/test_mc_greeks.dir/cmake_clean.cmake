file(REMOVE_RECURSE
  "CMakeFiles/test_mc_greeks.dir/test_mc_greeks.cpp.o"
  "CMakeFiles/test_mc_greeks.dir/test_mc_greeks.cpp.o.d"
  "test_mc_greeks"
  "test_mc_greeks.pdb"
  "test_mc_greeks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mc_greeks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
