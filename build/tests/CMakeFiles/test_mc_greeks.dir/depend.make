# Empty dependencies file for test_mc_greeks.
# This may be replaced when dependencies are built.
