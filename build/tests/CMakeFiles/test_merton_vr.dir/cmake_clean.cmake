file(REMOVE_RECURSE
  "CMakeFiles/test_merton_vr.dir/test_merton_vr.cpp.o"
  "CMakeFiles/test_merton_vr.dir/test_merton_vr.cpp.o.d"
  "test_merton_vr"
  "test_merton_vr.pdb"
  "test_merton_vr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_merton_vr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
