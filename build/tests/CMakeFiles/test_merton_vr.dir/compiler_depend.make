# Empty compiler generated dependencies file for test_merton_vr.
# This may be replaced when dependencies are built.
