file(REMOVE_RECURSE
  "CMakeFiles/test_fd_schemes.dir/test_fd_schemes.cpp.o"
  "CMakeFiles/test_fd_schemes.dir/test_fd_schemes.cpp.o.d"
  "test_fd_schemes"
  "test_fd_schemes.pdb"
  "test_fd_schemes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fd_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
