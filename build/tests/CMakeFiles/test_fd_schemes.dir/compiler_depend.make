# Empty compiler generated dependencies file for test_fd_schemes.
# This may be replaced when dependencies are built.
