# Empty compiler generated dependencies file for test_vecmath.
# This may be replaced when dependencies are built.
