file(REMOVE_RECURSE
  "CMakeFiles/test_vecmath.dir/test_vecmath.cpp.o"
  "CMakeFiles/test_vecmath.dir/test_vecmath.cpp.o.d"
  "test_vecmath"
  "test_vecmath.pdb"
  "test_vecmath[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vecmath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
