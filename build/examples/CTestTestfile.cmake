# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_american_pricer "/root/repo/build/examples/american_pricer")
set_tests_properties(example_american_pricer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_portfolio_var "/root/repo/build/examples/portfolio_var")
set_tests_properties(example_portfolio_var PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_implied_vol_surface "/root/repo/build/examples/implied_vol_surface")
set_tests_properties(example_implied_vol_surface PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_exotic_paths "/root/repo/build/examples/exotic_paths")
set_tests_properties(example_exotic_paths PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heston_smile "/root/repo/build/examples/heston_smile")
set_tests_properties(example_heston_smile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rainbow_basket "/root/repo/build/examples/rainbow_basket")
set_tests_properties(example_rainbow_basket PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_delta_hedging "/root/repo/build/examples/delta_hedging")
set_tests_properties(example_delta_hedging PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pricer_cli "/root/repo/build/examples/pricer_cli" "--method" "all")
set_tests_properties(example_pricer_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pricer_cli_american "/root/repo/build/examples/pricer_cli" "--method" "all" "--style" "american" "--type" "put" "--steps" "512")
set_tests_properties(example_pricer_cli_american PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
