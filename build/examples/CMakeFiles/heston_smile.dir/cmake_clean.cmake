file(REMOVE_RECURSE
  "CMakeFiles/heston_smile.dir/heston_smile.cpp.o"
  "CMakeFiles/heston_smile.dir/heston_smile.cpp.o.d"
  "heston_smile"
  "heston_smile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heston_smile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
