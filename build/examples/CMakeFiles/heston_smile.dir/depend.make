# Empty dependencies file for heston_smile.
# This may be replaced when dependencies are built.
