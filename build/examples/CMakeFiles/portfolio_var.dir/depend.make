# Empty dependencies file for portfolio_var.
# This may be replaced when dependencies are built.
