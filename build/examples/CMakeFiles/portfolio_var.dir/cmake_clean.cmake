file(REMOVE_RECURSE
  "CMakeFiles/portfolio_var.dir/portfolio_var.cpp.o"
  "CMakeFiles/portfolio_var.dir/portfolio_var.cpp.o.d"
  "portfolio_var"
  "portfolio_var.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/portfolio_var.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
