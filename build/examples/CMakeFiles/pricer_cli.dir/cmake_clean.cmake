file(REMOVE_RECURSE
  "CMakeFiles/pricer_cli.dir/pricer_cli.cpp.o"
  "CMakeFiles/pricer_cli.dir/pricer_cli.cpp.o.d"
  "pricer_cli"
  "pricer_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pricer_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
