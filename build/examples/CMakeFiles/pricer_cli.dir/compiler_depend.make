# Empty compiler generated dependencies file for pricer_cli.
# This may be replaced when dependencies are built.
