file(REMOVE_RECURSE
  "CMakeFiles/delta_hedging.dir/delta_hedging.cpp.o"
  "CMakeFiles/delta_hedging.dir/delta_hedging.cpp.o.d"
  "delta_hedging"
  "delta_hedging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delta_hedging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
