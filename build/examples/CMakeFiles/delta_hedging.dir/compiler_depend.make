# Empty compiler generated dependencies file for delta_hedging.
# This may be replaced when dependencies are built.
