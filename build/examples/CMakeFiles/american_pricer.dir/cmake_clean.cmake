file(REMOVE_RECURSE
  "CMakeFiles/american_pricer.dir/american_pricer.cpp.o"
  "CMakeFiles/american_pricer.dir/american_pricer.cpp.o.d"
  "american_pricer"
  "american_pricer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/american_pricer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
