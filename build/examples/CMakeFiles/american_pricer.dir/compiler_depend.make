# Empty compiler generated dependencies file for american_pricer.
# This may be replaced when dependencies are built.
