file(REMOVE_RECURSE
  "CMakeFiles/rainbow_basket.dir/rainbow_basket.cpp.o"
  "CMakeFiles/rainbow_basket.dir/rainbow_basket.cpp.o.d"
  "rainbow_basket"
  "rainbow_basket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rainbow_basket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
