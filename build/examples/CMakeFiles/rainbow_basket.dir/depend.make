# Empty dependencies file for rainbow_basket.
# This may be replaced when dependencies are built.
