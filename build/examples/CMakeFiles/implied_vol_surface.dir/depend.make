# Empty dependencies file for implied_vol_surface.
# This may be replaced when dependencies are built.
