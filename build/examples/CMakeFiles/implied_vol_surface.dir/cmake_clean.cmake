file(REMOVE_RECURSE
  "CMakeFiles/implied_vol_surface.dir/implied_vol_surface.cpp.o"
  "CMakeFiles/implied_vol_surface.dir/implied_vol_surface.cpp.o.d"
  "implied_vol_surface"
  "implied_vol_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implied_vol_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
