file(REMOVE_RECURSE
  "CMakeFiles/exotic_paths.dir/exotic_paths.cpp.o"
  "CMakeFiles/exotic_paths.dir/exotic_paths.cpp.o.d"
  "exotic_paths"
  "exotic_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exotic_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
