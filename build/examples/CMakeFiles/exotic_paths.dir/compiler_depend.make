# Empty compiler generated dependencies file for exotic_paths.
# This may be replaced when dependencies are built.
