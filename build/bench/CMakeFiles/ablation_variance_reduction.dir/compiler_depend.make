# Empty compiler generated dependencies file for ablation_variance_reduction.
# This may be replaced when dependencies are built.
