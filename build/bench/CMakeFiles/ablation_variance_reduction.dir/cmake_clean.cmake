file(REMOVE_RECURSE
  "CMakeFiles/ablation_variance_reduction.dir/ablation_variance_reduction.cpp.o"
  "CMakeFiles/ablation_variance_reduction.dir/ablation_variance_reduction.cpp.o.d"
  "ablation_variance_reduction"
  "ablation_variance_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_variance_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
