file(REMOVE_RECURSE
  "CMakeFiles/ablation_lattice_convergence.dir/ablation_lattice_convergence.cpp.o"
  "CMakeFiles/ablation_lattice_convergence.dir/ablation_lattice_convergence.cpp.o.d"
  "ablation_lattice_convergence"
  "ablation_lattice_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lattice_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
