# Empty dependencies file for tab1_sysconfig.
# This may be replaced when dependencies are built.
