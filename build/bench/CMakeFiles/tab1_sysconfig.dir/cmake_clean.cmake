file(REMOVE_RECURSE
  "CMakeFiles/tab1_sysconfig.dir/tab1_sysconfig.cpp.o"
  "CMakeFiles/tab1_sysconfig.dir/tab1_sysconfig.cpp.o.d"
  "tab1_sysconfig"
  "tab1_sysconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_sysconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
