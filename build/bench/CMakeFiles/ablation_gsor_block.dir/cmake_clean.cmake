file(REMOVE_RECURSE
  "CMakeFiles/ablation_gsor_block.dir/ablation_gsor_block.cpp.o"
  "CMakeFiles/ablation_gsor_block.dir/ablation_gsor_block.cpp.o.d"
  "ablation_gsor_block"
  "ablation_gsor_block.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gsor_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
