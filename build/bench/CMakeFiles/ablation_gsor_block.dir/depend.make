# Empty dependencies file for ablation_gsor_block.
# This may be replaced when dependencies are built.
