file(REMOVE_RECURSE
  "CMakeFiles/micro_vecmath.dir/micro_vecmath.cpp.o"
  "CMakeFiles/micro_vecmath.dir/micro_vecmath.cpp.o.d"
  "micro_vecmath"
  "micro_vecmath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_vecmath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
