# Empty dependencies file for micro_vecmath.
# This may be replaced when dependencies are built.
