file(REMOVE_RECURSE
  "CMakeFiles/fig4_blackscholes.dir/fig4_blackscholes.cpp.o"
  "CMakeFiles/fig4_blackscholes.dir/fig4_blackscholes.cpp.o.d"
  "fig4_blackscholes"
  "fig4_blackscholes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_blackscholes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
