# Empty compiler generated dependencies file for fig4_blackscholes.
# This may be replaced when dependencies are built.
