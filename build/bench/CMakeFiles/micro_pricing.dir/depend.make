# Empty dependencies file for micro_pricing.
# This may be replaced when dependencies are built.
