file(REMOVE_RECURSE
  "CMakeFiles/micro_pricing.dir/micro_pricing.cpp.o"
  "CMakeFiles/micro_pricing.dir/micro_pricing.cpp.o.d"
  "micro_pricing"
  "micro_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
