file(REMOVE_RECURSE
  "CMakeFiles/ablation_precision.dir/ablation_precision.cpp.o"
  "CMakeFiles/ablation_precision.dir/ablation_precision.cpp.o.d"
  "ablation_precision"
  "ablation_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
