# Empty compiler generated dependencies file for fig5_binomial.
# This may be replaced when dependencies are built.
