file(REMOVE_RECURSE
  "CMakeFiles/fig5_binomial.dir/fig5_binomial.cpp.o"
  "CMakeFiles/fig5_binomial.dir/fig5_binomial.cpp.o.d"
  "fig5_binomial"
  "fig5_binomial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_binomial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
