file(REMOVE_RECURSE
  "CMakeFiles/fig8_cranknicolson.dir/fig8_cranknicolson.cpp.o"
  "CMakeFiles/fig8_cranknicolson.dir/fig8_cranknicolson.cpp.o.d"
  "fig8_cranknicolson"
  "fig8_cranknicolson.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_cranknicolson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
