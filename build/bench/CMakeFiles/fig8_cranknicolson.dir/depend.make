# Empty dependencies file for fig8_cranknicolson.
# This may be replaced when dependencies are built.
