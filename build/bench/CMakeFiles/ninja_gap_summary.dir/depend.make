# Empty dependencies file for ninja_gap_summary.
# This may be replaced when dependencies are built.
