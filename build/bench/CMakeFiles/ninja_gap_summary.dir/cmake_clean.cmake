file(REMOVE_RECURSE
  "CMakeFiles/ninja_gap_summary.dir/ninja_gap_summary.cpp.o"
  "CMakeFiles/ninja_gap_summary.dir/ninja_gap_summary.cpp.o.d"
  "ninja_gap_summary"
  "ninja_gap_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ninja_gap_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
