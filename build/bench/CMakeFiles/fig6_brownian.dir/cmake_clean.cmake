file(REMOVE_RECURSE
  "CMakeFiles/fig6_brownian.dir/fig6_brownian.cpp.o"
  "CMakeFiles/fig6_brownian.dir/fig6_brownian.cpp.o.d"
  "fig6_brownian"
  "fig6_brownian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_brownian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
