# Empty dependencies file for fig6_brownian.
# This may be replaced when dependencies are built.
