file(REMOVE_RECURSE
  "CMakeFiles/ablation_qmc.dir/ablation_qmc.cpp.o"
  "CMakeFiles/ablation_qmc.dir/ablation_qmc.cpp.o.d"
  "ablation_qmc"
  "ablation_qmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_qmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
