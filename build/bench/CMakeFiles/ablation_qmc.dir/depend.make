# Empty dependencies file for ablation_qmc.
# This may be replaced when dependencies are built.
