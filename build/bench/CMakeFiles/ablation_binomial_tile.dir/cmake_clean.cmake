file(REMOVE_RECURSE
  "CMakeFiles/ablation_binomial_tile.dir/ablation_binomial_tile.cpp.o"
  "CMakeFiles/ablation_binomial_tile.dir/ablation_binomial_tile.cpp.o.d"
  "ablation_binomial_tile"
  "ablation_binomial_tile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_binomial_tile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
