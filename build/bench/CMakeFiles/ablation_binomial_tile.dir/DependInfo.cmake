
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_binomial_tile.cpp" "bench/CMakeFiles/ablation_binomial_tile.dir/ablation_binomial_tile.cpp.o" "gcc" "bench/CMakeFiles/ablation_binomial_tile.dir/ablation_binomial_tile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernels/CMakeFiles/finbench_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/finbench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/finbench_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/vecmath/CMakeFiles/finbench_vecmath.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/finbench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/finbench_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
