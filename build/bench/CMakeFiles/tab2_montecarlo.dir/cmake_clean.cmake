file(REMOVE_RECURSE
  "CMakeFiles/tab2_montecarlo.dir/tab2_montecarlo.cpp.o"
  "CMakeFiles/tab2_montecarlo.dir/tab2_montecarlo.cpp.o.d"
  "tab2_montecarlo"
  "tab2_montecarlo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_montecarlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
