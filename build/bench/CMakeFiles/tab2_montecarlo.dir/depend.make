# Empty dependencies file for tab2_montecarlo.
# This may be replaced when dependencies are built.
