file(REMOVE_RECURSE
  "CMakeFiles/ablation_normal_methods.dir/ablation_normal_methods.cpp.o"
  "CMakeFiles/ablation_normal_methods.dir/ablation_normal_methods.cpp.o.d"
  "ablation_normal_methods"
  "ablation_normal_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_normal_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
