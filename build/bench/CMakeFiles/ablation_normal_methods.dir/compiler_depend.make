# Empty compiler generated dependencies file for ablation_normal_methods.
# This may be replaced when dependencies are built.
