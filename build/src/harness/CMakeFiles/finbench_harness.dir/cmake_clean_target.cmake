file(REMOVE_RECURSE
  "libfinbench_harness.a"
)
