# Empty dependencies file for finbench_harness.
# This may be replaced when dependencies are built.
