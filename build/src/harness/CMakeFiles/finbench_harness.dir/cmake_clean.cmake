file(REMOVE_RECURSE
  "CMakeFiles/finbench_harness.dir/report.cpp.o"
  "CMakeFiles/finbench_harness.dir/report.cpp.o.d"
  "libfinbench_harness.a"
  "libfinbench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finbench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
