# Empty dependencies file for finbench_arch.
# This may be replaced when dependencies are built.
