file(REMOVE_RECURSE
  "libfinbench_arch.a"
)
