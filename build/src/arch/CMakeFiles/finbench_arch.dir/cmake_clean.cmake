file(REMOVE_RECURSE
  "CMakeFiles/finbench_arch.dir/machine_model.cpp.o"
  "CMakeFiles/finbench_arch.dir/machine_model.cpp.o.d"
  "CMakeFiles/finbench_arch.dir/topology.cpp.o"
  "CMakeFiles/finbench_arch.dir/topology.cpp.o.d"
  "libfinbench_arch.a"
  "libfinbench_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finbench_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
