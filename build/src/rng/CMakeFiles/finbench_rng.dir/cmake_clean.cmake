file(REMOVE_RECURSE
  "CMakeFiles/finbench_rng.dir/halton.cpp.o"
  "CMakeFiles/finbench_rng.dir/halton.cpp.o.d"
  "CMakeFiles/finbench_rng.dir/mt19937.cpp.o"
  "CMakeFiles/finbench_rng.dir/mt19937.cpp.o.d"
  "CMakeFiles/finbench_rng.dir/normal.cpp.o"
  "CMakeFiles/finbench_rng.dir/normal.cpp.o.d"
  "CMakeFiles/finbench_rng.dir/philox.cpp.o"
  "CMakeFiles/finbench_rng.dir/philox.cpp.o.d"
  "libfinbench_rng.a"
  "libfinbench_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finbench_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
