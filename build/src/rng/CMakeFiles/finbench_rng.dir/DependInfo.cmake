
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rng/halton.cpp" "src/rng/CMakeFiles/finbench_rng.dir/halton.cpp.o" "gcc" "src/rng/CMakeFiles/finbench_rng.dir/halton.cpp.o.d"
  "/root/repo/src/rng/mt19937.cpp" "src/rng/CMakeFiles/finbench_rng.dir/mt19937.cpp.o" "gcc" "src/rng/CMakeFiles/finbench_rng.dir/mt19937.cpp.o.d"
  "/root/repo/src/rng/normal.cpp" "src/rng/CMakeFiles/finbench_rng.dir/normal.cpp.o" "gcc" "src/rng/CMakeFiles/finbench_rng.dir/normal.cpp.o.d"
  "/root/repo/src/rng/philox.cpp" "src/rng/CMakeFiles/finbench_rng.dir/philox.cpp.o" "gcc" "src/rng/CMakeFiles/finbench_rng.dir/philox.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vecmath/CMakeFiles/finbench_vecmath.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
