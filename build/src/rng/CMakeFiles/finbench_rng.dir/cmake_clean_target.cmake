file(REMOVE_RECURSE
  "libfinbench_rng.a"
)
