# Empty compiler generated dependencies file for finbench_rng.
# This may be replaced when dependencies are built.
