
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analytic.cpp" "src/core/CMakeFiles/finbench_core.dir/analytic.cpp.o" "gcc" "src/core/CMakeFiles/finbench_core.dir/analytic.cpp.o.d"
  "/root/repo/src/core/io.cpp" "src/core/CMakeFiles/finbench_core.dir/io.cpp.o" "gcc" "src/core/CMakeFiles/finbench_core.dir/io.cpp.o.d"
  "/root/repo/src/core/linalg.cpp" "src/core/CMakeFiles/finbench_core.dir/linalg.cpp.o" "gcc" "src/core/CMakeFiles/finbench_core.dir/linalg.cpp.o.d"
  "/root/repo/src/core/quadrature.cpp" "src/core/CMakeFiles/finbench_core.dir/quadrature.cpp.o" "gcc" "src/core/CMakeFiles/finbench_core.dir/quadrature.cpp.o.d"
  "/root/repo/src/core/term_structure.cpp" "src/core/CMakeFiles/finbench_core.dir/term_structure.cpp.o" "gcc" "src/core/CMakeFiles/finbench_core.dir/term_structure.cpp.o.d"
  "/root/repo/src/core/vol_surface.cpp" "src/core/CMakeFiles/finbench_core.dir/vol_surface.cpp.o" "gcc" "src/core/CMakeFiles/finbench_core.dir/vol_surface.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/core/CMakeFiles/finbench_core.dir/workload.cpp.o" "gcc" "src/core/CMakeFiles/finbench_core.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/finbench_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/finbench_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/vecmath/CMakeFiles/finbench_vecmath.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
