# Empty compiler generated dependencies file for finbench_core.
# This may be replaced when dependencies are built.
