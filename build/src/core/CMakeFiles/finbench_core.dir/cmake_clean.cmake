file(REMOVE_RECURSE
  "CMakeFiles/finbench_core.dir/analytic.cpp.o"
  "CMakeFiles/finbench_core.dir/analytic.cpp.o.d"
  "CMakeFiles/finbench_core.dir/io.cpp.o"
  "CMakeFiles/finbench_core.dir/io.cpp.o.d"
  "CMakeFiles/finbench_core.dir/linalg.cpp.o"
  "CMakeFiles/finbench_core.dir/linalg.cpp.o.d"
  "CMakeFiles/finbench_core.dir/quadrature.cpp.o"
  "CMakeFiles/finbench_core.dir/quadrature.cpp.o.d"
  "CMakeFiles/finbench_core.dir/term_structure.cpp.o"
  "CMakeFiles/finbench_core.dir/term_structure.cpp.o.d"
  "CMakeFiles/finbench_core.dir/vol_surface.cpp.o"
  "CMakeFiles/finbench_core.dir/vol_surface.cpp.o.d"
  "CMakeFiles/finbench_core.dir/workload.cpp.o"
  "CMakeFiles/finbench_core.dir/workload.cpp.o.d"
  "libfinbench_core.a"
  "libfinbench_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finbench_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
