file(REMOVE_RECURSE
  "libfinbench_core.a"
)
