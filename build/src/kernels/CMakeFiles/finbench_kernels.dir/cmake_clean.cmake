file(REMOVE_RECURSE
  "CMakeFiles/finbench_kernels.dir/binomial/binomial.cpp.o"
  "CMakeFiles/finbench_kernels.dir/binomial/binomial.cpp.o.d"
  "CMakeFiles/finbench_kernels.dir/binomial/lattice_ext.cpp.o"
  "CMakeFiles/finbench_kernels.dir/binomial/lattice_ext.cpp.o.d"
  "CMakeFiles/finbench_kernels.dir/blackscholes/blackscholes.cpp.o"
  "CMakeFiles/finbench_kernels.dir/blackscholes/blackscholes.cpp.o.d"
  "CMakeFiles/finbench_kernels.dir/blackscholes/risk.cpp.o"
  "CMakeFiles/finbench_kernels.dir/blackscholes/risk.cpp.o.d"
  "CMakeFiles/finbench_kernels.dir/brownian/brownian.cpp.o"
  "CMakeFiles/finbench_kernels.dir/brownian/brownian.cpp.o.d"
  "CMakeFiles/finbench_kernels.dir/cranknicolson/cranknicolson.cpp.o"
  "CMakeFiles/finbench_kernels.dir/cranknicolson/cranknicolson.cpp.o.d"
  "CMakeFiles/finbench_kernels.dir/montecarlo/asian.cpp.o"
  "CMakeFiles/finbench_kernels.dir/montecarlo/asian.cpp.o.d"
  "CMakeFiles/finbench_kernels.dir/montecarlo/barrier.cpp.o"
  "CMakeFiles/finbench_kernels.dir/montecarlo/barrier.cpp.o.d"
  "CMakeFiles/finbench_kernels.dir/montecarlo/heston.cpp.o"
  "CMakeFiles/finbench_kernels.dir/montecarlo/heston.cpp.o.d"
  "CMakeFiles/finbench_kernels.dir/montecarlo/heston_fd.cpp.o"
  "CMakeFiles/finbench_kernels.dir/montecarlo/heston_fd.cpp.o.d"
  "CMakeFiles/finbench_kernels.dir/montecarlo/longstaff_schwartz.cpp.o"
  "CMakeFiles/finbench_kernels.dir/montecarlo/longstaff_schwartz.cpp.o.d"
  "CMakeFiles/finbench_kernels.dir/montecarlo/lookback.cpp.o"
  "CMakeFiles/finbench_kernels.dir/montecarlo/lookback.cpp.o.d"
  "CMakeFiles/finbench_kernels.dir/montecarlo/merton.cpp.o"
  "CMakeFiles/finbench_kernels.dir/montecarlo/merton.cpp.o.d"
  "CMakeFiles/finbench_kernels.dir/montecarlo/montecarlo.cpp.o"
  "CMakeFiles/finbench_kernels.dir/montecarlo/montecarlo.cpp.o.d"
  "CMakeFiles/finbench_kernels.dir/montecarlo/multiasset.cpp.o"
  "CMakeFiles/finbench_kernels.dir/montecarlo/multiasset.cpp.o.d"
  "libfinbench_kernels.a"
  "libfinbench_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finbench_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
