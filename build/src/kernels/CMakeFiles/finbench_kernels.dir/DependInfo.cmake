
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/binomial/binomial.cpp" "src/kernels/CMakeFiles/finbench_kernels.dir/binomial/binomial.cpp.o" "gcc" "src/kernels/CMakeFiles/finbench_kernels.dir/binomial/binomial.cpp.o.d"
  "/root/repo/src/kernels/binomial/lattice_ext.cpp" "src/kernels/CMakeFiles/finbench_kernels.dir/binomial/lattice_ext.cpp.o" "gcc" "src/kernels/CMakeFiles/finbench_kernels.dir/binomial/lattice_ext.cpp.o.d"
  "/root/repo/src/kernels/blackscholes/blackscholes.cpp" "src/kernels/CMakeFiles/finbench_kernels.dir/blackscholes/blackscholes.cpp.o" "gcc" "src/kernels/CMakeFiles/finbench_kernels.dir/blackscholes/blackscholes.cpp.o.d"
  "/root/repo/src/kernels/blackscholes/risk.cpp" "src/kernels/CMakeFiles/finbench_kernels.dir/blackscholes/risk.cpp.o" "gcc" "src/kernels/CMakeFiles/finbench_kernels.dir/blackscholes/risk.cpp.o.d"
  "/root/repo/src/kernels/brownian/brownian.cpp" "src/kernels/CMakeFiles/finbench_kernels.dir/brownian/brownian.cpp.o" "gcc" "src/kernels/CMakeFiles/finbench_kernels.dir/brownian/brownian.cpp.o.d"
  "/root/repo/src/kernels/cranknicolson/cranknicolson.cpp" "src/kernels/CMakeFiles/finbench_kernels.dir/cranknicolson/cranknicolson.cpp.o" "gcc" "src/kernels/CMakeFiles/finbench_kernels.dir/cranknicolson/cranknicolson.cpp.o.d"
  "/root/repo/src/kernels/montecarlo/asian.cpp" "src/kernels/CMakeFiles/finbench_kernels.dir/montecarlo/asian.cpp.o" "gcc" "src/kernels/CMakeFiles/finbench_kernels.dir/montecarlo/asian.cpp.o.d"
  "/root/repo/src/kernels/montecarlo/barrier.cpp" "src/kernels/CMakeFiles/finbench_kernels.dir/montecarlo/barrier.cpp.o" "gcc" "src/kernels/CMakeFiles/finbench_kernels.dir/montecarlo/barrier.cpp.o.d"
  "/root/repo/src/kernels/montecarlo/heston.cpp" "src/kernels/CMakeFiles/finbench_kernels.dir/montecarlo/heston.cpp.o" "gcc" "src/kernels/CMakeFiles/finbench_kernels.dir/montecarlo/heston.cpp.o.d"
  "/root/repo/src/kernels/montecarlo/heston_fd.cpp" "src/kernels/CMakeFiles/finbench_kernels.dir/montecarlo/heston_fd.cpp.o" "gcc" "src/kernels/CMakeFiles/finbench_kernels.dir/montecarlo/heston_fd.cpp.o.d"
  "/root/repo/src/kernels/montecarlo/longstaff_schwartz.cpp" "src/kernels/CMakeFiles/finbench_kernels.dir/montecarlo/longstaff_schwartz.cpp.o" "gcc" "src/kernels/CMakeFiles/finbench_kernels.dir/montecarlo/longstaff_schwartz.cpp.o.d"
  "/root/repo/src/kernels/montecarlo/lookback.cpp" "src/kernels/CMakeFiles/finbench_kernels.dir/montecarlo/lookback.cpp.o" "gcc" "src/kernels/CMakeFiles/finbench_kernels.dir/montecarlo/lookback.cpp.o.d"
  "/root/repo/src/kernels/montecarlo/merton.cpp" "src/kernels/CMakeFiles/finbench_kernels.dir/montecarlo/merton.cpp.o" "gcc" "src/kernels/CMakeFiles/finbench_kernels.dir/montecarlo/merton.cpp.o.d"
  "/root/repo/src/kernels/montecarlo/montecarlo.cpp" "src/kernels/CMakeFiles/finbench_kernels.dir/montecarlo/montecarlo.cpp.o" "gcc" "src/kernels/CMakeFiles/finbench_kernels.dir/montecarlo/montecarlo.cpp.o.d"
  "/root/repo/src/kernels/montecarlo/multiasset.cpp" "src/kernels/CMakeFiles/finbench_kernels.dir/montecarlo/multiasset.cpp.o" "gcc" "src/kernels/CMakeFiles/finbench_kernels.dir/montecarlo/multiasset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/finbench_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vecmath/CMakeFiles/finbench_vecmath.dir/DependInfo.cmake"
  "/root/repo/build/src/rng/CMakeFiles/finbench_rng.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/finbench_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
