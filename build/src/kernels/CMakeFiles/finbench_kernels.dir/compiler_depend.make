# Empty compiler generated dependencies file for finbench_kernels.
# This may be replaced when dependencies are built.
