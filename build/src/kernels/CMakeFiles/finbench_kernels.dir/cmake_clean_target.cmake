file(REMOVE_RECURSE
  "libfinbench_kernels.a"
)
