file(REMOVE_RECURSE
  "libfinbench_vecmath.a"
)
