file(REMOVE_RECURSE
  "CMakeFiles/finbench_vecmath.dir/array_math.cpp.o"
  "CMakeFiles/finbench_vecmath.dir/array_math.cpp.o.d"
  "libfinbench_vecmath.a"
  "libfinbench_vecmath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finbench_vecmath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
