# Empty dependencies file for finbench_vecmath.
# This may be replaced when dependencies are built.
